//! Sequential CPU oracle executor.
//!
//! The executor runs a [`StencilProgram`] exactly as the canonical loop nest
//! would: statement by statement, interior points only, with ring-buffered
//! time planes supporting arbitrary `dt` reach. Every simulated GPU kernel in
//! this repository is validated bit-for-bit against this oracle — the
//! generated code evaluates the same `f32` expression tree per point, so the
//! results must be identical, not merely close.

use crate::grid::Grid;
use crate::program::{Access, StencilProgram};

/// Sequential oracle executor holding the time-plane ring buffers.
#[derive(Clone, Debug)]
pub struct ReferenceExecutor {
    program: StencilProgram,
    /// `planes[f]` is the ring of time planes of field `f`; `planes[f][0]`
    /// is the most recent completed (or in-progress) plane.
    planes: Vec<Vec<Grid>>,
    steps_done: usize,
}

impl ReferenceExecutor {
    /// Creates an executor with all fields initialized from `init`.
    ///
    /// `init[f]` seeds field `f`; every ring slot starts as a copy (as if
    /// the state had been steady before `t = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `init.len()` does not match the number of fields.
    pub fn new(program: &StencilProgram, init: &[Grid]) -> ReferenceExecutor {
        assert_eq!(
            init.len(),
            program.num_fields(),
            "one initial grid per field required"
        );
        let depth = (program.max_dt() as usize) + 1;
        let planes = init.iter().map(|g| vec![g.clone(); depth]).collect();
        ReferenceExecutor {
            program: program.clone(),
            planes,
            steps_done: 0,
        }
    }

    /// Convenience: deterministic pseudo-random initial state.
    pub fn with_random_init(
        program: &StencilProgram,
        dims: &[usize],
        seed: u64,
    ) -> ReferenceExecutor {
        let grids: Vec<Grid> = (0..program.num_fields())
            .map(|f| Grid::random(dims, seed.wrapping_add(f as u64)))
            .collect();
        ReferenceExecutor::new(program, &grids)
    }

    /// The wrapped program.
    pub fn program(&self) -> &StencilProgram {
        &self.program
    }

    /// Number of completed time steps.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// The newest completed plane of field `f`.
    pub fn field(&self, f: usize) -> &Grid {
        &self.planes[f][0]
    }

    /// Runs `steps` outer-loop iterations.
    pub fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs a single outer-loop iteration (all statements, all interior
    /// points).
    pub fn step(&mut self) {
        let program = self.program.clone();
        let radius = program.radius();
        let dims: Vec<usize> = self.planes[0][0].dims().to_vec();

        // Rotate every field's ring: the new plane starts as a copy of the
        // previous one, so boundary cells persist.
        for ring in self.planes.iter_mut() {
            let newest = ring[0].clone();
            ring.rotate_right(1);
            ring[0] = newest;
        }

        let spatial = program.spatial_dims();
        let mut idx = vec![0i64; spatial];
        for st in program.statements() {
            let writes = st.writes.0;
            // Iterate interior points: radius[d] <= idx[d] < dims[d]-radius[d].
            idx[..spatial].copy_from_slice(&radius[..spatial]);
            'points: loop {
                let value = st.expr.eval(&mut |a: &Access| {
                    let pos: Vec<i64> = idx.iter().zip(&a.offsets).map(|(&i, &o)| i + o).collect();
                    // dt = 0 reads the in-progress plane (ring[0]); dt >= 1
                    // reads `dt` planes back.
                    self.planes[a.field.0][a.dt as usize].get(&pos)
                });
                self.planes[writes][0].set(&idx, value);

                // Odometer over the interior box, innermost fastest.
                let mut d = spatial;
                loop {
                    if d == 0 {
                        break 'points;
                    }
                    d -= 1;
                    let hi = dims[d] as i64 - radius[d] - 1;
                    if idx[d] < hi {
                        idx[d] += 1;
                        idx[(d + 1)..spatial].copy_from_slice(&radius[(d + 1)..spatial]);
                        break;
                    }
                    idx[d] = radius[d];
                }
            }
        }
        self.steps_done += 1;
    }

    /// Total stencil point-updates performed so far (for GStencils/s
    /// bookkeeping): interior points × statements × steps.
    pub fn point_updates(&self) -> u64 {
        let radius = self.program.radius();
        let dims = self.planes[0][0].dims();
        let interior: u64 = dims
            .iter()
            .zip(&radius)
            .map(|(&n, &r)| (n as i64 - 2 * r).max(0) as u64)
            .product();
        interior * self.program.num_statements() as u64 * self.steps_done as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;

    #[test]
    fn constant_field_is_fixed_point_of_jacobi() {
        let p = gallery::jacobi2d();
        let mut g = Grid::zeros(&[8, 8]);
        for i in 0..8 {
            for j in 0..8 {
                g.set(&[i, j], 1.0);
            }
        }
        let mut ex = ReferenceExecutor::new(&p, &[g.clone()]);
        ex.run(3);
        // 0.2 * (5 * 1.0) == 1.0 exactly in f32.
        assert!(ex.field(0).bit_equal(&g));
    }

    #[test]
    fn boundary_cells_never_change() {
        let p = gallery::jacobi2d();
        let init = Grid::random(&[10, 10], 7);
        let mut ex = ReferenceExecutor::new(&p, std::slice::from_ref(&init));
        ex.run(4);
        let out = ex.field(0);
        for i in 0..10i64 {
            for j in 0..10i64 {
                if i == 0 || i == 9 || j == 0 || j == 9 {
                    assert_eq!(out.get(&[i, j]).to_bits(), init.get(&[i, j]).to_bits());
                }
            }
        }
    }

    #[test]
    fn single_step_matches_hand_computation() {
        let p = gallery::jacobi2d();
        let mut g = Grid::zeros(&[3, 3]);
        g.set(&[0, 1], 1.0);
        g.set(&[1, 0], 2.0);
        g.set(&[1, 2], 3.0);
        g.set(&[2, 1], 4.0);
        g.set(&[1, 1], 5.0);
        let mut ex = ReferenceExecutor::new(&p, &[g]);
        ex.step();
        let expect = 0.2f32 * (5.0 + 4.0 + 1.0 + 3.0 + 2.0);
        assert_eq!(ex.field(0).get(&[1, 1]), expect);
    }

    #[test]
    fn dt2_reaches_two_planes_back() {
        let p = gallery::contrived1d();
        // A[t+1][i] = 0.5*(A[t-1][i-2] + A[t][i+2]); seed with distinct
        // values and check one interior cell after two steps by hand.
        let mut g = Grid::zeros(&[8]);
        for i in 0..8 {
            g.set(&[i], i as f32);
        }
        let mut ex = ReferenceExecutor::new(&p, &[g.clone()]);
        ex.step();
        // Step 1 (reads both planes = initial): A1[2] = .5*(A0[0] + A0[4]).
        let a1_2 = 0.5f32 * (0.0 + 4.0);
        assert_eq!(ex.field(0).get(&[2]), a1_2);
        ex.step();
        // Step 2: A2[4] = .5*(A0[2] + A1[6]); A1[6] interior? radius=2, so
        // interior is 2..=5; A1[6] = initial 6.0.
        let a2_4 = 0.5f32 * (2.0 + 6.0);
        assert_eq!(ex.field(0).get(&[4]), a2_4);
    }

    #[test]
    fn fdtd_multi_statement_pipeline() {
        let p = gallery::fdtd2d();
        let dims = [6usize, 6];
        let mut ex = ReferenceExecutor::with_random_init(&p, &dims, 3);
        let ey0 = ex.field(0).clone();
        let hz0 = ex.field(2).clone();
        ex.step();
        // ey[2][3] = ey0[2][3] - 0.5*(hz0[2][3] - hz0[1][3])
        let expect = ey0.get(&[2, 3]) - 0.5 * (hz0.get(&[2, 3]) - hz0.get(&[1, 3]));
        assert_eq!(ex.field(0).get(&[2, 3]), expect);
    }

    #[test]
    fn point_updates_counts_interior() {
        let p = gallery::jacobi2d();
        let mut ex = ReferenceExecutor::with_random_init(&p, &[10, 10], 1);
        ex.run(2);
        assert_eq!(ex.point_updates(), 8 * 8 * 2);
    }
}
