//! Iteration domains and the §3.2 preprocessing schedule.
//!
//! The preprocessing step maps statement instances `Li[t, s0..sn]` to the
//! scheduled space `[k·t + i, s0..sn]`, after which all dependences are
//! carried by the combined outer dimension and every spatial dimension is
//! fully parallel. [`ScheduledDomain`] is the bounded instance set the
//! tiling and verification machinery enumerate.

use crate::program::StencilProgram;
use polylib::{Aff, BasicSet, Rat};

/// The bounded scheduled iteration domain `[τ, s0..sn]` of a program run:
/// `τ = k·t + i` ranges over `[0, k·steps)` and each spatial coordinate over
/// the interior of the grid.
#[derive(Clone, Debug)]
pub struct ScheduledDomain {
    k: usize,
    steps: usize,
    lo: Vec<i64>,
    hi: Vec<i64>,
}

impl ScheduledDomain {
    /// Builds the scheduled domain for running `program` on a grid of
    /// `dims` for `steps` outer iterations.
    ///
    /// # Panics
    ///
    /// Panics if `dims` arity mismatches or any dimension is too small to
    /// have an interior.
    pub fn new(program: &StencilProgram, dims: &[usize], steps: usize) -> ScheduledDomain {
        assert_eq!(dims.len(), program.spatial_dims(), "dims arity mismatch");
        let radius = program.radius();
        let lo: Vec<i64> = radius.clone();
        let hi: Vec<i64> = dims
            .iter()
            .zip(&radius)
            .map(|(&n, &r)| n as i64 - r - 1)
            .collect();
        for (d, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            assert!(l <= h, "dimension {d} has empty interior");
        }
        ScheduledDomain {
            k: program.num_statements(),
            steps,
            lo,
            hi,
        }
    }

    /// Number of statements `k` (the scheduled time stride).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of outer-loop iterations.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Inclusive interior lower bounds per spatial dimension.
    pub fn lo(&self) -> &[i64] {
        &self.lo
    }

    /// Inclusive interior upper bounds per spatial dimension.
    pub fn hi(&self) -> &[i64] {
        &self.hi
    }

    /// Exclusive upper bound of the scheduled time dimension (`k·steps`).
    pub fn tau_end(&self) -> i64 {
        (self.k * self.steps) as i64
    }

    /// True if `[τ, s..]` is a statement instance of this run.
    pub fn contains(&self, point: &[i64]) -> bool {
        assert_eq!(point.len(), 1 + self.lo.len(), "point arity mismatch");
        let tau = point[0];
        tau >= 0
            && tau < self.tau_end()
            && point[1..]
                .iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(&s, (&l, &h))| s >= l && s <= h)
    }

    /// Iterates all instances `[τ, s..]` in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = Vec<i64>> + '_ {
        let spatial = self.lo.len();
        let mut point = vec![0i64; 1 + spatial];
        point[1..].copy_from_slice(&self.lo);
        let mut done = self.tau_end() == 0;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let current = point.clone();
            // Odometer, innermost (last spatial dim) fastest.
            let mut d = point.len();
            loop {
                if d == 0 {
                    done = true;
                    break;
                }
                d -= 1;
                let (lo_d, hi_d) = if d == 0 {
                    (0, self.tau_end() - 1)
                } else {
                    (self.lo[d - 1], self.hi[d - 1])
                };
                if point[d] < hi_d {
                    point[d] += 1;
                    for (q, p) in point.iter_mut().enumerate().skip(d + 1) {
                        *p = if q == 0 { 0 } else { self.lo[q - 1] };
                    }
                    break;
                }
                point[d] = lo_d;
            }
            Some(current)
        })
    }

    /// Total number of statement instances.
    pub fn num_points(&self) -> u64 {
        let spatial: u64 = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| (h - l + 1) as u64)
            .product();
        self.tau_end() as u64 * spatial
    }

    /// The domain as a polyhedral set over `[τ, s0..sn]`.
    pub fn as_basic_set(&self) -> BasicSet {
        let n = 1 + self.lo.len();
        let mut s = BasicSet::new(n)
            .with_ge(Aff::var(n, 0))
            .with_ge(Aff::constant(n, Rat::from(self.tau_end() - 1)) - Aff::var(n, 0));
        for (d, (&l, &h)) in self.lo.iter().zip(&self.hi).enumerate() {
            s = s
                .with_ge(Aff::var(n, d + 1) - Aff::constant(n, Rat::from(l)))
                .with_ge(Aff::constant(n, Rat::from(h)) - Aff::var(n, d + 1));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;

    #[test]
    fn domain_bounds_follow_radius() {
        let p = gallery::jacobi2d();
        let d = ScheduledDomain::new(&p, &[10, 12], 4);
        assert_eq!(d.lo(), &[1, 1]);
        assert_eq!(d.hi(), &[8, 10]);
        assert_eq!(d.tau_end(), 4);
        assert!(d.contains(&[0, 1, 1]));
        assert!(d.contains(&[3, 8, 10]));
        assert!(!d.contains(&[4, 1, 1]));
        assert!(!d.contains(&[0, 0, 1]));
    }

    #[test]
    fn fdtd_scheduled_time_stride() {
        let p = gallery::fdtd2d();
        let d = ScheduledDomain::new(&p, &[8, 8], 5);
        assert_eq!(d.k(), 3);
        assert_eq!(d.tau_end(), 15);
    }

    #[test]
    fn iteration_matches_count_and_membership() {
        let p = gallery::jacobi2d();
        let d = ScheduledDomain::new(&p, &[6, 7], 3);
        let pts: Vec<_> = d.iter().collect();
        assert_eq!(pts.len() as u64, d.num_points());
        assert!(pts.iter().all(|p| d.contains(p)));
        // Lexicographic order.
        let mut sorted = pts.clone();
        sorted.sort();
        assert_eq!(pts, sorted);
    }

    #[test]
    fn basic_set_agrees_with_contains() {
        let p = gallery::contrived1d();
        let d = ScheduledDomain::new(&p, &[12], 3);
        let s = d.as_basic_set();
        for tau in -1..5 {
            for x in 0..13 {
                assert_eq!(s.contains(&[tau, x]), d.contains(&[tau, x]), "({tau},{x})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty interior")]
    fn tiny_grid_panics() {
        let p = gallery::jacobi2d();
        let _ = ScheduledDomain::new(&p, &[2, 8], 1);
    }
}
