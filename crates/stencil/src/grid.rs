//! Dense n-dimensional `f32` grids with row-major layout.

use std::fmt;

/// A dense, row-major n-dimensional array of `f32` values.
///
/// The innermost (last) dimension is contiguous in memory — the "stride one"
/// dimension the paper's coalescing arguments rely on.
///
/// ```
/// use stencil::Grid;
/// let mut g = Grid::zeros(&[4, 8]);
/// g.set(&[1, 2], 3.5);
/// assert_eq!(g.get(&[1, 2]), 3.5);
/// ```
#[derive(Clone, PartialEq)]
pub struct Grid {
    dims: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f32>,
}

impl Grid {
    /// A grid of the given extents filled with zeros.
    pub fn zeros(dims: &[usize]) -> Grid {
        let len = dims.iter().product::<usize>().max(1);
        let mut strides = vec![1usize; dims.len()];
        for d in (0..dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * dims[d + 1];
        }
        Grid {
            dims: dims.to_vec(),
            strides,
            data: vec![0.0; len],
        }
    }

    /// A grid filled with a deterministic pseudo-random pattern (a small
    /// LCG), useful for reproducible oracle comparisons without external
    /// dependencies.
    pub fn random(dims: &[usize], seed: u64) -> Grid {
        let mut g = Grid::zeros(dims);
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        for v in g.data.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map to [0, 1) with 24 bits of entropy — exactly representable.
            *v = ((state >> 40) as f32) / ((1u64 << 24) as f32);
        }
        g
    }

    /// Grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the grid has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major linear offset of an index.
    ///
    /// # Panics
    ///
    /// Panics if the index has the wrong arity or is out of bounds.
    pub fn offset(&self, idx: &[i64]) -> usize {
        assert_eq!(idx.len(), self.dims.len(), "index arity mismatch");
        let mut off = 0usize;
        for (d, &i) in idx.iter().enumerate() {
            assert!(
                i >= 0 && (i as usize) < self.dims[d],
                "index {i} out of bounds for dim {d} (extent {})",
                self.dims[d]
            );
            off += self.strides[d] * i as usize;
        }
        off
    }

    /// True if the index is within bounds.
    pub fn in_bounds(&self, idx: &[i64]) -> bool {
        idx.len() == self.dims.len()
            && idx
                .iter()
                .zip(&self.dims)
                .all(|(&i, &d)| i >= 0 && (i as usize) < d)
    }

    /// Reads the value at an index.
    pub fn get(&self, idx: &[i64]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Writes the value at an index.
    pub fn set(&mut self, idx: &[i64], v: f32) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Reads the value at a row-major linear offset (see [`Grid::offset`]).
    pub fn get_flat(&self, offset: usize) -> f32 {
        self.data[offset]
    }

    /// Writes the value at a row-major linear offset (see [`Grid::offset`]).
    pub fn set_flat(&mut self, offset: usize, v: f32) {
        self.data[offset] = v;
    }

    /// The raw data slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The raw mutable data slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Maximum absolute difference against another grid of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Grid) -> f32 {
        assert_eq!(self.dims, other.dims, "grid shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// True if the grids are bitwise identical.
    pub fn bit_equal(&self, other: &Grid) -> bool {
        self.dims == other.dims
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

impl fmt::Debug for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Grid{:?} ({} elements)", self.dims, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout() {
        let mut g = Grid::zeros(&[2, 3]);
        g.set(&[0, 0], 1.0);
        g.set(&[0, 2], 2.0);
        g.set(&[1, 0], 3.0);
        assert_eq!(g.as_slice(), &[1.0, 0.0, 2.0, 3.0, 0.0, 0.0]);
        assert_eq!(g.offset(&[1, 2]), 5);
    }

    #[test]
    fn three_d_offsets() {
        let g = Grid::zeros(&[2, 3, 4]);
        assert_eq!(g.offset(&[0, 0, 0]), 0);
        assert_eq!(g.offset(&[0, 0, 3]), 3);
        assert_eq!(g.offset(&[0, 1, 0]), 4);
        assert_eq!(g.offset(&[1, 0, 0]), 12);
    }

    #[test]
    fn random_is_deterministic() {
        let a = Grid::random(&[8, 8], 42);
        let b = Grid::random(&[8, 8], 42);
        let c = Grid::random(&[8, 8], 43);
        assert!(a.bit_equal(&b));
        assert!(!a.bit_equal(&c));
    }

    #[test]
    fn bounds_checking() {
        let g = Grid::zeros(&[4, 4]);
        assert!(g.in_bounds(&[3, 3]));
        assert!(!g.in_bounds(&[4, 0]));
        assert!(!g.in_bounds(&[-1, 0]));
    }

    #[test]
    fn max_abs_diff() {
        let mut a = Grid::zeros(&[2, 2]);
        let b = Grid::zeros(&[2, 2]);
        a.set(&[1, 1], 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let g = Grid::zeros(&[2, 2]);
        let _ = g.get(&[2, 0]);
    }
}
