//! The benchmark gallery: every stencil of the paper's evaluation (Table 3),
//! plus Fig. 1's Jacobi and §3.3.2's contrived 1D example.
//!
//! | stencil       | loads | FLOPs/stencil | data size | steps |
//! |---------------|-------|---------------|-----------|-------|
//! | laplacian 2D  | 5     | 6             | 3072²     | 512   |
//! | heat 2D       | 9     | 9             | 3072²     | 512   |
//! | gradient 2D   | 5     | 15            | 3072²     | 512   |
//! | fdtd 2D       | 3/3/5 | 3/3/5         | 3072²     | 512   |
//! | laplacian 3D  | 7     | 8             | 384³      | 128   |
//! | heat 3D       | 27    | 27            | 384³      | 128   |
//! | gradient 3D   | 7     | 20            | 384³      | 128   |

use crate::program::{FieldId, Statement, StencilExpr, StencilProgram};

/// Paper data size for 2D stencils (3072²).
pub const SIZE_2D: usize = 3072;
/// Paper step count for 2D stencils.
pub const STEPS_2D: usize = 512;
/// Paper data size for 3D stencils (384³).
pub const SIZE_3D: usize = 384;
/// Paper step count for 3D stencils.
pub const STEPS_3D: usize = 128;

fn single(name: &str, dims: usize, expr: StencilExpr) -> StencilProgram {
    StencilProgram::new(
        name,
        dims,
        &["A"],
        vec![Statement {
            name: "S0".into(),
            writes: FieldId(0),
            expr,
        }],
    )
    .expect("gallery stencil is canonical")
}

/// Fig. 1: the 2D Jacobi five-point stencil.
///
/// `A[t+1][i][j] = 0.2f * (A[t][i][j] + A[t][i+1][j] + A[t][i-1][j]
///                        + A[t][i][j+1] + A[t][i][j-1])`
pub fn jacobi2d() -> StencilProgram {
    let a = FieldId(0);
    single(
        "jacobi2d",
        2,
        StencilExpr::sum(vec![
            StencilExpr::load(a, 1, &[0, 0]),
            StencilExpr::load(a, 1, &[1, 0]),
            StencilExpr::load(a, 1, &[-1, 0]),
            StencilExpr::load(a, 1, &[0, 1]),
            StencilExpr::load(a, 1, &[0, -1]),
        ])
        .scale(0.2),
    )
}

/// The 2D Laplacian kernel (5 loads, 6 FLOPs).
pub fn laplacian2d() -> StencilProgram {
    let a = FieldId(0);
    single(
        "laplacian2d",
        2,
        StencilExpr::sum(vec![
            StencilExpr::load(a, 1, &[-1, 0]),
            StencilExpr::load(a, 1, &[1, 0]),
            StencilExpr::load(a, 1, &[0, -1]),
            StencilExpr::load(a, 1, &[0, 1]),
            StencilExpr::load(a, 1, &[0, 0]).scale(-4.0),
        ])
        .scale(0.25),
    )
}

/// The 2D heat kernel: dense 3x3 weighted box (9 loads, 9 FLOPs).
pub fn heat2d() -> StencilProgram {
    let a = FieldId(0);
    let mut terms = Vec::new();
    for di in -1..=1 {
        for dj in -1..=1 {
            terms.push(StencilExpr::load(a, 1, &[di, dj]));
        }
    }
    single("heat2d", 2, StencilExpr::sum(terms).scale(1.0 / 9.0))
}

/// The 2D gradient kernel (5 loads, 15 FLOPs): root of squared differences.
pub fn gradient2d() -> StencilProgram {
    let a = FieldId(0);
    let c = || StencilExpr::load(a, 1, &[0, 0]);
    let sq = |o: [i64; 2]| {
        let d = StencilExpr::Sub(Box::new(c()), Box::new(StencilExpr::load(a, 1, &o)));
        StencilExpr::Mul(Box::new(d.clone()), Box::new(d))
    };
    // Note: the four `c()` loads alias the same cell; load counting counts
    // distinct cells (see `characteristics`), matching the paper's 5.
    let s = StencilExpr::sum(vec![sq([1, 0]), sq([-1, 0]), sq([0, 1]), sq([0, -1])]);
    single("gradient2d", 2, StencilExpr::Sqrt(Box::new(s)).scale(0.5))
}

/// The 2D FDTD multi-statement kernel (three statements: ey, ex, hz).
pub fn fdtd2d() -> StencilProgram {
    let (ey, ex, hz) = (FieldId(0), FieldId(1), FieldId(2));
    let stmts = vec![
        // ey[i][j] -= 0.5 * (hz[i][j] - hz[i-1][j])
        Statement {
            name: "Sey".into(),
            writes: ey,
            expr: StencilExpr::Sub(
                Box::new(StencilExpr::load(ey, 1, &[0, 0])),
                Box::new(
                    StencilExpr::Sub(
                        Box::new(StencilExpr::load(hz, 1, &[0, 0])),
                        Box::new(StencilExpr::load(hz, 1, &[-1, 0])),
                    )
                    .scale(0.5),
                ),
            ),
        },
        // ex[i][j] -= 0.5 * (hz[i][j] - hz[i][j-1])
        Statement {
            name: "Sex".into(),
            writes: ex,
            expr: StencilExpr::Sub(
                Box::new(StencilExpr::load(ex, 1, &[0, 0])),
                Box::new(
                    StencilExpr::Sub(
                        Box::new(StencilExpr::load(hz, 1, &[0, 0])),
                        Box::new(StencilExpr::load(hz, 1, &[0, -1])),
                    )
                    .scale(0.5),
                ),
            ),
        },
        // hz[i][j] -= 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j])
        Statement {
            name: "Shz".into(),
            writes: hz,
            expr: StencilExpr::Sub(
                Box::new(StencilExpr::load(hz, 1, &[0, 0])),
                Box::new(
                    StencilExpr::Add(
                        Box::new(StencilExpr::Sub(
                            Box::new(StencilExpr::load(ex, 0, &[0, 1])),
                            Box::new(StencilExpr::load(ex, 0, &[0, 0])),
                        )),
                        Box::new(StencilExpr::Sub(
                            Box::new(StencilExpr::load(ey, 0, &[1, 0])),
                            Box::new(StencilExpr::load(ey, 0, &[0, 0])),
                        )),
                    )
                    .scale(0.7),
                ),
            ),
        },
    ];
    StencilProgram::new("fdtd2d", 2, &["ey", "ex", "hz"], stmts).expect("fdtd is canonical")
}

/// The 3D Laplacian kernel (7 loads, 8 FLOPs).
pub fn laplacian3d() -> StencilProgram {
    let a = FieldId(0);
    single(
        "laplacian3d",
        3,
        StencilExpr::sum(vec![
            StencilExpr::load(a, 1, &[-1, 0, 0]),
            StencilExpr::load(a, 1, &[1, 0, 0]),
            StencilExpr::load(a, 1, &[0, -1, 0]),
            StencilExpr::load(a, 1, &[0, 1, 0]),
            StencilExpr::load(a, 1, &[0, 0, -1]),
            StencilExpr::load(a, 1, &[0, 0, 1]),
            StencilExpr::load(a, 1, &[0, 0, 0]).scale(-6.0),
        ])
        .scale(0.125),
    )
}

/// The 3D heat kernel: dense 3x3x3 weighted box (27 loads, 27 FLOPs).
pub fn heat3d() -> StencilProgram {
    let a = FieldId(0);
    let mut terms = Vec::new();
    for di in -1..=1 {
        for dj in -1..=1 {
            for dk in -1..=1 {
                terms.push(StencilExpr::load(a, 1, &[di, dj, dk]));
            }
        }
    }
    single("heat3d", 3, StencilExpr::sum(terms).scale(1.0 / 27.0))
}

/// The 3D gradient kernel (7 loads, 20 FLOPs).
pub fn gradient3d() -> StencilProgram {
    let a = FieldId(0);
    let c = || StencilExpr::load(a, 1, &[0, 0, 0]);
    let sq = |o: [i64; 3]| {
        let d = StencilExpr::Sub(Box::new(c()), Box::new(StencilExpr::load(a, 1, &o)));
        StencilExpr::Mul(Box::new(d.clone()), Box::new(d))
    };
    let s = StencilExpr::sum(vec![
        sq([1, 0, 0]),
        sq([-1, 0, 0]),
        sq([0, 1, 0]),
        sq([0, -1, 0]),
        sq([0, 0, 1]),
        sq([0, 0, -1]),
    ]);
    single("gradient3d", 3, StencilExpr::Sqrt(Box::new(s)))
}

/// §3.3.2's contrived 1D example: `A[t][i] = f(A[t-2][i-2], A[t-1][i+2])`,
/// producing distance vectors `{(1, -2), (2, 2)}` and the asymmetric cone of
/// Fig. 3 (δ0 = 1, δ1 = 2).
pub fn contrived1d() -> StencilProgram {
    let a = FieldId(0);
    single(
        "contrived1d",
        1,
        StencilExpr::Add(
            Box::new(StencilExpr::load(a, 2, &[-2])),
            Box::new(StencilExpr::load(a, 1, &[2])),
        )
        .scale(0.5),
    )
}

/// All seven Table 3 benchmark stencils, in the paper's row order
/// (fdtd-2d counts once).
pub fn table3_stencils() -> Vec<StencilProgram> {
    vec![
        laplacian2d(),
        heat2d(),
        gradient2d(),
        fdtd2d(),
        laplacian3d(),
        heat3d(),
        gradient3d(),
    ]
}

/// Paper data size and step count for a gallery stencil.
pub fn paper_workload(program: &StencilProgram) -> (Vec<usize>, usize) {
    match program.spatial_dims() {
        2 => (vec![SIZE_2D, SIZE_2D], STEPS_2D),
        3 => (vec![SIZE_3D, SIZE_3D, SIZE_3D], STEPS_3D),
        _ => (vec![4096], 256),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gallery_programs_validate() {
        for p in table3_stencils() {
            assert!(!p.name().is_empty());
        }
        let _ = jacobi2d();
        let _ = contrived1d();
    }

    #[test]
    fn radii_match_paper_shapes() {
        assert_eq!(jacobi2d().radius(), vec![1, 1]);
        assert_eq!(heat3d().radius(), vec![1, 1, 1]);
        assert_eq!(contrived1d().radius(), vec![2]);
    }

    #[test]
    fn fdtd_statement_order_is_ey_ex_hz() {
        let p = fdtd2d();
        let names: Vec<_> = p.statements().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["Sey", "Sex", "Shz"]);
    }

    #[test]
    fn workload_sizes_match_table3() {
        let (dims, steps) = paper_workload(&heat2d());
        assert_eq!(dims, vec![3072, 3072]);
        assert_eq!(steps, 512);
        let (dims, steps) = paper_workload(&heat3d());
        assert_eq!(dims, vec![384, 384, 384]);
        assert_eq!(steps, 128);
    }
}
