//! The stencil program model: fields, statements, constant-offset accesses
//! and right-hand-side expressions.
//!
//! A [`StencilProgram`] is the canonical form the paper's §3.2 preprocessing
//! produces: an outer time loop containing `k` perfectly nested, fully
//! parallel statement nests, where all dependences are carried by the
//! combined outer dimension `k·t + i`.

use std::fmt;

/// Identifies a field (array) of a stencil program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FieldId(pub usize);

/// A read access `field[t - dt][s + offsets]`.
///
/// `dt` counts whole outer-loop iterations backwards from the iteration of
/// the *reading* statement. `dt == 0` reads the value produced in the same
/// outer iteration by an *earlier* statement (multi-statement kernels such
/// as fdtd-2d); `dt >= 1` reads values from previous iterations.
#[derive(Clone, PartialEq, Debug)]
pub struct Access {
    /// Field being read.
    pub field: FieldId,
    /// Time distance in outer-loop iterations (`>= 0`).
    pub dt: i64,
    /// Constant spatial offsets, one per spatial dimension.
    pub offsets: Vec<i64>,
}

/// Right-hand-side expression of a statement.
///
/// The expression language is deliberately tiny — weighted sums, products,
/// and square roots cover every stencil in the paper's evaluation — but
/// general enough that FLOP counting (Table 3) and bit-exact re-evaluation
/// in the GPU simulator fall out naturally.
#[derive(Clone, PartialEq, Debug)]
pub enum StencilExpr {
    /// A grid read.
    Load(Access),
    /// An `f32` literal.
    Const(f32),
    /// Addition.
    Add(Box<StencilExpr>, Box<StencilExpr>),
    /// Subtraction.
    Sub(Box<StencilExpr>, Box<StencilExpr>),
    /// Multiplication.
    Mul(Box<StencilExpr>, Box<StencilExpr>),
    /// Square root (counted as 3 FLOPs, see [`crate::characteristics`]).
    Sqrt(Box<StencilExpr>),
}

impl StencilExpr {
    /// A load of `field` at time distance `dt` and spatial `offsets`.
    pub fn load(field: FieldId, dt: i64, offsets: &[i64]) -> StencilExpr {
        StencilExpr::Load(Access {
            field,
            dt,
            offsets: offsets.to_vec(),
        })
    }

    /// Sums a list of expressions left-to-right.
    ///
    /// # Panics
    ///
    /// Panics on an empty list.
    pub fn sum(terms: Vec<StencilExpr>) -> StencilExpr {
        let mut it = terms.into_iter();
        let first = it.next().expect("sum of no terms");
        it.fold(first, |acc, t| StencilExpr::Add(Box::new(acc), Box::new(t)))
    }

    /// Multiplies by a scalar constant.
    pub fn scale(self, c: f32) -> StencilExpr {
        StencilExpr::Mul(Box::new(StencilExpr::Const(c)), Box::new(self))
    }

    /// Collects all loads in evaluation order.
    pub fn loads(&self) -> Vec<&Access> {
        let mut out = Vec::new();
        self.visit_loads(&mut |a| out.push(a));
        out
    }

    fn visit_loads<'a>(&'a self, f: &mut impl FnMut(&'a Access)) {
        match self {
            StencilExpr::Load(a) => f(a),
            StencilExpr::Const(_) => {}
            StencilExpr::Add(a, b) | StencilExpr::Sub(a, b) | StencilExpr::Mul(a, b) => {
                a.visit_loads(f);
                b.visit_loads(f);
            }
            StencilExpr::Sqrt(a) => a.visit_loads(f),
        }
    }

    /// Evaluates with a load resolver, reproducing `f32` semantics exactly.
    pub fn eval(&self, load: &mut impl FnMut(&Access) -> f32) -> f32 {
        match self {
            StencilExpr::Load(a) => load(a),
            StencilExpr::Const(c) => *c,
            StencilExpr::Add(a, b) => a.eval(load) + b.eval(load),
            StencilExpr::Sub(a, b) => a.eval(load) - b.eval(load),
            StencilExpr::Mul(a, b) => a.eval(load) * b.eval(load),
            StencilExpr::Sqrt(a) => a.eval(load).sqrt(),
        }
    }
}

/// One statement of the outer time loop: `field[s] = expr`.
#[derive(Clone, Debug)]
pub struct Statement {
    /// Statement name (for diagnostics and emitted code).
    pub name: String,
    /// The field this statement writes (each field has one writer).
    pub writes: FieldId,
    /// The right-hand side.
    pub expr: StencilExpr,
}

/// A complete stencil program in canonical (§3.2) form.
#[derive(Clone, Debug)]
pub struct StencilProgram {
    name: String,
    spatial_dims: usize,
    field_names: Vec<String>,
    statements: Vec<Statement>,
}

impl StencilProgram {
    /// Builds and validates a program.
    ///
    /// Validation enforces the paper's §3.3.1 input constraints:
    ///
    /// * every access arity matches `spatial_dims`;
    /// * every field is written by exactly one statement;
    /// * every dependence is carried by the combined outer dimension
    ///   `k·t + i` — i.e. each read has scheduled time distance
    ///   `k·dt + (i - j) >= 1` where `j` is the writing statement.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn new(
        name: &str,
        spatial_dims: usize,
        field_names: &[&str],
        statements: Vec<Statement>,
    ) -> Result<StencilProgram, String> {
        let p = StencilProgram {
            name: name.to_string(),
            spatial_dims,
            field_names: field_names.iter().map(|s| s.to_string()).collect(),
            statements,
        };
        p.validate()?;
        Ok(p)
    }

    fn validate(&self) -> Result<(), String> {
        let k = self.statements.len() as i64;
        if k == 0 {
            return Err("program has no statements".into());
        }
        let mut writer = vec![None; self.field_names.len()];
        for (i, st) in self.statements.iter().enumerate() {
            let f = st.writes.0;
            if f >= self.field_names.len() {
                return Err(format!("statement {} writes unknown field {f}", st.name));
            }
            if let Some(prev) = writer[f] {
                return Err(format!(
                    "field {} written by both statement {prev} and {i}",
                    self.field_names[f]
                ));
            }
            writer[f] = Some(i);
        }
        for (i, st) in self.statements.iter().enumerate() {
            for a in st.expr.loads() {
                if a.offsets.len() != self.spatial_dims {
                    return Err(format!(
                        "access to field {} in {} has arity {} != {}",
                        self.field_names[a.field.0],
                        st.name,
                        a.offsets.len(),
                        self.spatial_dims
                    ));
                }
                if a.dt < 0 {
                    return Err(format!("negative time distance in {}", st.name));
                }
                let j = writer[a.field.0].ok_or_else(|| {
                    format!(
                        "field {} is read but never written",
                        self.field_names[a.field.0]
                    )
                })?;
                let dtau = k * a.dt + (i as i64 - j as i64);
                if dtau < 1 {
                    return Err(format!(
                        "dependence not carried by outer dimension: statement {} reads \
                         field {} at scheduled distance {dtau} (must be >= 1)",
                        st.name, self.field_names[a.field.0]
                    ));
                }
            }
        }
        Ok(())
    }

    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of spatial dimensions.
    pub fn spatial_dims(&self) -> usize {
        self.spatial_dims
    }

    /// Number of statements `k` in the outer loop body.
    pub fn num_statements(&self) -> usize {
        self.statements.len()
    }

    /// The statements in outer-loop order.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// Field names, indexed by [`FieldId`].
    pub fn field_names(&self) -> &[String] {
        &self.field_names
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.field_names.len()
    }

    /// Index of the statement writing `field`.
    pub fn writer_of(&self, field: FieldId) -> usize {
        self.statements
            .iter()
            .position(|s| s.writes == field)
            .expect("validated program: every field has a writer")
    }

    /// Maximum `|offset|` over all accesses and dimensions (the stencil
    /// radius), per spatial dimension.
    pub fn radius(&self) -> Vec<i64> {
        let mut r = vec![0i64; self.spatial_dims];
        for st in &self.statements {
            for a in st.expr.loads() {
                for (d, &o) in a.offsets.iter().enumerate() {
                    r[d] = r[d].max(o.abs());
                }
            }
        }
        r
    }

    /// Maximum time distance `dt` over all accesses.
    pub fn max_dt(&self) -> i64 {
        self.statements
            .iter()
            .flat_map(|s| s.expr.loads())
            .map(|a| a.dt)
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// True if `other` describes the same computation: equal spatial
    /// dimensionality and, statement by statement, the same written field
    /// and the same right-hand-side expression tree. Fields are matched by
    /// *name*, not by [`FieldId`] — a parser may discover fields in a
    /// different first-use order than the original construction — and
    /// program/statement names are ignored (they are labels, not
    /// semantics). Constants compare by bit pattern. A reparsed
    /// [`Self::to_c_like`] rendering therefore compares equal to its
    /// original.
    pub fn same_computation(&self, other: &StencilProgram) -> bool {
        fn expr_eq(a: &StencilExpr, b: &StencilExpr, an: &[String], bn: &[String]) -> bool {
            match (a, b) {
                (StencilExpr::Load(x), StencilExpr::Load(y)) => {
                    an[x.field.0] == bn[y.field.0] && x.dt == y.dt && x.offsets == y.offsets
                }
                (StencilExpr::Const(x), StencilExpr::Const(y)) => x.to_bits() == y.to_bits(),
                (StencilExpr::Add(a1, a2), StencilExpr::Add(b1, b2))
                | (StencilExpr::Sub(a1, a2), StencilExpr::Sub(b1, b2))
                | (StencilExpr::Mul(a1, a2), StencilExpr::Mul(b1, b2)) => {
                    expr_eq(a1, b1, an, bn) && expr_eq(a2, b2, an, bn)
                }
                (StencilExpr::Sqrt(x), StencilExpr::Sqrt(y)) => expr_eq(x, y, an, bn),
                _ => false,
            }
        }
        // Every field has exactly one writer (validated), so matching the
        // written field name of every statement pair covers all fields.
        self.spatial_dims == other.spatial_dims
            && self.field_names.len() == other.field_names.len()
            && self.statements.len() == other.statements.len()
            && self.statements.iter().zip(&other.statements).all(|(a, b)| {
                self.field_names[a.writes.0] == other.field_names[b.writes.0]
                    && expr_eq(&a.expr, &b.expr, &self.field_names, &other.field_names)
            })
    }

    /// Renders the program as C-like source (the paper's Fig. 1 view).
    pub fn to_c_like(&self) -> String {
        let mut out = String::new();
        let iters: Vec<String> = (0..self.spatial_dims)
            .map(|d| {
                char::from_u32('i' as u32 + d as u32)
                    .expect("few dims")
                    .to_string()
            })
            .collect();
        out.push_str("for (t = 0; t < T; t++) {\n");
        for st in &self.statements {
            for (d, it) in iters.iter().enumerate() {
                out.push_str(&"  ".repeat(d + 1));
                out.push_str(&format!("for ({it} = r{d}; {it} < N{d} - r{d}; {it}++)\n"));
            }
            out.push_str(&"  ".repeat(self.spatial_dims + 1));
            out.push_str(&format!(
                "{}[t+1]{} = {};\n",
                self.field_names[st.writes.0],
                iters.iter().map(|i| format!("[{i}]")).collect::<String>(),
                self.expr_to_c(&st.expr, &iters)
            ));
        }
        out.push_str("}\n");
        out
    }

    fn expr_to_c(&self, e: &StencilExpr, iters: &[String]) -> String {
        match e {
            StencilExpr::Load(a) => {
                let idx: String = a
                    .offsets
                    .iter()
                    .zip(iters)
                    .map(|(&o, it)| match o {
                        0 => format!("[{it}]"),
                        o if o > 0 => format!("[{it}+{o}]"),
                        o => format!("[{it}{o}]"),
                    })
                    .collect();
                format!(
                    "{}[t{}]{}",
                    self.field_names[a.field.0],
                    if a.dt == 0 {
                        "+1".to_string()
                    } else if a.dt == 1 {
                        String::new()
                    } else {
                        format!("-{}", a.dt - 1)
                    },
                    idx
                )
            }
            StencilExpr::Const(c) => format!("{c:?}f"),
            StencilExpr::Add(a, b) => {
                format!(
                    "({} + {})",
                    self.expr_to_c(a, iters),
                    self.expr_to_c(b, iters)
                )
            }
            StencilExpr::Sub(a, b) => {
                format!(
                    "({} - {})",
                    self.expr_to_c(a, iters),
                    self.expr_to_c(b, iters)
                )
            }
            StencilExpr::Mul(a, b) => {
                format!(
                    "({} * {})",
                    self.expr_to_c(a, iters),
                    self.expr_to_c(b, iters)
                )
            }
            StencilExpr::Sqrt(a) => format!("sqrtf({})", self.expr_to_c(a, iters)),
        }
    }
}

impl fmt::Display for StencilProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_c_like())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jacobi_like() -> Result<StencilProgram, String> {
        let a = FieldId(0);
        StencilProgram::new(
            "test",
            1,
            &["A"],
            vec![Statement {
                name: "S0".into(),
                writes: a,
                expr: StencilExpr::sum(vec![
                    StencilExpr::load(a, 1, &[-1]),
                    StencilExpr::load(a, 1, &[1]),
                ])
                .scale(0.5),
            }],
        )
    }

    #[test]
    fn valid_program_builds() {
        let p = jacobi_like().unwrap();
        assert_eq!(p.num_statements(), 1);
        assert_eq!(p.radius(), vec![1]);
        assert_eq!(p.max_dt(), 1);
    }

    #[test]
    fn rejects_uncarried_dependence() {
        let a = FieldId(0);
        // Statement reads its own output at dt=0: scheduled distance 0.
        let err = StencilProgram::new(
            "bad",
            1,
            &["A"],
            vec![Statement {
                name: "S0".into(),
                writes: a,
                expr: StencilExpr::load(a, 0, &[1]),
            }],
        )
        .unwrap_err();
        assert!(err.contains("not carried"), "{err}");
    }

    #[test]
    fn rejects_arity_mismatch() {
        let a = FieldId(0);
        let err = StencilProgram::new(
            "bad",
            2,
            &["A"],
            vec![Statement {
                name: "S0".into(),
                writes: a,
                expr: StencilExpr::load(a, 1, &[1]),
            }],
        )
        .unwrap_err();
        assert!(err.contains("arity"), "{err}");
    }

    #[test]
    fn rejects_double_writer() {
        let a = FieldId(0);
        let st = |n: &str| Statement {
            name: n.into(),
            writes: a,
            expr: StencilExpr::load(a, 1, &[0]),
        };
        let err = StencilProgram::new("bad", 1, &["A"], vec![st("S0"), st("S1")]).unwrap_err();
        assert!(err.contains("written by both"), "{err}");
    }

    #[test]
    fn multi_statement_dt0_is_legal_forward() {
        // S1 reads S0's output of the same iteration: distance k*0 + 1 = 1.
        let (a, b) = (FieldId(0), FieldId(1));
        let p = StencilProgram::new(
            "pipe",
            1,
            &["A", "B"],
            vec![
                Statement {
                    name: "S0".into(),
                    writes: a,
                    expr: StencilExpr::load(b, 1, &[0]),
                },
                Statement {
                    name: "S1".into(),
                    writes: b,
                    expr: StencilExpr::load(a, 0, &[-1]),
                },
            ],
        );
        assert!(p.is_ok());
    }

    #[test]
    fn c_rendering_mentions_fields() {
        let p = jacobi_like().unwrap();
        let c = p.to_c_like();
        assert!(c.contains("for (t = 0; t < T; t++)"));
        assert!(c.contains("A[t+1][i]"));
    }
}
