//! A `pet`-like front end: parse Fig. 1-style C loop nests into
//! [`StencilProgram`]s.
//!
//! The paper extracts its polyhedral description from C with `pet`. This
//! module accepts the same shape of input — an outer time loop containing
//! one or more perfect spatial loop nests whose bodies are single
//! assignments with constant-offset accesses — and produces the canonical
//! program model directly:
//!
//! ```
//! let src = r#"
//! for (t = 0; t < T; t++)
//!   for (i = 1; i < N-1; i++)
//!     for (j = 1; j < N-1; j++)
//!       A[t+1][i][j] = 0.2f * (A[t][i][j] + A[t][i+1][j] + A[t][i-1][j]
//!                            + A[t][i][j+1] + A[t][i][j-1]);
//! "#;
//! let program = stencil::parse::parse_stencil("jacobi", src).unwrap();
//! assert_eq!(program.spatial_dims(), 2);
//! assert_eq!(stencil::characteristics::load_count(&program.statements()[0].expr), 5);
//! ```
//!
//! # Grammar reference
//!
//! The complete DSL accepted by [`parse_stencil`] (the `.stencil` file
//! format compiled by the `hybridc` driver):
//!
//! ```text
//! program   := const-decl* time-loop EOF
//! const-decl:= "const"? ("float" | "double")? name "=" ("+" | "-")? number ";"
//! time-loop := for-header[t] "{"? statement+ "}"*
//! statement := pragma* for-header+ assignment
//! for-header:= "for" "(" name <anything up to the matching ")"> ")" "{"?
//! assignment:= field time-index space-index+ "=" expr ";" "}"*
//! time-index:= "[" "t" "+" "1" "]"                  (left-hand side)
//!            | "[" "t" (("+" | "-") number)? "]"    (in an access)
//! space-index:= "[" name (("+" | "-") number)? "]"
//! expr      := term (("+" | "-") term)*
//! term      := factor ("*" factor)*
//! factor    := number | constant-name | access
//!            | "sqrtf" "(" expr ")" | "(" expr ")" | "-" factor
//! access    := field time-index space-index+
//! pragma    := "#" <tokens up to the next "for">
//! comment   := "//" <to end of line> | "/*" <to the matching "*/">
//! ```
//!
//! Rules beyond the grammar:
//!
//! * the outermost loop must iterate `t`; loop bounds are accepted but not
//!   interpreted (domains are supplied at run time, as everywhere else in
//!   the pipeline);
//! * every spatial loop nest of a multi-statement program must use the
//!   same iterator names in the same order, and every access must index
//!   them in that order;
//! * a named constant must be declared before the time loop and may then
//!   be used wherever a numeric literal may; constants cannot be indexed
//!   like fields;
//! * the left-hand side is written at `[t+1][i][j]..` exactly (no spatial
//!   offsets);
//! * numeric index offsets are limited to ±[`MAX_OFFSET`];
//! * an `f` suffix on float literals is consumed silently;
//! * `//` and `/* .. */` comments are ignored everywhere.
//!
//! Time indexing follows the paper's convention: `A[t+1][..]` on the
//! left-hand side is the value produced this iteration; a read `A[t-d][..]`
//! has time distance `dt = 1 + d` (`A[t]` reads the previous iteration,
//! `A[t+1]` reads a value produced earlier in the *same* iteration by an
//! earlier statement).

use std::collections::HashMap;
use std::fmt;

use crate::program::{FieldId, Statement, StencilExpr, StencilProgram};

/// Largest accepted magnitude for a numeric index offset (spatial or
/// time). Keeps every derived quantity (`dt`, radii, scheduled distances)
/// far away from `i64` overflow.
pub const MAX_OFFSET: i64 = 1_000_000;

/// A source position: 1-based line and column of a token's first
/// character.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.col)
    }
}

/// A parse failure: a human-readable message plus, when the failure is
/// attributable to a specific token, that token's source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    msg: String,
    span: Option<Span>,
}

impl ParseError {
    /// An error with no particular source position (program-level
    /// validation failures).
    pub fn new(msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            span: None,
        }
    }

    /// An error anchored at `span`.
    pub fn at(span: Span, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            span: Some(span),
        }
    }

    /// The message, without the `stencil parse error` prefix or position.
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// The source position of the offending token, when known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(f, "stencil parse error at {s}: {}", self.msg),
            None => write!(f, "stencil parse error: {}", self.msg),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Debug)]
enum TokKind {
    Ident(String),
    Num(String),
    Sym(char),
}

impl TokKind {
    /// How the token is named in error messages.
    fn describe(&self) -> String {
        match self {
            TokKind::Ident(s) => format!("identifier `{s}`"),
            TokKind::Num(s) => format!("number `{s}`"),
            TokKind::Sym(c) => format!("`{c}`"),
        }
    }
}

#[derive(Clone, PartialEq, Debug)]
struct Tok {
    kind: TokKind,
    span: Span,
}

struct Tokenizer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Tokenizer<'a> {
    fn new(src: &'a str) -> Tokenizer<'a> {
        Tokenizer {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn here(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }
}

/// Tokenizes `src`, skipping whitespace and `//` / `/* .. */` comments.
fn tokenize(src: &str) -> Result<(Vec<Tok>, Span), ParseError> {
    let mut tz = Tokenizer::new(src);
    let mut out = Vec::new();
    while let Some(&c) = tz.chars.peek() {
        let span = tz.here();
        if c.is_whitespace() {
            tz.bump();
        } else if c == '/' {
            tz.bump();
            match tz.chars.peek() {
                Some('/') => {
                    while let Some(&c) = tz.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        tz.bump();
                    }
                }
                Some('*') => {
                    tz.bump();
                    let mut closed = false;
                    while let Some(c) = tz.bump() {
                        if c == '*' && tz.chars.peek() == Some(&'/') {
                            tz.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(ParseError::at(span, "unterminated /* comment".to_string()));
                    }
                }
                _ => {
                    return Err(ParseError::at(
                        span,
                        "unexpected `/` (division is not part of the expression language; \
                         fold constant divisions into a literal)",
                    ))
                }
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&c) = tz.chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    s.push(c);
                    tz.bump();
                } else {
                    break;
                }
            }
            out.push(Tok {
                kind: TokKind::Ident(s),
                span,
            });
        } else if c.is_ascii_digit() {
            let mut s = String::new();
            while let Some(&c) = tz.chars.peek() {
                if c.is_ascii_digit() || c == '.' {
                    s.push(c);
                    tz.bump();
                } else {
                    break;
                }
            }
            // An 'f' suffix on float literals is consumed silently.
            if let Some(&'f') = tz.chars.peek() {
                tz.bump();
            }
            out.push(Tok {
                kind: TokKind::Num(s),
                span,
            });
        } else if "()[]{}=+-*;<>,#".contains(c) {
            tz.bump();
            out.push(Tok {
                kind: TokKind::Sym(c),
                span,
            });
        } else {
            return Err(ParseError::at(span, format!("unexpected character {c:?}")));
        }
    }
    Ok((out, tz.here()))
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    /// Position just past the last token (for end-of-input errors).
    eof: Span,
    /// Spatial loop iterator names, outermost first.
    iters: Vec<String>,
    /// Field names in declaration (first-use) order.
    fields: Vec<String>,
    /// Named constants declared before the time loop.
    consts: HashMap<String, f32>,
}

impl Parser {
    fn peek(&self) -> Option<&TokKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    /// Span of the next token (or the end of input).
    fn peek_span(&self) -> Span {
        self.toks.get(self.pos).map_or(self.eof, |t| t.span)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Describes the next token for an error message.
    fn found(&self) -> String {
        self.toks
            .get(self.pos)
            .map_or("end of input".to_string(), |t| t.kind.describe())
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at(self.peek_span(), msg)
    }

    fn expect_sym(&mut self, c: char) -> Result<Span, ParseError> {
        match self.peek() {
            Some(TokKind::Sym(s)) if *s == c => {
                let span = self.peek_span();
                self.pos += 1;
                Ok(span)
            }
            _ => Err(self.err_here(format!("expected `{c}`, found {}", self.found()))),
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek() {
            Some(TokKind::Ident(s)) => {
                let out = (s.clone(), self.peek_span());
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.err_here(format!("expected identifier, found {}", self.found()))),
        }
    }

    /// Consumes an optionally signed numeric literal as `f32`.
    fn expect_f32(&mut self) -> Result<f32, ParseError> {
        let neg = match self.peek() {
            Some(TokKind::Sym('-')) => {
                self.pos += 1;
                true
            }
            Some(TokKind::Sym('+')) => {
                self.pos += 1;
                false
            }
            _ => false,
        };
        match self.peek() {
            Some(TokKind::Num(n)) => {
                let span = self.peek_span();
                let v = n
                    .parse::<f32>()
                    .map_err(|_| ParseError::at(span, format!("bad literal `{n}`")))?;
                self.pos += 1;
                Ok(if neg { -v } else { v })
            }
            _ => Err(self.err_here(format!("expected number, found {}", self.found()))),
        }
    }

    /// Parses leading `const float name = 0.25f;`-style declarations.
    /// Stops at the first `for`.
    fn parse_const_decls(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(TokKind::Ident(k)) if k != "for" => {}
                _ => return Ok(()),
            }
            // Optional `const` and type keywords.
            for kw in ["const", "float", "double"] {
                if matches!(self.peek(), Some(TokKind::Ident(k)) if k == kw) {
                    self.pos += 1;
                }
            }
            let (name, span) = self.expect_ident()?;
            if name == "t" {
                return Err(ParseError::at(
                    span,
                    "`t` is reserved for the time iterator",
                ));
            }
            if self.consts.contains_key(&name) {
                return Err(ParseError::at(
                    span,
                    format!("constant `{name}` declared twice"),
                ));
            }
            self.expect_sym('=')?;
            let value = self.expect_f32()?;
            self.expect_sym(';')?;
            self.consts.insert(name, value);
        }
    }

    /// Consumes a `for (x = ...; x < ...; x++)` header, returning the
    /// iterator name and its span. Bounds are accepted but not interpreted
    /// (domains are supplied at run time, as in the rest of the pipeline).
    fn parse_for_header(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek() {
            Some(TokKind::Ident(k)) if k == "for" => {
                self.pos += 1;
            }
            _ => return Err(self.err_here(format!("expected `for`, found {}", self.found()))),
        }
        self.expect_sym('(')?;
        let var = self.expect_ident()?;
        // Skip everything to the matching ')'.
        let mut depth = 1;
        while depth > 0 {
            match self.next() {
                Some(Tok {
                    kind: TokKind::Sym('('),
                    ..
                }) => depth += 1,
                Some(Tok {
                    kind: TokKind::Sym(')'),
                    ..
                }) => depth -= 1,
                Some(_) => {}
                None => {
                    return Err(ParseError::at(self.eof, "unterminated for header"));
                }
            }
        }
        Ok(var)
    }

    fn field_id(&mut self, name: &str) -> FieldId {
        if let Some(i) = self.fields.iter().position(|f| f == name) {
            FieldId(i)
        } else {
            self.fields.push(name.to_string());
            FieldId(self.fields.len() - 1)
        }
    }

    /// Parses an index expression `iter`, `iter+c`, `iter-c`, or for the
    /// time dimension `t`, `t+1`, `t-c`. Returns `(iter name, offset,
    /// span of the iterator token)`.
    fn parse_index(&mut self) -> Result<(String, i64, Span), ParseError> {
        self.expect_sym('[')?;
        let (var, span) = self.expect_ident()?;
        let off = match self.peek() {
            Some(TokKind::Sym(s @ ('+' | '-'))) => {
                let sign = if *s == '-' { -1 } else { 1 };
                self.pos += 1;
                match self.peek() {
                    Some(TokKind::Num(n)) => {
                        let nspan = self.peek_span();
                        let v =
                            n.parse::<i64>().ok().filter(|v| *v <= MAX_OFFSET).ok_or(
                                ParseError::at(nspan, format!("offset `{n}` out of range")),
                            )?;
                        self.pos += 1;
                        sign * v
                    }
                    _ => {
                        return Err(
                            self.err_here(format!("expected offset, found {}", self.found()))
                        )
                    }
                }
            }
            _ => 0,
        };
        self.expect_sym(']')?;
        Ok((var, off, span))
    }

    /// Parses an access `F[t±c][i±a][j±b]...`, returning the load.
    fn parse_access(&mut self, name: String, name_span: Span) -> Result<StencilExpr, ParseError> {
        let field = self.field_id(&name);
        let (tvar, toff, tspan) = self.parse_index()?;
        if tvar != "t" {
            return Err(ParseError::at(
                tspan,
                format!("first index of {name} must be the time iterator, found `{tvar}`"),
            ));
        }
        // A[t+off]: produced at iteration t+off-1, read at iteration t:
        // dt = 1 - off.
        let dt = 1 - toff;
        if dt < 0 {
            return Err(ParseError::at(
                name_span,
                format!("access {name}[t+{toff}] reads the future"),
            ));
        }
        let mut offsets = Vec::new();
        let mut seen = Vec::new();
        while matches!(self.peek(), Some(TokKind::Sym('['))) {
            let (var, off, _) = self.parse_index()?;
            seen.push(var);
            offsets.push(off);
        }
        if seen != self.iters {
            return Err(ParseError::at(
                name_span,
                format!(
                    "access {name} indexes {seen:?}, loop nest uses {:?} (order must match)",
                    self.iters
                ),
            ));
        }
        Ok(StencilExpr::load(field, dt, &offsets))
    }

    /// expr := term (('+'|'-') term)*
    fn parse_expr(&mut self) -> Result<StencilExpr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek() {
                Some(TokKind::Sym('+')) => {
                    self.pos += 1;
                    let rhs = self.parse_term()?;
                    lhs = StencilExpr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(TokKind::Sym('-')) => {
                    self.pos += 1;
                    let rhs = self.parse_term()?;
                    lhs = StencilExpr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// term := factor ('*' factor)*
    fn parse_term(&mut self) -> Result<StencilExpr, ParseError> {
        let mut lhs = self.parse_factor()?;
        while matches!(self.peek(), Some(TokKind::Sym('*'))) {
            self.pos += 1;
            let rhs = self.parse_factor()?;
            lhs = StencilExpr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// factor := number | constant | access | sqrtf(expr) | '(' expr ')'
    ///         | '-' factor
    fn parse_factor(&mut self) -> Result<StencilExpr, ParseError> {
        let span = self.peek_span();
        match self.next().map(|t| t.kind) {
            Some(TokKind::Num(n)) => n
                .parse::<f32>()
                .map(StencilExpr::Const)
                .map_err(|_| ParseError::at(span, format!("bad literal `{n}`"))),
            Some(TokKind::Sym('(')) => {
                let e = self.parse_expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Some(TokKind::Sym('-')) => {
                let e = self.parse_factor()?;
                // A negated literal folds to a negative constant (so
                // `-4.0f` round-trips as the single constant
                // `to_c_like` rendered it from); anything else negates
                // by subtraction from zero.
                if let StencilExpr::Const(c) = e {
                    Ok(StencilExpr::Const(-c))
                } else {
                    Ok(StencilExpr::Sub(
                        Box::new(StencilExpr::Const(0.0)),
                        Box::new(e),
                    ))
                }
            }
            Some(TokKind::Ident(name)) if name == "sqrtf" => {
                self.expect_sym('(')?;
                let e = self.parse_expr()?;
                self.expect_sym(')')?;
                Ok(StencilExpr::Sqrt(Box::new(e)))
            }
            Some(TokKind::Ident(name)) => {
                let indexed = matches!(self.peek(), Some(TokKind::Sym('[')));
                if let Some(&v) = self.consts.get(&name) {
                    if indexed {
                        return Err(ParseError::at(
                            span,
                            format!("constant `{name}` cannot be indexed like a field"),
                        ));
                    }
                    Ok(StencilExpr::Const(v))
                } else if indexed {
                    self.parse_access(name, span)
                } else {
                    Err(ParseError::at(
                        span,
                        format!(
                            "unknown identifier `{name}` (not a declared constant; a field \
                             access needs `[t..]` indices)"
                        ),
                    ))
                }
            }
            Some(kind) => Err(ParseError::at(
                span,
                format!("unexpected token {}", kind.describe()),
            )),
            None => Err(ParseError::at(self.eof, "unexpected end of input")),
        }
    }

    /// One statement: spatial `for` headers followed by
    /// `F[t+1][iters..] = expr ;`.
    fn parse_statement(&mut self, index: usize) -> Result<Statement, ParseError> {
        let mut iters = Vec::new();
        let nest_span = self.peek_span();
        while matches!(self.peek(), Some(TokKind::Ident(k)) if k == "for") {
            iters.push(self.parse_for_header()?.0);
            // Optional braces are skipped transparently.
            if matches!(self.peek(), Some(TokKind::Sym('{'))) {
                self.pos += 1;
            }
        }
        if iters.is_empty() {
            return Err(ParseError::at(nest_span, "statement without spatial loops"));
        }
        if self.iters.is_empty() {
            self.iters = iters.clone();
        } else if self.iters != iters {
            return Err(ParseError::at(
                nest_span,
                format!(
                    "all loop nests must share iterator names/order: {:?} vs {iters:?}",
                    self.iters
                ),
            ));
        }
        let (name, name_span) = self.expect_ident()?;
        if self.consts.contains_key(&name) {
            return Err(ParseError::at(
                name_span,
                format!("constant `{name}` cannot be assigned like a field"),
            ));
        }
        let field = self.field_id(&name);
        let (tvar, toff, tspan) = self.parse_index()?;
        if tvar != "t" || toff != 1 {
            return Err(ParseError::at(
                tspan,
                format!("left-hand side of {name} must be indexed [t+1]"),
            ));
        }
        for expect in self.iters.clone() {
            let (var, off, vspan) = self.parse_index()?;
            if var != expect || off != 0 {
                return Err(ParseError::at(
                    vspan,
                    format!("left-hand side must be written at [{expect}] exactly"),
                ));
            }
        }
        self.expect_sym('=')?;
        let expr = self.parse_expr()?;
        self.expect_sym(';')?;
        // Consume any closing braces.
        while matches!(self.peek(), Some(TokKind::Sym('}'))) {
            self.pos += 1;
        }
        Ok(Statement {
            name: format!("S{index}"),
            writes: field,
            expr,
        })
    }
}

/// Parses a Fig. 1-style C loop nest (the `.stencil` DSL — see the
/// [module-level grammar](self)) into a validated [`StencilProgram`].
///
/// # Errors
///
/// Returns [`ParseError`] for malformed input — carrying the offending
/// token's [`Span`] where one exists — and forwards
/// [`StencilProgram::new`] validation failures (non-canonical dependence
/// structure) as parse errors.
pub fn parse_stencil(name: &str, src: &str) -> Result<StencilProgram, ParseError> {
    let (toks, eof) = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        eof,
        iters: Vec::new(),
        fields: Vec::new(),
        consts: HashMap::new(),
    };
    p.parse_const_decls()?;
    // Outer time loop.
    let (tvar, tspan) = p.parse_for_header()?;
    if tvar != "t" {
        return Err(ParseError::at(
            tspan,
            format!("outermost loop must iterate `t`, found `{tvar}`"),
        ));
    }
    if matches!(p.peek(), Some(TokKind::Sym('{'))) {
        p.pos += 1;
    }
    let mut statements = Vec::new();
    loop {
        match p.peek() {
            // Skip #pragma lines' tokens conservatively.
            Some(TokKind::Sym('#')) => {
                while let Some(t) = p.peek() {
                    let stop = matches!(t, TokKind::Ident(k) if k == "for");
                    if stop {
                        break;
                    }
                    p.pos += 1;
                }
            }
            Some(TokKind::Ident(k)) if k == "for" => {
                let idx = statements.len();
                statements.push(p.parse_statement(idx)?);
            }
            // `}` or trailing junk: both are reported below.
            _ => break,
        }
    }
    // Closing braces of the time loop, then nothing else.
    while matches!(p.peek(), Some(TokKind::Sym('}'))) {
        p.pos += 1;
    }
    if p.peek().is_some() {
        return Err(p.err_here(format!(
            "unexpected {} after the end of the time loop",
            p.found()
        )));
    }
    let spatial = p.iters.len();
    let field_names: Vec<&str> = p.fields.iter().map(String::as_str).collect();
    StencilProgram::new(name, spatial, &field_names, statements).map_err(ParseError::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::{flop_count, load_count};
    use crate::gallery;
    use crate::reference::ReferenceExecutor;
    use crate::Grid;

    const JACOBI_SRC: &str = r#"
        for (t = 0; t < T; t++)
          for (i = 1; i < N-1; i++)
            for (j = 1; j < N-1; j++)
              A[t+1][i][j] = 0.2f * (A[t][i][j] + A[t][i+1][j] + A[t][i-1][j]
                                   + A[t][i][j+1] + A[t][i][j-1]);
    "#;

    #[test]
    fn parses_figure1_jacobi() {
        let p = parse_stencil("jacobi", JACOBI_SRC).unwrap();
        assert_eq!(p.spatial_dims(), 2);
        assert_eq!(p.num_statements(), 1);
        assert_eq!(load_count(&p.statements()[0].expr), 5);
        assert_eq!(flop_count(&p.statements()[0].expr), 5);
        assert_eq!(p.radius(), vec![1, 1]);
    }

    #[test]
    fn parsed_jacobi_computes_like_the_gallery_jacobi() {
        let parsed = parse_stencil("jacobi", JACOBI_SRC).unwrap();
        let builtin = gallery::jacobi2d();
        let init = Grid::random(&[12, 12], 9);
        let mut a = ReferenceExecutor::new(&parsed, std::slice::from_ref(&init));
        let mut b = ReferenceExecutor::new(&builtin, &[init]);
        a.run(4);
        b.run(4);
        // The gallery builds the sum in the same order as the source, so
        // both must agree bit-for-bit.
        assert!(a.field(0).bit_equal(b.field(0)));
    }

    #[test]
    fn parses_multi_statement_fdtd_style_input() {
        let src = r#"
            for (t = 0; t < T; t++) {
              for (i = 1; i < N-1; i++)
                for (j = 1; j < N-1; j++)
                  ey[t+1][i][j] = ey[t][i][j] - 0.5f * (hz[t][i][j] - hz[t][i-1][j]);
              for (i = 1; i < N-1; i++)
                for (j = 1; j < N-1; j++)
                  hz[t+1][i][j] = hz[t][i][j] - 0.7f * (ey[t+1][i+1][j] - ey[t+1][i][j]);
            }
        "#;
        let p = parse_stencil("mini_fdtd", src).unwrap();
        assert_eq!(p.num_statements(), 2);
        assert_eq!(p.field_names(), &["ey".to_string(), "hz".to_string()]);
        // hz reads ey[t+1]: same-iteration (dt = 0) forward dependence.
        let hz = &p.statements()[1];
        assert!(hz.expr.loads().iter().any(|a| a.dt == 0));
    }

    #[test]
    fn parses_sqrtf_and_unary_minus() {
        let src = r#"
            for (t = 0; t < T; t++)
              for (i = 1; i < N-1; i++)
                A[t+1][i] = sqrtf(A[t][i+1] * A[t][i+1]) - -1.0f;
        "#;
        let p = parse_stencil("g", src).unwrap();
        // `- -1.0f` folds the negated literal into Const(-1.0): one mul
        // inside sqrtf, the sqrt itself, and the binary minus.
        assert_eq!(flop_count(&p.statements()[0].expr), 1 + 3 + 1);
    }

    #[test]
    fn comments_are_ignored() {
        let src = r#"
            // Line comment before anything.
            /* A block
               comment. */
            for (t = 0; t < T; t++) // trailing comment
              for (i = 1; i < N-1; i++) /* inline */
                A[t+1][i] = 0.5f * (A[t][i-1] + A[t][i+1]); // done
        "#;
        let p = parse_stencil("c", src).unwrap();
        assert_eq!(load_count(&p.statements()[0].expr), 2);
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        let err = parse_stencil("c", "/* never closed").unwrap_err();
        assert!(err.message().contains("unterminated"), "{err}");
        assert_eq!(err.span(), Some(Span { line: 1, col: 1 }));
    }

    #[test]
    fn named_constants_substitute_their_value() {
        let src = r#"
            const float w = 0.25f;
            float c = -2.0;
            for (t = 0; t < T; t++)
              for (i = 1; i < N-1; i++)
                A[t+1][i] = w * (A[t][i-1] + A[t][i+1]) + c * A[t][i];
        "#;
        let p = parse_stencil("k", src).unwrap();
        let expr = &p.statements()[0].expr;
        assert_eq!(load_count(expr), 3);
        // A negative constant substitutes as a single literal, not 0 - c.
        let mut consts = Vec::new();
        let mut collect = |e: &StencilExpr| {
            if let StencilExpr::Const(c) = e {
                consts.push(*c);
            }
        };
        fn walk(e: &StencilExpr, f: &mut impl FnMut(&StencilExpr)) {
            f(e);
            match e {
                StencilExpr::Add(a, b) | StencilExpr::Sub(a, b) | StencilExpr::Mul(a, b) => {
                    walk(a, f);
                    walk(b, f);
                }
                StencilExpr::Sqrt(a) => walk(a, f),
                _ => {}
            }
        }
        walk(expr, &mut collect);
        assert_eq!(consts, vec![0.25, -2.0]);
        // And the whole expression evaluates as the substituted formula.
        let v = expr.eval(&mut |a| a.offsets[0] as f32 + 10.0);
        assert_eq!(v, 0.25f32 * (9.0 + 11.0) + -2.0f32 * 10.0);
    }

    #[test]
    fn constants_cannot_be_indexed_or_redeclared() {
        let twice = "const a = 1.0; const a = 2.0;\nfor (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = a;";
        let err = parse_stencil("k", twice).unwrap_err();
        assert!(err.message().contains("declared twice"), "{err}");

        let indexed = "const a = 1.0;\nfor (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = a[t][i];";
        let err = parse_stencil("k", indexed).unwrap_err();
        assert!(err.message().contains("cannot be indexed"), "{err}");
    }

    #[test]
    fn unknown_identifier_is_named_in_the_error() {
        let src = "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = alpha * A[t][i];";
        let err = parse_stencil("k", src).unwrap_err();
        assert!(err.message().contains("`alpha`"), "{err}");
        assert_eq!(err.span(), Some(Span { line: 3, col: 17 }));
    }

    #[test]
    fn rejects_future_reads() {
        let src = r#"
            for (t = 0; t < T; t++)
              for (i = 1; i < N-1; i++)
                A[t+1][i] = A[t+2][i];
        "#;
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(err.message().contains("future"), "{err}");
    }

    #[test]
    fn rejects_self_dependence_within_iteration() {
        // A[t+1] reading A[t+1] of the same field: scheduled distance 0.
        let src = r#"
            for (t = 0; t < T; t++)
              for (i = 1; i < N-1; i++)
                A[t+1][i] = A[t+1][i-1];
        "#;
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(err.message().contains("not carried"), "{err}");
        assert_eq!(err.span(), None, "program-level validation has no span");
    }

    #[test]
    fn rejects_mismatched_iterator_order() {
        let src = r#"
            for (t = 0; t < T; t++)
              for (i = 1; i < N-1; i++)
                for (j = 1; j < N-1; j++)
                  A[t+1][i][j] = A[t][j][i];
        "#;
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(err.message().contains("order must match"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_offsets() {
        let src = "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = A[t][i+9999999999999];";
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(err.message().contains("out of range"), "{err}");
        // The span names the offending number, not the access.
        assert_eq!(err.span(), Some(Span { line: 3, col: 24 }));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let src = "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = A[t][i];\n}} extra";
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(err.message().contains("identifier `extra`"), "{err}");
        assert_eq!(err.span(), Some(Span { line: 4, col: 4 }));
    }

    #[test]
    fn spans_point_at_the_offending_token() {
        // Missing semicolon: the error points at the `}` that appears
        // where `;` was expected.
        let src =
            "for (t = 0; t < T; t++) {\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = A[t][i]\n}";
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(err.message().contains("expected `;`"), "{err}");
        assert_eq!(err.span(), Some(Span { line: 4, col: 1 }));
        assert!(err.to_string().contains("line 4, column 1"), "{err}");

        // Bad time index on the left-hand side: points at `t`.
        let src = "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t][i] = A[t][i];";
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(err.message().contains("[t+1]"), "{err}");
        assert_eq!(err.span(), Some(Span { line: 3, col: 7 }));
    }

    #[test]
    fn pragma_lines_are_ignored() {
        let src = r#"
            for (t = 0; t < T; t++)
              # pragma ivdep
              for (i = 1; i < N-1; i++)
                A[t+1][i] = 0.5f * (A[t][i-1] + A[t][i+1]);
        "#;
        assert!(parse_stencil("p", src).is_ok());
    }
}
