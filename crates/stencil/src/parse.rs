//! A `pet`-like front end: parse Fig. 1-style C loop nests into
//! [`StencilProgram`]s.
//!
//! The paper extracts its polyhedral description from C with `pet`. This
//! module accepts the same shape of input — an outer time loop containing
//! one or more perfect spatial loop nests whose bodies are single
//! assignments with constant-offset accesses — and produces the canonical
//! program model directly:
//!
//! ```
//! let src = r#"
//! for (t = 0; t < T; t++)
//!   for (i = 1; i < N-1; i++)
//!     for (j = 1; j < N-1; j++)
//!       A[t+1][i][j] = 0.2f * (A[t][i][j] + A[t][i+1][j] + A[t][i-1][j]
//!                            + A[t][i][j+1] + A[t][i][j-1]);
//! "#;
//! let program = stencil::parse::parse_stencil("jacobi", src).unwrap();
//! assert_eq!(program.spatial_dims(), 2);
//! assert_eq!(stencil::characteristics::load_count(&program.statements()[0].expr), 5);
//! ```
//!
//! Time indexing follows the paper's convention: `A[t+1][..]` on the
//! left-hand side is the value produced this iteration; a read `A[t-d][..]`
//! has time distance `dt = 1 + d` (`A[t]` reads the previous iteration,
//! `A[t+1]` reads a value produced earlier in the *same* iteration by an
//! earlier statement).

use crate::program::{FieldId, Statement, StencilExpr, StencilProgram};

/// A parse failure with a human-readable message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stencil parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Num(String),
    Sym(char),
}

fn tokenize(src: &str) -> Result<Vec<Tok>, ParseError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    s.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(Tok::Ident(s));
        } else if c.is_ascii_digit() {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() || c == '.' {
                    s.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            // An 'f' suffix on float literals is consumed silently.
            if let Some(&'f') = chars.peek() {
                chars.next();
            }
            out.push(Tok::Num(s));
        } else if "()[]{}=+-*/;<>,#".contains(c) {
            chars.next();
            out.push(Tok::Sym(c));
        } else {
            return Err(ParseError(format!("unexpected character {c:?}")));
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    /// Spatial loop iterator names, outermost first.
    iters: Vec<String>,
    /// Field names in declaration (first-use) order.
    fields: Vec<String>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Sym(s)) if s == c => Ok(()),
            other => Err(ParseError(format!("expected {c:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Consumes a `for (x = ...; x < ...; x++)` header, returning the
    /// iterator name. Bounds are accepted but not interpreted (domains are
    /// supplied at run time, as in the rest of the pipeline).
    fn parse_for_header(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(k)) if k == "for" => {}
            other => return Err(ParseError(format!("expected 'for', found {other:?}"))),
        }
        self.expect_sym('(')?;
        let var = self.expect_ident()?;
        // Skip everything to the matching ')'.
        let mut depth = 1;
        while depth > 0 {
            match self.next() {
                Some(Tok::Sym('(')) => depth += 1,
                Some(Tok::Sym(')')) => depth -= 1,
                Some(_) => {}
                None => return Err(ParseError("unterminated for header".into())),
            }
        }
        Ok(var)
    }

    fn field_id(&mut self, name: &str) -> FieldId {
        if let Some(i) = self.fields.iter().position(|f| f == name) {
            FieldId(i)
        } else {
            self.fields.push(name.to_string());
            FieldId(self.fields.len() - 1)
        }
    }

    /// Parses an index expression `iter`, `iter+c`, `iter-c`, or for the
    /// time dimension `t`, `t+1`, `t-c`. Returns `(iter name, offset)`.
    fn parse_index(&mut self) -> Result<(String, i64), ParseError> {
        self.expect_sym('[')?;
        let var = self.expect_ident()?;
        let off = match self.peek() {
            Some(Tok::Sym('+')) => {
                self.next();
                match self.next() {
                    Some(Tok::Num(n)) => n
                        .parse::<i64>()
                        .map_err(|_| ParseError(format!("bad offset {n}")))?,
                    other => return Err(ParseError(format!("expected offset, found {other:?}"))),
                }
            }
            Some(Tok::Sym('-')) => {
                self.next();
                match self.next() {
                    Some(Tok::Num(n)) => -n
                        .parse::<i64>()
                        .map_err(|_| ParseError(format!("bad offset {n}")))?,
                    other => return Err(ParseError(format!("expected offset, found {other:?}"))),
                }
            }
            _ => 0,
        };
        self.expect_sym(']')?;
        Ok((var, off))
    }

    /// Parses an access `F[t±c][i±a][j±b]...`, returning the load.
    fn parse_access(&mut self, name: String) -> Result<StencilExpr, ParseError> {
        let field = self.field_id(&name);
        let (tvar, toff) = self.parse_index()?;
        if tvar != "t" {
            return Err(ParseError(format!(
                "first index of {name} must be the time iterator, found {tvar}"
            )));
        }
        // A[t+off]: produced at iteration t+off-1, read at iteration t:
        // dt = 1 - off.
        let dt = 1 - toff;
        if dt < 0 {
            return Err(ParseError(format!(
                "access {name}[t+{toff}] reads the future"
            )));
        }
        let mut offsets = Vec::new();
        let mut seen = Vec::new();
        while matches!(self.peek(), Some(Tok::Sym('['))) {
            let (var, off) = self.parse_index()?;
            seen.push(var);
            offsets.push(off);
        }
        if seen != self.iters {
            return Err(ParseError(format!(
                "access {name} indexes {seen:?}, loop nest uses {:?} (order must match)",
                self.iters
            )));
        }
        Ok(StencilExpr::load(field, dt, &offsets))
    }

    /// expr := term (('+'|'-') term)*
    fn parse_expr(&mut self) -> Result<StencilExpr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek() {
                Some(Tok::Sym('+')) => {
                    self.next();
                    let rhs = self.parse_term()?;
                    lhs = StencilExpr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(Tok::Sym('-')) => {
                    self.next();
                    let rhs = self.parse_term()?;
                    lhs = StencilExpr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// term := factor ('*' factor)*
    fn parse_term(&mut self) -> Result<StencilExpr, ParseError> {
        let mut lhs = self.parse_factor()?;
        while matches!(self.peek(), Some(Tok::Sym('*'))) {
            self.next();
            let rhs = self.parse_factor()?;
            lhs = StencilExpr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// factor := number | access | sqrtf(expr) | '(' expr ')' | '-' factor
    fn parse_factor(&mut self) -> Result<StencilExpr, ParseError> {
        match self.next() {
            Some(Tok::Num(n)) => n
                .parse::<f32>()
                .map(StencilExpr::Const)
                .map_err(|_| ParseError(format!("bad literal {n}"))),
            Some(Tok::Sym('(')) => {
                let e = self.parse_expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Some(Tok::Sym('-')) => {
                let e = self.parse_factor()?;
                Ok(StencilExpr::Sub(
                    Box::new(StencilExpr::Const(0.0)),
                    Box::new(e),
                ))
            }
            Some(Tok::Ident(name)) if name == "sqrtf" => {
                self.expect_sym('(')?;
                let e = self.parse_expr()?;
                self.expect_sym(')')?;
                Ok(StencilExpr::Sqrt(Box::new(e)))
            }
            Some(Tok::Ident(name)) => self.parse_access(name),
            other => Err(ParseError(format!("unexpected token {other:?}"))),
        }
    }

    /// One statement: spatial `for` headers followed by
    /// `F[t+1][iters..] = expr ;`.
    fn parse_statement(&mut self, index: usize) -> Result<Statement, ParseError> {
        let mut iters = Vec::new();
        while matches!(self.peek(), Some(Tok::Ident(k)) if k == "for") {
            iters.push(self.parse_for_header()?);
            // Optional braces are skipped transparently.
            if matches!(self.peek(), Some(Tok::Sym('{'))) {
                self.next();
            }
        }
        if iters.is_empty() {
            return Err(ParseError("statement without spatial loops".into()));
        }
        if self.iters.is_empty() {
            self.iters = iters.clone();
        } else if self.iters != iters {
            return Err(ParseError(format!(
                "all loop nests must share iterator names/order: {:?} vs {iters:?}",
                self.iters
            )));
        }
        let name = self.expect_ident()?;
        let field = self.field_id(&name);
        let (tvar, toff) = self.parse_index()?;
        if tvar != "t" || toff != 1 {
            return Err(ParseError(format!(
                "left-hand side of {name} must be indexed [t+1]"
            )));
        }
        for expect in self.iters.clone() {
            let (var, off) = self.parse_index()?;
            if var != expect || off != 0 {
                return Err(ParseError(format!(
                    "left-hand side must be written at [{expect}] exactly"
                )));
            }
        }
        self.expect_sym('=')?;
        let expr = self.parse_expr()?;
        self.expect_sym(';')?;
        // Consume any closing braces.
        while matches!(self.peek(), Some(Tok::Sym('}'))) {
            self.next();
        }
        Ok(Statement {
            name: format!("S{index}"),
            writes: field,
            expr,
        })
    }
}

/// Parses a Fig. 1-style C loop nest into a validated [`StencilProgram`].
///
/// # Errors
///
/// Returns [`ParseError`] for malformed input, and forwards
/// [`StencilProgram::new`] validation failures (non-canonical dependence
/// structure) as parse errors.
pub fn parse_stencil(name: &str, src: &str) -> Result<StencilProgram, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        iters: Vec::new(),
        fields: Vec::new(),
    };
    // Outer time loop.
    let tvar = p.parse_for_header()?;
    if tvar != "t" {
        return Err(ParseError(format!(
            "outermost loop must iterate 't', found {tvar}"
        )));
    }
    if matches!(p.peek(), Some(Tok::Sym('{'))) {
        p.next();
    }
    let mut statements = Vec::new();
    while p.peek().is_some() && !matches!(p.peek(), Some(Tok::Sym('}'))) {
        // Skip #pragma lines' tokens conservatively.
        if matches!(p.peek(), Some(Tok::Sym('#'))) {
            while let Some(t) = p.peek() {
                let stop = matches!(t, Tok::Ident(k) if k == "for");
                if stop {
                    break;
                }
                p.next();
            }
            continue;
        }
        let idx = statements.len();
        statements.push(p.parse_statement(idx)?);
    }
    let spatial = p.iters.len();
    let field_names: Vec<&str> = p.fields.iter().map(String::as_str).collect();
    StencilProgram::new(name, spatial, &field_names, statements).map_err(ParseError)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::{flop_count, load_count};
    use crate::gallery;
    use crate::reference::ReferenceExecutor;
    use crate::Grid;

    const JACOBI_SRC: &str = r#"
        for (t = 0; t < T; t++)
          for (i = 1; i < N-1; i++)
            for (j = 1; j < N-1; j++)
              A[t+1][i][j] = 0.2f * (A[t][i][j] + A[t][i+1][j] + A[t][i-1][j]
                                   + A[t][i][j+1] + A[t][i][j-1]);
    "#;

    #[test]
    fn parses_figure1_jacobi() {
        let p = parse_stencil("jacobi", JACOBI_SRC).unwrap();
        assert_eq!(p.spatial_dims(), 2);
        assert_eq!(p.num_statements(), 1);
        assert_eq!(load_count(&p.statements()[0].expr), 5);
        assert_eq!(flop_count(&p.statements()[0].expr), 5);
        assert_eq!(p.radius(), vec![1, 1]);
    }

    #[test]
    fn parsed_jacobi_computes_like_the_gallery_jacobi() {
        let parsed = parse_stencil("jacobi", JACOBI_SRC).unwrap();
        let builtin = gallery::jacobi2d();
        let init = Grid::random(&[12, 12], 9);
        let mut a = ReferenceExecutor::new(&parsed, std::slice::from_ref(&init));
        let mut b = ReferenceExecutor::new(&builtin, &[init]);
        a.run(4);
        b.run(4);
        // The gallery builds the sum in the same order as the source, so
        // both must agree bit-for-bit.
        assert!(a.field(0).bit_equal(b.field(0)));
    }

    #[test]
    fn parses_multi_statement_fdtd_style_input() {
        let src = r#"
            for (t = 0; t < T; t++) {
              for (i = 1; i < N-1; i++)
                for (j = 1; j < N-1; j++)
                  ey[t+1][i][j] = ey[t][i][j] - 0.5f * (hz[t][i][j] - hz[t][i-1][j]);
              for (i = 1; i < N-1; i++)
                for (j = 1; j < N-1; j++)
                  hz[t+1][i][j] = hz[t][i][j] - 0.7f * (ey[t+1][i+1][j] - ey[t+1][i][j]);
            }
        "#;
        let p = parse_stencil("mini_fdtd", src).unwrap();
        assert_eq!(p.num_statements(), 2);
        assert_eq!(p.field_names(), &["ey".to_string(), "hz".to_string()]);
        // hz reads ey[t+1]: same-iteration (dt = 0) forward dependence.
        let hz = &p.statements()[1];
        assert!(hz.expr.loads().iter().any(|a| a.dt == 0));
    }

    #[test]
    fn parses_sqrtf_and_unary_minus() {
        let src = r#"
            for (t = 0; t < T; t++)
              for (i = 1; i < N-1; i++)
                A[t+1][i] = sqrtf(A[t][i+1] * A[t][i+1]) - -1.0f;
        "#;
        let p = parse_stencil("g", src).unwrap();
        assert_eq!(flop_count(&p.statements()[0].expr), 1 + 3 + 1 + 1);
    }

    #[test]
    fn rejects_future_reads() {
        let src = r#"
            for (t = 0; t < T; t++)
              for (i = 1; i < N-1; i++)
                A[t+1][i] = A[t+2][i];
        "#;
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(err.0.contains("future"), "{err}");
    }

    #[test]
    fn rejects_self_dependence_within_iteration() {
        // A[t+1] reading A[t+1] of the same field: scheduled distance 0.
        let src = r#"
            for (t = 0; t < T; t++)
              for (i = 1; i < N-1; i++)
                A[t+1][i] = A[t+1][i-1];
        "#;
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(err.0.contains("not carried"), "{err}");
    }

    #[test]
    fn rejects_mismatched_iterator_order() {
        let src = r#"
            for (t = 0; t < T; t++)
              for (i = 1; i < N-1; i++)
                for (j = 1; j < N-1; j++)
                  A[t+1][i][j] = A[t][j][i];
        "#;
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(err.0.contains("order must match"), "{err}");
    }

    #[test]
    fn pragma_lines_are_ignored() {
        let src = r#"
            for (t = 0; t < T; t++)
              # pragma ivdep
              for (i = 1; i < N-1; i++)
                A[t+1][i] = 0.5f * (A[t][i-1] + A[t][i+1]);
        "#;
        assert!(parse_stencil("p", src).is_ok());
    }
}
