//! # stencil — stencil programs, dependence analysis, and the CGO'14 gallery
//!
//! This crate replaces the paper's C front end (`pet`): instead of parsing C,
//! stencil computations are described directly in the canonical form the
//! paper's preprocessing step (§3.2) produces — an outer time loop containing
//! `k >= 1` perfectly nested, fully parallel loop nests with constant-offset
//! accesses.
//!
//! Provided here:
//!
//! * [`StencilProgram`] / [`Statement`] / [`StencilExpr`]: the program model,
//!   with validation of the paper's §3.3.1 input constraints,
//! * [`deps`]: dependence analysis — exact distance vectors in the scheduled
//!   space `[k·t + i, s0, .., sn]` plus full dependence relations as
//!   [`polylib::Map`]s,
//! * [`mod@reference`]: a sequential CPU oracle executor used to validate every
//!   GPU-simulated kernel bit-for-bit,
//! * [`gallery`]: the benchmarks of the paper's Table 3 (laplacian/heat/
//!   gradient in 2D and 3D, the multi-statement fdtd-2d, Fig. 1's jacobi2d,
//!   and §3.3.2's contrived 1D example),
//! * [`characteristics`]: the static per-stencil numbers reported in Table 3.

pub mod characteristics;
pub mod deps;
pub mod domain;
pub mod gallery;
pub mod grid;
pub mod parse;
pub mod program;
pub mod reference;

pub use characteristics::Characteristics;
pub use deps::{distance_vectors, DistanceVector};
pub use grid::Grid;
pub use program::{Access, FieldId, Statement, StencilExpr, StencilProgram};
pub use reference::ReferenceExecutor;
