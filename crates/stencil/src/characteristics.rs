//! Static per-stencil characteristics — the numbers of the paper's Table 3.

use crate::gallery;
use crate::program::{StencilExpr, StencilProgram};

/// Static characteristics of one stencil program (one Table 3 row; fdtd-2d
/// produces one entry per statement, matching the paper's three sub-rows).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Characteristics {
    /// Program name.
    pub name: String,
    /// Distinct cells read per statement, in statement order ("Loads").
    pub loads: Vec<usize>,
    /// Arithmetic operations per statement ("FLOPs/Stencil"); `sqrt` counts
    /// as 3 FLOPs.
    pub flops: Vec<usize>,
    /// Per-dimension data size of the paper workload.
    pub data_size: Vec<usize>,
    /// Time steps of the paper workload.
    pub steps: usize,
}

/// Counts the FLOPs of an expression (`sqrt` = 3, following common practice
/// for throughput accounting; see EXPERIMENTS.md).
pub fn flop_count(e: &StencilExpr) -> usize {
    match e {
        StencilExpr::Load(_) | StencilExpr::Const(_) => 0,
        // A square `d * d` evaluates its operand once (the compiler keeps it
        // in a register), so the operand is counted once.
        StencilExpr::Mul(a, b) if a == b => 1 + flop_count(a),
        StencilExpr::Add(a, b) | StencilExpr::Sub(a, b) | StencilExpr::Mul(a, b) => {
            1 + flop_count(a) + flop_count(b)
        }
        StencilExpr::Sqrt(a) => 3 + flop_count(a),
    }
}

/// Counts the *distinct* cells an expression reads (aliased loads of the
/// same `(field, dt, offsets)` count once — they hit the same register or
/// shared-memory slot).
pub fn load_count(e: &StencilExpr) -> usize {
    let mut seen: Vec<(usize, i64, Vec<i64>)> = Vec::new();
    for a in e.loads() {
        let key = (a.field.0, a.dt, a.offsets.clone());
        if !seen.contains(&key) {
            seen.push(key);
        }
    }
    seen.len()
}

/// Computes the Table 3 characteristics of a program.
pub fn characteristics(program: &StencilProgram) -> Characteristics {
    let (data_size, steps) = gallery::paper_workload(program);
    Characteristics {
        name: program.name().to_string(),
        loads: program
            .statements()
            .iter()
            .map(|s| load_count(&s.expr))
            .collect(),
        flops: program
            .statements()
            .iter()
            .map(|s| flop_count(&s.expr))
            .collect(),
        data_size,
        steps,
    }
}

/// Renders the full Table 3.
pub fn table3() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>6} {:>14} {:>12} {:>6}\n",
        "", "Loads", "FLOPs/Stencil", "Data-size", "Steps"
    ));
    for p in gallery::table3_stencils() {
        let c = characteristics(&p);
        let size = match c.data_size.as_slice() {
            [n, _] => format!("{n}^2"),
            [n, _, _] => format!("{n}^3"),
            other => format!("{other:?}"),
        };
        for (row, (l, f)) in c.loads.iter().zip(&c.flops).enumerate() {
            let name = if row == 0 { c.name.as_str() } else { "" };
            out.push_str(&format!(
                "{:<14} {:>6} {:>14} {:>12} {:>6}\n",
                name, l, f, size, c.steps
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery::*;

    #[test]
    fn table3_loads_match_paper() {
        assert_eq!(characteristics(&laplacian2d()).loads, vec![5]);
        assert_eq!(characteristics(&heat2d()).loads, vec![9]);
        assert_eq!(characteristics(&gradient2d()).loads, vec![5]);
        assert_eq!(characteristics(&fdtd2d()).loads, vec![3, 3, 5]);
        assert_eq!(characteristics(&laplacian3d()).loads, vec![7]);
        assert_eq!(characteristics(&heat3d()).loads, vec![27]);
        assert_eq!(characteristics(&gradient3d()).loads, vec![7]);
    }

    #[test]
    fn table3_flops_match_paper() {
        assert_eq!(characteristics(&laplacian2d()).flops, vec![6]);
        assert_eq!(characteristics(&heat2d()).flops, vec![9]);
        assert_eq!(characteristics(&gradient2d()).flops, vec![15]);
        assert_eq!(characteristics(&fdtd2d()).flops, vec![3, 3, 5]);
        assert_eq!(characteristics(&laplacian3d()).flops, vec![8]);
        assert_eq!(characteristics(&heat3d()).flops, vec![27]);
        assert_eq!(characteristics(&gradient3d()).flops, vec![20]);
    }

    #[test]
    fn table3_sizes_match_paper() {
        let c2 = characteristics(&heat2d());
        assert_eq!((c2.data_size[0], c2.steps), (3072, 512));
        let c3 = characteristics(&heat3d());
        assert_eq!((c3.data_size[0], c3.steps), (384, 128));
    }

    #[test]
    fn rendered_table_has_nine_rows() {
        let t = table3();
        // Header + 6 single-statement stencils + 3 fdtd statements.
        assert_eq!(t.lines().count(), 10);
        assert!(t.contains("laplacian2d"));
        assert!(t.contains("3072^2"));
    }
}
