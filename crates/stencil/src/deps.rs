//! Dependence analysis: exact distance vectors in the scheduled space.
//!
//! After the §3.2 preprocessing schedule `Li[t, s..] -> [k·t + i, s..]`, a
//! read by statement `i` of the value written by statement `j` at time
//! distance `dt` with spatial `offsets` induces the scheduled distance
//! vector `(k·dt + i - j, -offsets..)` — the "difference in the schedule
//! space between a statement instance and a statement instance on which it
//! depends" (§3.1). For the paper's running example
//! `A[t][i] = f(A[t-2][i-2], A[t-1][i+2])` this yields `{(2, 2), (1, -2)}`,
//! exactly the set shown in Fig. 3.

use crate::program::{FieldId, StencilProgram};
use polylib::{BasicMap, BasicSet, Map};

/// A dependence distance vector `(Δτ, Δs0, .., Δsn)` in the scheduled space.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DistanceVector {
    /// Distance along the combined outer (time) dimension; always `>= 1`.
    pub dt: i64,
    /// Distances along the spatial dimensions.
    pub ds: Vec<i64>,
}

impl DistanceVector {
    /// Builds a distance vector.
    pub fn new(dt: i64, ds: &[i64]) -> DistanceVector {
        DistanceVector {
            dt,
            ds: ds.to_vec(),
        }
    }
}

/// Computes the set of distinct dependence distance vectors of `program` in
/// the scheduled space `[k·t + i, s0, .., sn]`.
///
/// All stencil dependences are uniform (constant offsets), so the result is
/// a finite set. Vectors are deduplicated and sorted for determinism.
pub fn distance_vectors(program: &StencilProgram) -> Vec<DistanceVector> {
    let k = program.num_statements() as i64;
    let mut out: Vec<DistanceVector> = Vec::new();
    for (i, st) in program.statements().iter().enumerate() {
        for a in st.expr.loads() {
            let j = program.writer_of(a.field) as i64;
            let dt = k * a.dt + (i as i64 - j);
            debug_assert!(dt >= 1, "validated program carries all deps");
            let ds: Vec<i64> = a.offsets.iter().map(|&o| -o).collect();
            let v = DistanceVector { dt, ds };
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out.sort_by(|a, b| (a.dt, &a.ds).cmp(&(b.dt, &b.ds)));
    out
}

/// Distance vectors including *storage* (anti/output) dependences for the
/// ring-buffered array layout with `planes = max_dt + 1` time planes per
/// field — the layout of the paper's Fig. 1 input (`A[(t+1)%2]`).
///
/// A read by statement `i` of the value written by `j` at time distance
/// `dt` occupies cell `(field, (t-dt+1) mod planes, s+off)`; the next
/// writer of that cell is `j` at iteration `t - dt + planes`, giving the
/// anti-dependence vector `(k·(planes-dt) + j - i, +off)`. The paper's
/// dependence analysis (isl over the modulo-buffered C input) sees these
/// too; executable schedules must respect them or the ring would be
/// clobbered while readers still need the old value. For symmetric
/// stencils the storage vectors coincide with mirrored flow vectors.
pub fn distance_vectors_with_storage(program: &StencilProgram, planes: i64) -> Vec<DistanceVector> {
    let k = program.num_statements() as i64;
    let mut out = distance_vectors(program);
    for (i, st) in program.statements().iter().enumerate() {
        for a in st.expr.loads() {
            let j = program.writer_of(a.field) as i64;
            let dt_anti = k * (planes - a.dt) + (j - i as i64);
            if dt_anti < 1 {
                // Cannot happen for planes > max_dt, but stay defensive.
                continue;
            }
            let v = DistanceVector {
                dt: dt_anti,
                ds: a.offsets.clone(),
            };
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out.sort_by(|a, b| (a.dt, &a.ds).cmp(&(b.dt, &b.ds)));
    out
}

/// Builds the full dependence relation of `program` over a bounded scheduled
/// domain, as a union of uniform translations. `domain` must be a set over
/// `[τ, s0..sn]` (the scheduled space).
///
/// Used by verification: the hybrid schedule must order every pair of this
/// relation correctly.
pub fn dependence_relation(program: &StencilProgram, domain: &BasicSet) -> Map {
    let n = 1 + program.spatial_dims();
    assert_eq!(domain.dim(), n, "domain must be over [tau, s..]");
    let mut m = Map::empty(n, n);
    for v in distance_vectors(program) {
        let mut shift = Vec::with_capacity(n);
        shift.push(v.dt);
        shift.extend_from_slice(&v.ds);
        m.add_basic(BasicMap::translation(domain, &shift));
    }
    m
}

/// Per-dimension bounds of the distance vectors relative to `dt`:
/// returns `(max ds[d]/dt, max -ds[d]/dt)` as exact rationals — the raw
/// material for δ0/δ1 (§3.3.2).
pub fn slope_bounds(vectors: &[DistanceVector], dim: usize) -> (polylib::Rat, polylib::Rat) {
    use polylib::Rat;
    let mut up = Rat::from(0);
    let mut down = Rat::from(0);
    for v in vectors {
        let r = Rat::new(v.ds[dim] as i128, v.dt as i128);
        up = up.max(r);
        down = down.max(-r);
    }
    (up, down)
}

/// The field each statement writes, in statement order (convenience for
/// executors and code generators).
pub fn written_fields(program: &StencilProgram) -> Vec<FieldId> {
    program.statements().iter().map(|s| s.writes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gallery;

    #[test]
    fn paper_example_distances() {
        let p = gallery::contrived1d();
        let vs = distance_vectors(&p);
        assert_eq!(
            vs,
            vec![DistanceVector::new(1, &[-2]), DistanceVector::new(2, &[2]),]
        );
    }

    #[test]
    fn jacobi2d_distances_are_unit_cross() {
        let p = gallery::jacobi2d();
        let vs = distance_vectors(&p);
        assert_eq!(vs.len(), 5);
        for v in &vs {
            assert_eq!(v.dt, 1);
            assert!(v.ds.iter().all(|d| d.abs() <= 1));
        }
    }

    #[test]
    fn fdtd_has_dt0_cross_statement_deps() {
        let p = gallery::fdtd2d();
        let k = p.num_statements() as i64;
        assert_eq!(k, 3);
        let vs = distance_vectors(&p);
        // hz (statement 2) reads ex/ey written this iteration: distance 1, 2.
        assert!(vs.iter().any(|v| v.dt == 1));
        assert!(vs.iter().any(|v| v.dt == 2));
        // ey/ex read hz of the previous iteration (writer index 2):
        // k*1 + 0 - 2 = 1 and k*1 + 1 - 2 = 2.
        assert!(vs.iter().all(|v| v.dt >= 1));
    }

    #[test]
    fn slope_bounds_of_paper_example() {
        use polylib::Rat;
        let p = gallery::contrived1d();
        let vs = distance_vectors(&p);
        let (up, down) = slope_bounds(&vs, 0);
        assert_eq!(up, Rat::ONE); // delta0 = 1
        assert_eq!(down, Rat::from(2)); // delta1 = 2
    }

    #[test]
    fn dependence_relation_contains_expected_pairs() {
        let p = gallery::jacobi2d();
        let dom = polylib::BasicSet::box_set(&[(0, 9), (1, 8), (1, 8)]);
        let rel = dependence_relation(&p, &dom);
        // (t, i, j) depends on (t+1, i±1, j), etc.
        assert!(rel.contains_pair(&[3, 4, 4], &[4, 4, 5]));
        assert!(rel.contains_pair(&[3, 4, 4], &[4, 3, 4]));
        assert!(!rel.contains_pair(&[3, 4, 4], &[5, 4, 4]));
    }
}
