//! Parser robustness: random mutations and truncations of valid DSL
//! sources must produce a clean [`stencil::parse::ParseError`] (or, for
//! the rare mutation that stays grammatical, a valid program) — never a
//! panic. Errors must be diagnosable: non-empty message, and any span
//! within the bounds of the source.
//!
//! The proptest stand-in generates deterministic inputs, so a failure here
//! reproduces with plain `cargo test`.

use proptest::prelude::*;
use stencil::parse::{parse_stencil, ParseError};

/// Valid seed sources covering every syntactic feature: constants,
/// comments, multi-statement nests, sqrtf, dt = 2 reaches, pragmas.
fn seeds() -> Vec<&'static str> {
    vec![
        r#"
for (t = 0; t < T; t++)
  for (i = 1; i < N-1; i++)
    for (j = 1; j < N-1; j++)
      A[t+1][i][j] = 0.2f * (A[t][i][j] + A[t][i+1][j] + A[t][i-1][j]
                           + A[t][i][j+1] + A[t][i][j-1]);
"#,
        r#"
// constants and comments
const float w = 0.25f;
float c = -2.0;
for (t = 0; t < T; t++) /* time */
  for (i = 1; i < N-1; i++)
    A[t+1][i] = w * (A[t][i-1] + A[t][i+1]) + c * A[t][i];
"#,
        r#"
for (t = 0; t < T; t++) {
  for (i = 1; i < N-1; i++)
    for (j = 1; j < N-1; j++)
      ey[t+1][i][j] = ey[t][i][j] - 0.5f * (hz[t][i][j] - hz[t][i-1][j]);
  # pragma unroll
  for (i = 1; i < N-1; i++)
    for (j = 1; j < N-1; j++)
      hz[t+1][i][j] = hz[t][i][j] - 0.7f * (ey[t+1][i+1][j] - ey[t+1][i][j]);
}
"#,
        r#"
for (t = 0; t < T; t++)
  for (i = 2; i < N-2; i++)
    A[t+1][i] = sqrtf(A[t-1][i-2] * A[t-1][i-2]) - -1.0f * A[t][i+2];
"#,
    ]
}

/// The character pool mutations draw from: grammar characters, digits,
/// letters, and a few that are always illegal.
const POOL: &[u8] = b"()[]{}=+-*/;<>,#._ \n\t0123456789abtizANw\"@$%&?";

fn check_outcome(src: &str, out: &Result<stencil::StencilProgram, ParseError>) {
    if let Err(e) = out {
        let shown = e.to_string();
        assert!(
            shown.starts_with("stencil parse error"),
            "error display lost its prefix: {shown}"
        );
        assert!(!e.message().is_empty(), "empty parse error message");
        if let Some(span) = e.span() {
            let lines = src.lines().count() as u32;
            assert!(
                span.line >= 1 && span.line <= lines + 1,
                "span {span:?} outside the {lines}-line source"
            );
            assert!(span.col >= 1, "columns are 1-based: {span:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Single-character replace / insert / delete anywhere in a valid
    /// source: parsing must terminate without panicking, and failures
    /// must be well-formed errors.
    #[test]
    fn char_mutations_never_panic(
        seed in 0usize..4,
        kind in 0u8..3,
        pos_pick in 0usize..10_000,
        chr_pick in 0usize..POOL.len(),
    ) {
        let mut chars: Vec<char> = seeds()[seed].chars().collect();
        let pos = pos_pick % chars.len();
        let c = POOL[chr_pick] as char;
        match kind {
            0 => chars[pos] = c,
            1 => chars.insert(pos, c),
            _ => {
                chars.remove(pos);
            }
        }
        let mutated: String = chars.into_iter().collect();
        let out = parse_stencil("mutated", &mutated);
        check_outcome(&mutated, &out);
    }

    /// Truncations: every proper prefix must parse without panicking.
    /// (A prefix can still be a smaller valid program — e.g. cutting a
    /// multi-statement body after its first statement — so `Ok` is legal;
    /// a panic never is.)
    #[test]
    fn truncations_never_panic(seed in 0usize..4, cut_pick in 0usize..10_000) {
        let chars: Vec<char> = seeds()[seed].chars().collect();
        let cut = cut_pick % chars.len();
        let prefix: String = chars[..cut].iter().collect();
        let out = parse_stencil("truncated", &prefix);
        check_outcome(&prefix, &out);
    }

    /// Token-level swaps: exchanging two random whitespace-separated
    /// chunks of the source keeps every token lexable, so this drives the
    /// *parser* (not the tokenizer) into unexpected-token paths.
    #[test]
    fn token_swaps_never_panic(seed in 0usize..4, a_pick in 0usize..1000, b_pick in 0usize..1000) {
        let src = seeds()[seed];
        let mut words: Vec<&str> = src.split_whitespace().collect();
        let n = words.len();
        words.swap(a_pick % n, b_pick % n);
        let swapped = words.join(" ");
        let out = parse_stencil("swapped", &swapped);
        check_outcome(&swapped, &out);
    }
}

#[test]
fn seeds_are_valid() {
    for (i, s) in seeds().iter().enumerate() {
        parse_stencil("seed", s).unwrap_or_else(|e| panic!("seed {i} invalid: {e}"));
    }
}

#[test]
fn error_messages_name_the_offending_token() {
    // Each (source, expected-fragment) pair: the fragment quotes the
    // token the parser should point at.
    let cases = [
        (
            "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = B;",
            "`B`",
        ),
        (
            "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = A[t][i] * ;",
            "`;`",
        ),
        (
            "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = A[t][q];",
            "order must match",
        ),
        ("for (x = 0; x < T; x++) {}", "`x`"),
        ("const float = 1.0;", "`=`"),
    ];
    for (src, fragment) in cases {
        let err = parse_stencil("bad", src).unwrap_err();
        assert!(
            err.message().contains(fragment),
            "error for {src:?} does not name {fragment}: {err}"
        );
    }
}
