//! Differential round-trip: every gallery program rendered to DSL text by
//! [`StencilProgram::to_c_like`] must re-parse to a semantically identical
//! program — same fields, same accesses, same radii, and bit-identical
//! reference-simulation output on a small grid.
//!
//! This pins the renderer and the parser to each other: a change to either
//! that breaks the `text -> program -> text` correspondence (new syntax
//! the parser does not accept, a rendering the parser reads differently)
//! fails here before it can corrupt a `hybridc` compile of a file produced
//! from an in-memory program.

use stencil::parse::parse_stencil;
use stencil::reference::ReferenceExecutor;
use stencil::{gallery, Grid, StencilProgram};

fn all_gallery_programs() -> Vec<StencilProgram> {
    let mut v = gallery::table3_stencils();
    v.push(gallery::jacobi2d());
    v.push(gallery::contrived1d());
    v
}

fn small_dims(program: &StencilProgram) -> Vec<usize> {
    match program.spatial_dims() {
        1 => vec![24],
        2 => vec![12, 14],
        _ => vec![8, 9, 10],
    }
}

#[test]
fn every_gallery_program_reparses_identically() {
    for program in all_gallery_programs() {
        let text = program.to_c_like();
        let reparsed = parse_stencil(program.name(), &text)
            .unwrap_or_else(|e| panic!("{} failed to reparse: {e}\n{text}", program.name()));
        assert!(
            program.same_computation(&reparsed),
            "{} reparsed to a different computation:\noriginal:\n{program}\nreparsed:\n{reparsed}",
            program.name()
        );
        assert_eq!(reparsed.radius(), program.radius(), "{}", program.name());
        assert_eq!(reparsed.max_dt(), program.max_dt(), "{}", program.name());
    }
}

#[test]
fn reparsed_programs_simulate_bit_identically() {
    for program in all_gallery_programs() {
        let reparsed = parse_stencil(program.name(), &program.to_c_like()).unwrap();
        let dims = small_dims(&program);
        // The parser may discover fields in a different first-use order
        // (fdtd: ey, hz, ex instead of ey, ex, hz), so seed and compare
        // by field *name*, not by id.
        let seed_for = |name: &str| {
            let i = program
                .field_names()
                .iter()
                .position(|n| n == name)
                .expect("reparse keeps field names");
            Grid::random(&dims, 100 + i as u64)
        };
        let init_a: Vec<Grid> = program.field_names().iter().map(|n| seed_for(n)).collect();
        let init_b: Vec<Grid> = reparsed.field_names().iter().map(|n| seed_for(n)).collect();
        let mut a = ReferenceExecutor::new(&program, &init_a);
        let mut b = ReferenceExecutor::new(&reparsed, &init_b);
        a.run(5);
        b.run(5);
        for (fa, name) in program.field_names().iter().enumerate() {
            let fb = reparsed
                .field_names()
                .iter()
                .position(|n| n == name)
                .unwrap();
            assert!(
                a.field(fa).bit_equal(b.field(fb)),
                "{}: field {name} diverged after reparse",
                program.name()
            );
        }
    }
}

#[test]
fn rendered_text_is_stable_under_a_second_round_trip() {
    // text -> program -> text must be a fixed point: the second rendering
    // equals the first, so renderer changes cannot drift silently.
    for program in all_gallery_programs() {
        let first = program.to_c_like();
        let second = parse_stencil(program.name(), &first).unwrap().to_c_like();
        assert_eq!(first, second, "{} rendering drifted", program.name());
    }
}
