//! Property-based tests for the polyhedral substrate: the exact algebra the
//! whole tiling stack rests on.

use polylib::{lp, Aff, BasicSet, LpResult, Objective, Rat, Set};
use proptest::prelude::*;

mod common;
use common::arb_polytope;

fn brute_points(s: &BasicSet, bound: i64) -> Vec<Vec<i64>> {
    let dim = s.dim();
    let mut out = Vec::new();
    let mut p = vec![-bound; dim];
    loop {
        if s.contains(&p) {
            out.push(p.clone());
        }
        // Odometer increment.
        let mut d = dim;
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            if p[d] < bound {
                p[d] += 1;
                for q in p.iter_mut().skip(d + 1) {
                    *q = -bound;
                }
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact enumeration agrees with brute force over the window.
    #[test]
    fn enumeration_matches_brute_force(s in arb_polytope(2, 6)) {
        let brute = brute_points(&s, 6);
        let mut enumerated: Vec<Vec<i64>> = s.points().collect();
        enumerated.sort();
        let mut brute_sorted = brute.clone();
        brute_sorted.sort();
        prop_assert_eq!(enumerated, brute_sorted);
        prop_assert_eq!(s.count_points() as usize, brute.len());
    }

    /// The simplex maximum over the rational relaxation dominates every
    /// integer point, and is attained when the witness is integral.
    #[test]
    fn simplex_bounds_integer_points(
        s in arb_polytope(2, 5),
        c0 in -3i64..=3,
        c1 in -3i64..=3,
    ) {
        let obj = Aff::from_ints(&[c0, c1], 0);
        match lp(s.constraints(), &obj, Objective::Maximize) {
            LpResult::Optimal { value, point } => {
                prop_assert!(s.contains_rat(&point), "witness must be feasible");
                prop_assert_eq!(obj.eval(&point), value);
                for p in s.points() {
                    prop_assert!(obj.eval_int(&p) <= value,
                        "integer point {:?} beats LP optimum {}", p, value);
                }
            }
            LpResult::Infeasible => {
                prop_assert!(s.points().next().is_none(),
                    "LP infeasible but integer points exist");
            }
            LpResult::Unbounded => {
                prop_assert!(false, "window-bounded polytope cannot be unbounded");
            }
        }
    }

    /// Fourier–Motzkin projection is sound (every point's prefix lands in
    /// the projection) and rationally tight on these windows.
    #[test]
    fn projection_soundness(s in arb_polytope(3, 4)) {
        let proj = s.project_out(2);
        for p in s.points() {
            prop_assert!(proj.contains(&p[..2]),
                "projection lost point {:?}", p);
        }
    }

    /// Integer subtraction: membership is exactly the boolean difference.
    #[test]
    fn subtraction_is_exact(a in arb_polytope(2, 5), b in arb_polytope(2, 5)) {
        let d = Set::from_basic(a.clone()).subtract(&Set::from_basic(b.clone()));
        for p in brute_points(&BasicSet::box_set(&[(-5, 5), (-5, 5)]), 5) {
            let expect = a.contains(&p) && !b.contains(&p);
            prop_assert_eq!(d.contains(&p), expect, "point {:?}", p);
        }
        // Disjuncts of a subtraction partition the difference: counts match.
        let brute = brute_points(&a, 5).iter().filter(|p| !b.contains(p)).count();
        prop_assert_eq!(d.count_points() as usize, brute);
    }

    /// `intersect` is pointwise conjunction.
    #[test]
    fn intersection_is_pointwise(a in arb_polytope(2, 5), b in arb_polytope(2, 5)) {
        let i = a.intersect(&b);
        for p in brute_points(&BasicSet::box_set(&[(-5, 5), (-5, 5)]), 5) {
            prop_assert_eq!(i.contains(&p), a.contains(&p) && b.contains(&p));
        }
    }

    /// Rational emptiness implies integer emptiness.
    #[test]
    fn rational_empty_implies_integer_empty(s in arb_polytope(2, 4)) {
        if s.is_empty_rat() {
            prop_assert!(s.points().next().is_none());
        }
    }
}

#[test]
fn bounding_box_is_tight_for_skewed_parallelogram() {
    // { (x, y) : 0 <= x <= 5, x <= y <= x + 3 }
    let s = BasicSet::box_set(&[(0, 5), (-100, 100)])
        .with_ge(Aff::from_ints(&[-1, 1], 0))
        .with_ge(Aff::from_ints(&[1, -1], 3));
    let bb = s.bounding_box();
    assert_eq!(bb[0], Some((Rat::ZERO, Rat::from(5))));
    assert_eq!(bb[1], Some((Rat::ZERO, Rat::from(8))));
}
