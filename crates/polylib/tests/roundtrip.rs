//! Round-trip properties for the exact substrate: rational arithmetic
//! (`rat.rs`) inverts cleanly, and Fourier–Motzkin elimination (`fm.rs`)
//! is rationally tight — eliminate-then-sample always lands back inside
//! the original set.

use polylib::Rat;
use proptest::prelude::*;

mod common;
use common::arb_polytope;

/// Rationals with small numerators/denominators (exercises normalization).
fn arb_rat() -> impl Strategy<Value = Rat> {
    (-24i64..=24, 1i64..=9).prop_map(|(n, d)| Rat::new(n as i128, d as i128))
}

/// Non-zero rationals, for reciprocal/division round-trips.
fn arb_nonzero_rat() -> impl Strategy<Value = Rat> {
    (1i64..=24, 1i64..=9, 0i64..=1)
        .prop_map(|(n, d, neg)| Rat::new(if neg == 1 { -n } else { n } as i128, d as i128))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `recip` is an involution away from zero.
    #[test]
    fn rat_recip_roundtrip(r in arb_nonzero_rat()) {
        prop_assert_eq!(r.recip().recip(), r);
        prop_assert_eq!(r * r.recip(), Rat::ONE);
    }

    /// Addition and subtraction invert each other exactly.
    #[test]
    fn rat_add_sub_roundtrip(a in arb_rat(), b in arb_rat()) {
        prop_assert_eq!(a + b - b, a);
        prop_assert_eq!(a - b + b, a);
    }

    /// Multiplication and division invert each other exactly.
    #[test]
    fn rat_mul_div_roundtrip(a in arb_rat(), b in arb_nonzero_rat()) {
        prop_assert_eq!(a * b / b, a);
        prop_assert_eq!(a / b * b, a);
    }

    /// Construction normalizes: scaling numerator and denominator by a
    /// common factor yields the identical representative.
    #[test]
    fn rat_normalization(r in arb_rat(), k in 1i64..=6) {
        let scaled = Rat::new(r.num() * k as i128, r.den() * k as i128);
        prop_assert_eq!(scaled, r);
        prop_assert_eq!(scaled.num(), r.num());
        prop_assert_eq!(scaled.den(), r.den());
    }

    /// `floor`/`fract` decompose every rational: r = ⌊r⌋ + {r} with
    /// 0 <= {r} < 1, and `ceil` agrees with the decomposition.
    #[test]
    fn rat_floor_fract_decompose(r in arb_rat()) {
        let back = Rat::from(r.floor()) + r.fract();
        prop_assert_eq!(back, r);
        prop_assert!(r.fract() >= Rat::ZERO && r.fract() < Rat::ONE);
        let expected_ceil = if r.fract().is_zero() { r.floor() } else { r.floor() + 1 };
        prop_assert_eq!(r.ceil(), expected_ceil);
    }

    /// Eliminate-then-sample, inward direction (the outward direction —
    /// every point of the original lands in the projection — is
    /// properties.rs's projection_soundness): sampling any point of the
    /// projection and re-fixing it in the original set leaves a rationally
    /// non-empty fiber (FM is exact over the rationals — no spurious
    /// projected points), and every integer point of that fiber is a point
    /// of the original set extending the sample.
    #[test]
    fn fm_eliminate_then_sample_stays_inside(s in arb_polytope(3, 4)) {
        let proj = s.project_out(2);
        for p in proj.points() {
            let fiber = s.fix_dim(0, p[0]).fix_dim(1, p[1]);
            prop_assert!(
                !fiber.is_empty_rat(),
                "projected point {:?} has an empty rational fiber", p
            );
            for q in fiber.points() {
                prop_assert_eq!(&q[..2], &p[..], "fiber moved the prefix");
                prop_assert!(s.contains(&q), "fiber point {:?} escapes the set", q);
            }
        }
    }

    /// Double elimination commutes with composition: projecting out the two
    /// inner dimensions one at a time preserves exactly the integer shadow
    /// computed point-wise.
    #[test]
    fn fm_double_elimination_shadow(s in arb_polytope(3, 3)) {
        let shadow = s.project_out(2).project_out(1);
        // The rational shadow may strictly contain the integer shadow, but
        // every actual point projects in, and every shadow sample has a
        // rationally non-empty fiber.
        for p in s.points() {
            prop_assert!(shadow.contains(&p[..1]));
        }
        for x in shadow.points() {
            let fiber = s.fix_dim(0, x[0]);
            prop_assert!(!fiber.is_empty_rat(), "shadow point {:?} unsupported", x);
        }
    }
}
