//! Strategy helpers shared by the polylib property suites.

use polylib::{Aff, BasicSet};
use proptest::prelude::*;

/// A random conjunctive polytope inside the window `[-bound, bound]^dim`,
/// built from a box plus a few random halfplanes. Always bounded.
pub fn arb_polytope(dim: usize, bound: i64) -> impl Strategy<Value = BasicSet> {
    let halfplane = (
        prop::collection::vec(-3i64..=3, dim),
        -(2 * bound)..=(2 * bound),
    );
    prop::collection::vec(halfplane, 0..4).prop_map(move |planes| {
        let mut s = BasicSet::box_set(&vec![(-bound, bound); dim]);
        for (coeffs, c0) in planes {
            s = s.with_ge(Aff::from_ints(&coeffs, c0));
        }
        s
    })
}
