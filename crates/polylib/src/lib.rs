//! # polylib — an exact rational/integer polyhedral library
//!
//! A from-scratch replacement for the subset of [isl] that the hybrid
//! hexagonal/classical tiling paper (CGO 2014) relies on:
//!
//! * exact rational arithmetic ([`Rat`]),
//! * affine expressions and constraints over named spaces ([`Aff`],
//!   [`Constraint`]),
//! * basic sets (conjunctions of affine constraints, [`BasicSet`]) and finite
//!   unions of them ([`Set`]),
//! * relations between spaces ([`BasicMap`], [`Map`]) with dependence-distance
//!   (`deltas`) computation,
//! * an exact two-phase rational simplex ([`simplex::lp`]) used to derive the
//!   dependence-cone slopes δ0/δ1,
//! * Fourier–Motzkin projection ([`BasicSet::project_out`]),
//! * exact integer-point enumeration and counting (the Barvinok substitute
//!   used for tile-size selection, [`BasicSet::points`] /
//!   [`BasicSet::count_points`]),
//! * quasi-affine expressions with `floor`-division and `mod`
//!   ([`QExpr`]) that describe tiling schedules such as the one in Fig. 6 of
//!   the paper.
//!
//! Everything is exact: no floating point is used anywhere. Overflow is
//! checked (`i128` intermediates) and panics rather than silently wrapping.
//!
//! ```
//! use polylib::{BasicSet, Aff, Rat};
//!
//! // The triangle 0 <= x <= y <= 4 has 15 integer points.
//! let tri = BasicSet::new(2)
//!     .with_ge(Aff::var(2, 0))                        // x >= 0
//!     .with_ge(Aff::var(2, 1) - Aff::var(2, 0))       // y - x >= 0
//!     .with_ge(Aff::constant(2, Rat::from(4)) - Aff::var(2, 1)); // 4 - y >= 0
//! assert_eq!(tri.count_points(), 15);
//! ```
//!
//! [isl]: https://libisl.sourceforge.io/

pub mod aff;
pub mod bset;
pub mod cons;
pub mod enumerate;
pub mod fm;
pub mod map;
pub mod quasi;
pub mod rat;
pub mod set;
pub mod simplex;

pub use aff::Aff;
pub use bset::BasicSet;
pub use cons::{Constraint, ConstraintKind};
pub use map::{BasicMap, Map};
pub use quasi::QExpr;
pub use rat::Rat;
pub use set::Set;
pub use simplex::{lp, LpResult, Objective};
