//! Affine expressions `c0 + c1*x1 + ... + cn*xn` over a fixed dimension count.

use crate::Rat;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// An affine expression over `dim` variables: a constant term plus one
/// rational coefficient per variable.
///
/// ```
/// use polylib::{Aff, Rat};
/// let e = Aff::var(2, 0) * Rat::from(3) + Aff::constant(2, Rat::from(1));
/// assert_eq!(e.eval_int(&[2, 0]), Rat::from(7)); // 3*2 + 1
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Aff {
    coeffs: Vec<Rat>,
    constant: Rat,
}

impl Aff {
    /// The zero expression over `dim` variables.
    pub fn zero(dim: usize) -> Aff {
        Aff {
            coeffs: vec![Rat::ZERO; dim],
            constant: Rat::ZERO,
        }
    }

    /// The constant expression `c` over `dim` variables.
    pub fn constant(dim: usize, c: Rat) -> Aff {
        Aff {
            coeffs: vec![Rat::ZERO; dim],
            constant: c,
        }
    }

    /// The single-variable expression `x_d` over `dim` variables.
    ///
    /// # Panics
    ///
    /// Panics if `d >= dim`.
    pub fn var(dim: usize, d: usize) -> Aff {
        assert!(d < dim, "variable index {d} out of range for dim {dim}");
        let mut coeffs = vec![Rat::ZERO; dim];
        coeffs[d] = Rat::ONE;
        Aff {
            coeffs,
            constant: Rat::ZERO,
        }
    }

    /// Builds an expression from integer coefficients and constant.
    pub fn from_ints(coeffs: &[i64], constant: i64) -> Aff {
        Aff {
            coeffs: coeffs.iter().map(|&c| Rat::from(c)).collect(),
            constant: Rat::from(constant),
        }
    }

    /// Number of variables of the space this expression lives in.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of variable `d`.
    pub fn coeff(&self, d: usize) -> Rat {
        self.coeffs[d]
    }

    /// Sets the coefficient of variable `d` (builder style).
    pub fn with_coeff(mut self, d: usize, c: Rat) -> Aff {
        self.coeffs[d] = c;
        self
    }

    /// The constant term.
    pub fn constant_term(&self) -> Rat {
        self.constant
    }

    /// Sets the constant term (builder style).
    pub fn with_constant(mut self, c: Rat) -> Aff {
        self.constant = c;
        self
    }

    /// True if all variable coefficients are zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_zero())
    }

    /// Evaluates at a rational point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn eval(&self, point: &[Rat]) -> Rat {
        assert_eq!(point.len(), self.dim(), "point/expression dim mismatch");
        let mut acc = self.constant;
        for (c, x) in self.coeffs.iter().zip(point) {
            if !c.is_zero() {
                acc += *c * *x;
            }
        }
        acc
    }

    /// Evaluates at an integer point.
    pub fn eval_int(&self, point: &[i64]) -> Rat {
        assert_eq!(point.len(), self.dim(), "point/expression dim mismatch");
        let mut acc = self.constant;
        for (c, x) in self.coeffs.iter().zip(point) {
            if !c.is_zero() {
                acc += *c * Rat::from(*x);
            }
        }
        acc
    }

    /// Substitutes variable `d` with the affine expression `repl`
    /// (which must have the same dimension and a zero coefficient for `d`
    /// unless it is a pure constant shift of other variables).
    pub fn substitute(&self, d: usize, repl: &Aff) -> Aff {
        assert_eq!(self.dim(), repl.dim(), "substitution dim mismatch");
        let c = self.coeffs[d];
        if c.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs[d] = Rat::ZERO;
        out = out + repl.clone() * c;
        out
    }

    /// Fixes variable `d` to the constant `v`, producing an expression over
    /// the same dimension with a zero coefficient for `d`.
    pub fn fix(&self, d: usize, v: Rat) -> Aff {
        let mut out = self.clone();
        out.constant += out.coeffs[d] * v;
        out.coeffs[d] = Rat::ZERO;
        out
    }

    /// Inserts `count` new variables (with zero coefficients) at position
    /// `at`, shifting later variables up.
    pub fn insert_dims(&self, at: usize, count: usize) -> Aff {
        let mut coeffs = Vec::with_capacity(self.dim() + count);
        coeffs.extend_from_slice(&self.coeffs[..at]);
        coeffs.extend(std::iter::repeat_n(Rat::ZERO, count));
        coeffs.extend_from_slice(&self.coeffs[at..]);
        Aff {
            coeffs,
            constant: self.constant,
        }
    }

    /// Removes variable `d`, which must have a zero coefficient.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient of `d` is non-zero (the expression would
    /// change meaning).
    pub fn remove_dim(&self, d: usize) -> Aff {
        assert!(
            self.coeffs[d].is_zero(),
            "removing dimension {d} with non-zero coefficient"
        );
        let mut coeffs = self.coeffs.clone();
        coeffs.remove(d);
        Aff {
            coeffs,
            constant: self.constant,
        }
    }

    /// Multiplies through by the least common multiple of all coefficient
    /// denominators, yielding an expression with integer coefficients that
    /// has the same sign everywhere. Returns the scaled expression.
    pub fn clear_denominators(&self) -> Aff {
        let mut l: i128 = self.constant.den();
        for c in &self.coeffs {
            let d = c.den();
            let g = {
                let (mut a, mut b) = (l, d);
                while b != 0 {
                    let r = a % b;
                    a = b;
                    b = r;
                }
                a
            };
            l = l / g * d;
        }
        let scale = Rat::from(l);
        Aff {
            coeffs: self.coeffs.iter().map(|c| *c * scale).collect(),
            constant: self.constant * scale,
        }
    }

    /// Divides by the gcd of all (integer) numerators, keeping signs. Used to
    /// keep Fourier–Motzkin intermediate constraints small. No-op when the
    /// expression is zero or has non-integer coefficients.
    pub fn normalize_gcd(&self) -> Aff {
        if !self.constant.is_integer() || self.coeffs.iter().any(|c| !c.is_integer()) {
            return self.clone();
        }
        let mut g: i128 = 0;
        for c in self.coeffs.iter().chain(std::iter::once(&self.constant)) {
            let (mut a, mut b) = (g, c.num().abs());
            while b != 0 {
                let r = a % b;
                a = b;
                b = r;
            }
            g = a;
        }
        if g <= 1 {
            return self.clone();
        }
        let inv = Rat::new(1, g);
        Aff {
            coeffs: self.coeffs.iter().map(|c| *c * inv).collect(),
            constant: self.constant * inv,
        }
    }
}

impl Add for Aff {
    type Output = Aff;
    fn add(self, rhs: Aff) -> Aff {
        assert_eq!(self.dim(), rhs.dim(), "adding expressions of unequal dim");
        Aff {
            coeffs: self
                .coeffs
                .iter()
                .zip(&rhs.coeffs)
                .map(|(a, b)| *a + *b)
                .collect(),
            constant: self.constant + rhs.constant,
        }
    }
}

impl Sub for Aff {
    type Output = Aff;
    fn sub(self, rhs: Aff) -> Aff {
        self + (-rhs)
    }
}

impl Neg for Aff {
    type Output = Aff;
    fn neg(self) -> Aff {
        Aff {
            coeffs: self.coeffs.iter().map(|c| -*c).collect(),
            constant: -self.constant,
        }
    }
}

impl Mul<Rat> for Aff {
    type Output = Aff;
    fn mul(self, rhs: Rat) -> Aff {
        Aff {
            coeffs: self.coeffs.iter().map(|c| *c * rhs).collect(),
            constant: self.constant * rhs,
        }
    }
}

impl fmt::Debug for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (d, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if wrote {
                write!(f, " {} ", if c.signum() < 0 { "-" } else { "+" })?;
            } else if c.signum() < 0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            if a != Rat::ONE {
                write!(f, "{a}*")?;
            }
            write!(f, "x{d}")?;
            wrote = true;
        }
        if !wrote {
            write!(f, "{}", self.constant)?;
        } else if !self.constant.is_zero() {
            write!(
                f,
                " {} {}",
                if self.constant.signum() < 0 { "-" } else { "+" },
                self.constant.abs()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_matches_hand_computation() {
        // 2x - 3y + 5
        let e = Aff::from_ints(&[2, -3], 5);
        assert_eq!(e.eval_int(&[4, 1]), Rat::from(10));
        assert_eq!(e.eval(&[Rat::new(1, 2), Rat::ZERO]), Rat::from(6));
    }

    #[test]
    fn substitution_replaces_variable() {
        // x + 2y with y := x - 1  =>  3x - 2
        let e = Aff::from_ints(&[1, 2], 0);
        let repl = Aff::from_ints(&[1, 0], -1);
        let s = e.substitute(1, &repl);
        assert_eq!(s, Aff::from_ints(&[3, 0], -2));
    }

    #[test]
    fn fix_pins_a_variable() {
        let e = Aff::from_ints(&[2, -3], 5);
        let fixed = e.fix(1, Rat::from(2));
        assert_eq!(fixed, Aff::from_ints(&[2, 0], -1));
    }

    #[test]
    fn insert_and_remove_dims_roundtrip() {
        let e = Aff::from_ints(&[2, -3], 5);
        let wide = e.insert_dims(1, 2);
        assert_eq!(wide.dim(), 4);
        assert_eq!(wide.coeff(0), Rat::from(2));
        assert_eq!(wide.coeff(3), Rat::from(-3));
        let back = wide.remove_dim(1).remove_dim(1);
        assert_eq!(back, e);
    }

    #[test]
    fn clear_denominators_scales_uniformly() {
        let e = Aff::zero(2)
            .with_coeff(0, Rat::new(1, 2))
            .with_coeff(1, Rat::new(1, 3))
            .with_constant(Rat::new(5, 6));
        let cleared = e.clear_denominators();
        assert_eq!(cleared, Aff::from_ints(&[3, 2], 5));
    }

    #[test]
    fn normalize_gcd_reduces() {
        let e = Aff::from_ints(&[4, -6], 8);
        assert_eq!(e.normalize_gcd(), Aff::from_ints(&[2, -3], 4));
    }

    #[test]
    fn display_is_readable() {
        let e = Aff::from_ints(&[1, -2], 3);
        assert_eq!(e.to_string(), "x0 - 2*x1 + 3");
        assert_eq!(Aff::zero(2).to_string(), "0");
    }
}
