//! Quasi-affine expressions: affine terms extended with integer `floor`
//! division and `mod`.
//!
//! The hybrid tiling schedule of the paper (Fig. 6) is exactly a vector of
//! quasi-affine expressions: `T = floor((t+h+1)/(2h+2))`,
//! `t' = (t+h+1) mod (2h+2)`, etc. [`QExpr`] provides construction,
//! exact evaluation with floor semantics, and isl-style pretty-printing.

use std::fmt;
use std::rc::Rc;

/// A quasi-affine expression over integer variables.
///
/// Division and modulo use *floor* semantics with a positive divisor
/// (`div_euclid` / `rem_euclid`), matching the paper's `⌊·⌋` and `mod`.
///
/// ```
/// use polylib::QExpr;
/// // floor((t + 3) / 4) at t = 5  =>  2
/// let e = (QExpr::var(0) + QExpr::constant(3)).floor_div(4);
/// assert_eq!(e.eval(&[5]), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum QExpr {
    /// Integer literal.
    Const(i64),
    /// Variable by index.
    Var(usize),
    /// Sum of two expressions.
    Add(Rc<QExpr>, Rc<QExpr>),
    /// Difference of two expressions.
    Sub(Rc<QExpr>, Rc<QExpr>),
    /// Integer scaling.
    Mul(i64, Rc<QExpr>),
    /// `floor(e / k)` with `k > 0`.
    FloorDiv(Rc<QExpr>, i64),
    /// `e mod k` with `k > 0`, result in `[0, k)`.
    Mod(Rc<QExpr>, i64),
}

impl QExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> QExpr {
        QExpr::Const(c)
    }

    /// The variable `x_d`.
    pub fn var(d: usize) -> QExpr {
        QExpr::Var(d)
    }

    /// An affine combination `sum coeffs[d] * x_d + constant`.
    pub fn affine(coeffs: &[i64], constant: i64) -> QExpr {
        let mut e = QExpr::Const(constant);
        for (d, &c) in coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            e = QExpr::Add(Rc::new(e), Rc::new(QExpr::Mul(c, Rc::new(QExpr::Var(d)))));
        }
        e
    }

    /// `floor(self / k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0`.
    pub fn floor_div(self, k: i64) -> QExpr {
        assert!(k > 0, "floor_div by non-positive constant {k}");
        QExpr::FloorDiv(Rc::new(self), k)
    }

    /// `self mod k`, in `[0, k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0`.
    pub fn modulo(self, k: i64) -> QExpr {
        assert!(k > 0, "modulo by non-positive constant {k}");
        QExpr::Mod(Rc::new(self), k)
    }

    /// Scales by an integer factor.
    pub fn scale(self, k: i64) -> QExpr {
        QExpr::Mul(k, Rc::new(self))
    }

    /// Exact evaluation at an integer point.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range or arithmetic overflows.
    pub fn eval(&self, point: &[i64]) -> i64 {
        match self {
            QExpr::Const(c) => *c,
            QExpr::Var(d) => point[*d],
            QExpr::Add(a, b) => a
                .eval(point)
                .checked_add(b.eval(point))
                .expect("qexpr overflow"),
            QExpr::Sub(a, b) => a
                .eval(point)
                .checked_sub(b.eval(point))
                .expect("qexpr overflow"),
            QExpr::Mul(k, e) => k.checked_mul(e.eval(point)).expect("qexpr overflow"),
            QExpr::FloorDiv(e, k) => e.eval(point).div_euclid(*k),
            QExpr::Mod(e, k) => e.eval(point).rem_euclid(*k),
        }
    }

    /// Pretty-prints with the given variable names (falls back to `x{d}`).
    pub fn display<'a>(&'a self, names: &'a [&'a str]) -> QExprDisplay<'a> {
        QExprDisplay { expr: self, names }
    }
}

impl std::ops::Add for QExpr {
    type Output = QExpr;
    fn add(self, rhs: QExpr) -> QExpr {
        QExpr::Add(Rc::new(self), Rc::new(rhs))
    }
}

impl std::ops::Sub for QExpr {
    type Output = QExpr;
    fn sub(self, rhs: QExpr) -> QExpr {
        QExpr::Sub(Rc::new(self), Rc::new(rhs))
    }
}

/// Display adapter returned by [`QExpr::display`].
pub struct QExprDisplay<'a> {
    expr: &'a QExpr,
    names: &'a [&'a str],
}

fn write_expr(
    f: &mut fmt::Formatter<'_>,
    e: &QExpr,
    names: &[&str],
    parenthesize_sums: bool,
) -> fmt::Result {
    match e {
        QExpr::Const(c) => write!(f, "{c}"),
        QExpr::Var(d) => {
            if *d < names.len() {
                write!(f, "{}", names[*d])
            } else {
                write!(f, "x{d}")
            }
        }
        QExpr::Add(a, b) => {
            if parenthesize_sums {
                write!(f, "(")?;
            }
            write_expr(f, a, names, false)?;
            write!(f, " + ")?;
            write_expr(f, b, names, false)?;
            if parenthesize_sums {
                write!(f, ")")?;
            }
            Ok(())
        }
        QExpr::Sub(a, b) => {
            if parenthesize_sums {
                write!(f, "(")?;
            }
            write_expr(f, a, names, false)?;
            write!(f, " - ")?;
            write_expr(f, b, names, true)?;
            if parenthesize_sums {
                write!(f, ")")?;
            }
            Ok(())
        }
        QExpr::Mul(k, inner) => {
            write!(f, "{k}*")?;
            write_expr(f, inner, names, true)
        }
        QExpr::FloorDiv(inner, k) => {
            write!(f, "floor((")?;
            write_expr(f, inner, names, false)?;
            write!(f, ")/{k})")
        }
        QExpr::Mod(inner, k) => {
            write!(f, "(")?;
            write_expr(f, inner, names, false)?;
            write!(f, ") mod {k}")
        }
    }
}

impl fmt::Display for QExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self.expr, self.names, false)
    }
}

impl fmt::Debug for QExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self, &[], false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_semantics_on_negatives() {
        let e = QExpr::var(0).floor_div(4);
        assert_eq!(e.eval(&[7]), 1);
        assert_eq!(e.eval(&[-1]), -1);
        assert_eq!(e.eval(&[-4]), -1);
        assert_eq!(e.eval(&[-5]), -2);
    }

    #[test]
    fn mod_is_always_non_negative() {
        let e = QExpr::var(0).modulo(4);
        assert_eq!(e.eval(&[7]), 3);
        assert_eq!(e.eval(&[-1]), 3);
        assert_eq!(e.eval(&[-4]), 0);
    }

    #[test]
    fn div_mod_identity() {
        // x == k * floor(x/k) + (x mod k)
        for x in -20..20 {
            for k in 1..7 {
                let d = QExpr::var(0).floor_div(k).eval(&[x]);
                let m = QExpr::var(0).modulo(k).eval(&[x]);
                assert_eq!(x, k * d + m, "x={x}, k={k}");
                assert!((0..k).contains(&m));
            }
        }
    }

    #[test]
    fn affine_builder() {
        // 2t - 3s + 1
        let e = QExpr::affine(&[2, -3], 1);
        assert_eq!(e.eval(&[5, 2]), 5);
    }

    #[test]
    fn paper_tile_index_phase0() {
        // T = floor((t + h + 1) / (2h + 2)), h = 2.
        let h = 2;
        let e = (QExpr::var(0) + QExpr::constant(h + 1)).floor_div(2 * h + 2);
        assert_eq!(e.eval(&[0]), 0);
        assert_eq!(e.eval(&[2]), 0);
        assert_eq!(e.eval(&[3]), 1);
        assert_eq!(e.eval(&[8]), 1);
        assert_eq!(e.eval(&[9]), 2);
    }

    #[test]
    fn pretty_print() {
        let h = 2;
        let e = (QExpr::var(0) + QExpr::constant(h + 1)).floor_div(2 * h + 2);
        assert_eq!(e.display(&["t"]).to_string(), "floor((t + 3)/6)");
        let m = QExpr::affine(&[1, 1], 0).modulo(5);
        assert_eq!(
            m.display(&["t", "s0"]).to_string(),
            "(0 + 1*t + 1*s0) mod 5"
        );
    }
}
