//! Affine constraints: `expr >= 0` or `expr == 0`.

use crate::{Aff, Rat};
use std::fmt;

/// The comparison kind of a [`Constraint`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstraintKind {
    /// `expr >= 0`
    Ge,
    /// `expr == 0`
    Eq,
}

/// A single affine constraint over a fixed-dimension space.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    expr: Aff,
    kind: ConstraintKind,
}

impl Constraint {
    /// The constraint `expr >= 0`.
    pub fn ge0(expr: Aff) -> Constraint {
        Constraint {
            expr,
            kind: ConstraintKind::Ge,
        }
    }

    /// The constraint `expr == 0`.
    pub fn eq0(expr: Aff) -> Constraint {
        Constraint {
            expr,
            kind: ConstraintKind::Eq,
        }
    }

    /// The constraint `lhs >= rhs`.
    pub fn ge(lhs: Aff, rhs: Aff) -> Constraint {
        Constraint::ge0(lhs - rhs)
    }

    /// The constraint `lhs <= rhs`.
    pub fn le(lhs: Aff, rhs: Aff) -> Constraint {
        Constraint::ge0(rhs - lhs)
    }

    /// The constraint `lhs == rhs`.
    pub fn eq(lhs: Aff, rhs: Aff) -> Constraint {
        Constraint::eq0(lhs - rhs)
    }

    /// The underlying affine expression (the constraint is `expr >= 0` or
    /// `expr == 0`).
    pub fn expr(&self) -> &Aff {
        &self.expr
    }

    /// The comparison kind.
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// Dimension of the space the constraint lives in.
    pub fn dim(&self) -> usize {
        self.expr.dim()
    }

    /// True if the integer point satisfies the constraint.
    pub fn holds_at(&self, point: &[i64]) -> bool {
        let v = self.expr.eval_int(point);
        match self.kind {
            ConstraintKind::Ge => v.signum() >= 0,
            ConstraintKind::Eq => v.is_zero(),
        }
    }

    /// True if the rational point satisfies the constraint.
    pub fn holds_at_rat(&self, point: &[Rat]) -> bool {
        let v = self.expr.eval(point);
        match self.kind {
            ConstraintKind::Ge => v.signum() >= 0,
            ConstraintKind::Eq => v.is_zero(),
        }
    }

    /// The integer negation of a `>=` constraint: `NOT(e >= 0)` over the
    /// integers is `-e - 1 >= 0` once `e` is scaled to integer coefficients.
    ///
    /// Equality constraints negate into *two* disjuncts (`e >= 1` or
    /// `e <= -1`), so they are returned as a pair.
    ///
    /// The negation is exact on integer points; on rational points it is a
    /// strict over-approximation of the complement.
    pub fn negate_int(&self) -> Vec<Constraint> {
        let e = self.expr.clear_denominators().normalize_gcd();
        match self.kind {
            ConstraintKind::Ge => {
                let minus_one = Aff::constant(e.dim(), Rat::from(-1));
                vec![Constraint::ge0(-e + minus_one)]
            }
            ConstraintKind::Eq => {
                let one = Aff::constant(e.dim(), Rat::ONE);
                vec![
                    Constraint::ge0(e.clone() - one.clone()),
                    Constraint::ge0(-e - one),
                ]
            }
        }
    }

    /// Rewrites the constraint with `count` extra dimensions inserted at `at`.
    pub fn insert_dims(&self, at: usize, count: usize) -> Constraint {
        Constraint {
            expr: self.expr.insert_dims(at, count),
            kind: self.kind,
        }
    }

    /// Normalizes: clears denominators and divides by the content gcd.
    pub fn normalized(&self) -> Constraint {
        Constraint {
            expr: self.expr.clear_denominators().normalize_gcd(),
            kind: self.kind,
        }
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.kind {
            ConstraintKind::Ge => ">=",
            ConstraintKind::Eq => "=",
        };
        write!(f, "{} {} 0", self.expr, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_at_integer_points() {
        // x - y >= 0
        let c = Constraint::ge0(Aff::from_ints(&[1, -1], 0));
        assert!(c.holds_at(&[3, 3]));
        assert!(c.holds_at(&[4, 3]));
        assert!(!c.holds_at(&[2, 3]));
    }

    #[test]
    fn equality_constraints() {
        let c = Constraint::eq0(Aff::from_ints(&[1, -2], 0));
        assert!(c.holds_at(&[4, 2]));
        assert!(!c.holds_at(&[5, 2]));
    }

    #[test]
    fn negation_is_exact_on_integers() {
        // x >= 0  negated ->  -x - 1 >= 0  (x <= -1)
        let c = Constraint::ge0(Aff::from_ints(&[1], 0));
        let neg = c.negate_int();
        assert_eq!(neg.len(), 1);
        for x in -5..=5 {
            assert_eq!(c.holds_at(&[x]), !neg[0].holds_at(&[x]), "x = {x}");
        }
    }

    #[test]
    fn negation_of_equality_is_two_disjuncts() {
        let c = Constraint::eq0(Aff::from_ints(&[1], -2)); // x == 2
        let neg = c.negate_int();
        assert_eq!(neg.len(), 2);
        for x in -5..=5 {
            let in_neg = neg.iter().any(|n| n.holds_at(&[x]));
            assert_eq!(c.holds_at(&[x]), !in_neg, "x = {x}");
        }
    }

    #[test]
    fn negation_clears_rational_coefficients() {
        // x/2 - 1/4 >= 0  ==  2x - 1 >= 0; negation: -2x + 1 - 1 >= 0 => x <= 0
        let c = Constraint::ge0(
            Aff::zero(1)
                .with_coeff(0, Rat::new(1, 2))
                .with_constant(Rat::new(-1, 4)),
        );
        let neg = c.negate_int();
        for x in -3..=3 {
            assert_eq!(c.holds_at(&[x]), !neg[0].holds_at(&[x]), "x = {x}");
        }
    }

    #[test]
    fn display_shows_relation() {
        let c = Constraint::ge(Aff::var(2, 0), Aff::var(2, 1));
        assert_eq!(c.to_string(), "x0 - x1 >= 0");
    }
}
