//! Basic sets: conjunctions of affine constraints over `Z^dim`.

use crate::enumerate::{self, Points};
use crate::simplex::{lp, LpResult, Objective};
use crate::{fm, Aff, Constraint, ConstraintKind, Rat};
use std::fmt;

/// A conjunction of affine constraints interpreted over integer points of
/// `Z^dim` (the rational relaxation is used internally for emptiness and
/// bounds).
///
/// ```
/// use polylib::{BasicSet, Aff};
/// let square = BasicSet::box_set(&[(0, 3), (0, 3)]);
/// assert!(square.contains(&[2, 3]));
/// assert_eq!(square.count_points(), 16);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BasicSet {
    dim: usize,
    cons: Vec<Constraint>,
}

impl BasicSet {
    /// The universe set over `dim` variables (no constraints).
    pub fn new(dim: usize) -> BasicSet {
        BasicSet {
            dim,
            cons: Vec::new(),
        }
    }

    /// An axis-aligned integer box: `lo_d <= x_d <= hi_d` for every
    /// dimension.
    pub fn box_set(bounds: &[(i64, i64)]) -> BasicSet {
        let dim = bounds.len();
        let mut s = BasicSet::new(dim);
        for (d, &(lo, hi)) in bounds.iter().enumerate() {
            s = s
                .with_ge(Aff::var(dim, d) - Aff::constant(dim, Rat::from(lo)))
                .with_ge(Aff::constant(dim, Rat::from(hi)) - Aff::var(dim, d));
        }
        s
    }

    /// Adds the constraint `expr >= 0` (builder style).
    pub fn with_ge(mut self, expr: Aff) -> BasicSet {
        assert_eq!(expr.dim(), self.dim, "constraint dim mismatch");
        self.cons.push(Constraint::ge0(expr));
        self
    }

    /// Adds the constraint `expr == 0` (builder style).
    pub fn with_eq(mut self, expr: Aff) -> BasicSet {
        assert_eq!(expr.dim(), self.dim, "constraint dim mismatch");
        self.cons.push(Constraint::eq0(expr));
        self
    }

    /// Adds an arbitrary constraint (builder style).
    pub fn with_constraint(mut self, c: Constraint) -> BasicSet {
        assert_eq!(c.dim(), self.dim, "constraint dim mismatch");
        self.cons.push(c);
        self
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraints of this set.
    pub fn constraints(&self) -> &[Constraint] {
        &self.cons
    }

    /// True if the integer point satisfies every constraint.
    pub fn contains(&self, point: &[i64]) -> bool {
        assert_eq!(point.len(), self.dim, "point dim mismatch");
        self.cons.iter().all(|c| c.holds_at(point))
    }

    /// True if the rational point satisfies every constraint.
    pub fn contains_rat(&self, point: &[Rat]) -> bool {
        assert_eq!(point.len(), self.dim, "point dim mismatch");
        self.cons.iter().all(|c| c.holds_at_rat(point))
    }

    /// Intersection with another basic set over the same space.
    pub fn intersect(&self, other: &BasicSet) -> BasicSet {
        assert_eq!(self.dim, other.dim, "intersecting sets of unequal dim");
        let mut cons = self.cons.clone();
        cons.extend(other.cons.iter().cloned());
        BasicSet {
            dim: self.dim,
            cons: fm::dedupe(cons),
        }
    }

    /// True if the *rational relaxation* is empty (which implies the integer
    /// set is empty). Use [`BasicSet::is_empty_int`] for the exact integer
    /// test.
    pub fn is_empty_rat(&self) -> bool {
        matches!(
            lp(&self.cons, &Aff::zero(self.dim), Objective::Minimize),
            LpResult::Infeasible
        )
    }

    /// True if the set contains no integer point (exact, via enumeration;
    /// requires the set to be bounded unless the rational relaxation is
    /// already empty).
    pub fn is_empty_int(&self) -> bool {
        if self.is_empty_rat() {
            return true;
        }
        self.points().next().is_none()
    }

    /// Minimizes `obj` over the rational relaxation.
    pub fn min(&self, obj: &Aff) -> LpResult {
        lp(&self.cons, obj, Objective::Minimize)
    }

    /// Maximizes `obj` over the rational relaxation.
    pub fn max(&self, obj: &Aff) -> LpResult {
        lp(&self.cons, obj, Objective::Maximize)
    }

    /// Rational lower/upper bounds for every dimension, or `None` for a
    /// dimension unbounded in either direction. Empty sets yield all-`None`.
    pub fn bounding_box(&self) -> Vec<Option<(Rat, Rat)>> {
        (0..self.dim)
            .map(|d| {
                let v = Aff::var(self.dim, d);
                match (self.min(&v), self.max(&v)) {
                    (LpResult::Optimal { value: lo, .. }, LpResult::Optimal { value: hi, .. }) => {
                        Some((lo, hi))
                    }
                    _ => None,
                }
            })
            .collect()
    }

    /// True if every dimension has finite rational bounds.
    pub fn is_bounded(&self) -> bool {
        !self.is_empty_rat() && self.bounding_box().iter().all(Option::is_some)
    }

    /// Projects out (existentially quantifies) dimension `d`, returning a set
    /// over `dim - 1` variables. Exact over rationals (Fourier–Motzkin).
    pub fn project_out(&self, d: usize) -> BasicSet {
        assert!(d < self.dim, "projecting out non-existent dim {d}");
        let cons = fm::eliminate_dim(&self.cons, d);
        let cons = cons
            .iter()
            .map(|c| match c.kind() {
                ConstraintKind::Ge => Constraint::ge0(c.expr().remove_dim(d)),
                ConstraintKind::Eq => Constraint::eq0(c.expr().remove_dim(d)),
            })
            .collect();
        BasicSet {
            dim: self.dim - 1,
            cons,
        }
    }

    /// Inserts `count` unconstrained dimensions at position `at`.
    pub fn insert_dims(&self, at: usize, count: usize) -> BasicSet {
        BasicSet {
            dim: self.dim + count,
            cons: self.cons.iter().map(|c| c.insert_dims(at, count)).collect(),
        }
    }

    /// Fixes dimension `d` to the integer value `v` (adds an equality).
    pub fn fix_dim(&self, d: usize, v: i64) -> BasicSet {
        let e = Aff::var(self.dim, d) - Aff::constant(self.dim, Rat::from(v));
        self.clone().with_eq(e)
    }

    /// Iterates over all integer points in lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics (on first use of the iterator) if the set is non-empty but
    /// unbounded.
    pub fn points(&self) -> Points {
        enumerate::points(self)
    }

    /// Counts the integer points exactly.
    ///
    /// This is the stand-in for Barvinok-style counting used by §3.7
    /// (tile-size selection): tile shapes are small, so explicit enumeration
    /// is exact and fast.
    pub fn count_points(&self) -> u64 {
        enumerate::count(self)
    }
}

impl fmt::Debug for BasicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for BasicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ [x0..x{}] : ", self.dim.saturating_sub(1))?;
        for (i, c) in self.cons.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c}")?;
        }
        if self.cons.is_empty() {
            write!(f, "true")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_membership_and_count() {
        let b = BasicSet::box_set(&[(0, 2), (-1, 1)]);
        assert!(b.contains(&[0, -1]));
        assert!(b.contains(&[2, 1]));
        assert!(!b.contains(&[3, 0]));
        assert_eq!(b.count_points(), 9);
    }

    #[test]
    fn emptiness_rational_vs_integer() {
        // 1 <= 3x <= 2 has a rational solution but no integer one.
        let dim = 1;
        let s = BasicSet::new(dim)
            .with_ge(Aff::from_ints(&[3], -1))
            .with_ge(Aff::from_ints(&[-3], 2));
        assert!(!s.is_empty_rat());
        assert!(s.is_empty_int());
    }

    #[test]
    fn bounding_box_of_triangle() {
        // 0 <= x, 0 <= y, x + y <= 3.
        let s = BasicSet::new(2)
            .with_ge(Aff::var(2, 0))
            .with_ge(Aff::var(2, 1))
            .with_ge(Aff::from_ints(&[-1, -1], 3));
        let bb = s.bounding_box();
        assert_eq!(bb[0], Some((Rat::ZERO, Rat::from(3))));
        assert_eq!(bb[1], Some((Rat::ZERO, Rat::from(3))));
        assert_eq!(s.count_points(), 10);
    }

    #[test]
    fn unbounded_detection() {
        let s = BasicSet::new(1).with_ge(Aff::var(1, 0));
        assert!(!s.is_bounded());
    }

    #[test]
    fn projection_matches_enumeration() {
        // Project the triangle 0 <= y <= x <= 3 onto x: [0, 3].
        let s = BasicSet::new(2)
            .with_ge(Aff::var(2, 1))
            .with_ge(Aff::var(2, 0) - Aff::var(2, 1))
            .with_ge(Aff::constant(2, Rat::from(3)) - Aff::var(2, 0));
        let p = s.project_out(1);
        assert_eq!(p.dim(), 1);
        for x in -2..6 {
            assert_eq!(p.contains(&[x]), (0..=3).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn intersect_reduces_points() {
        let a = BasicSet::box_set(&[(0, 5)]);
        let b = BasicSet::box_set(&[(3, 9)]);
        assert_eq!(a.intersect(&b).count_points(), 3); // {3,4,5}
    }

    #[test]
    fn fix_dim_slices() {
        let s = BasicSet::box_set(&[(0, 3), (0, 3)]);
        assert_eq!(s.fix_dim(0, 2).count_points(), 4);
        assert_eq!(s.fix_dim(0, 9).count_points(), 0);
    }

    #[test]
    fn insert_dims_leaves_new_dims_free() {
        let s = BasicSet::box_set(&[(0, 1)]).insert_dims(0, 1);
        assert_eq!(s.dim(), 2);
        assert!(s.contains(&[12345, 0]));
        assert!(!s.contains(&[0, 2]));
    }
}
