//! Exact rational numbers over `i128` with checked arithmetic.
//!
//! [`Rat`] is the scalar type used throughout `polylib`. Values are kept
//! normalized (`den > 0`, `gcd(num, den) == 1`), so equality and hashing are
//! structural. All arithmetic panics on overflow instead of wrapping; the
//! polyhedra manipulated by the tiling algorithms are tiny (tens of
//! constraints, single-digit dimensions), so `i128` headroom is ample.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Greatest common divisor of two non-negative integers.
fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// An exact rational number `num/den` with `den > 0`, always normalized.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Numerator of the normalized representation.
    pub fn num(self) -> i128 {
        self.num
    }

    /// Denominator of the normalized representation (always positive).
    pub fn den(self) -> i128 {
        self.den
    }

    /// True if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// True if the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Sign of the value: -1, 0 or 1.
    pub fn signum(self) -> i32 {
        self.num.signum() as i32
    }

    /// Largest integer `<= self` (floor).
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self` (ceiling).
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Fractional part `{x} = x - floor(x)`, always in `[0, 1)`.
    ///
    /// This is the `{x}` of inequality (1) in the paper.
    pub fn fract(self) -> Rat {
        self - Rat::from(self.floor())
    }

    /// Absolute value.
    pub fn abs(self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Exact conversion to `i128` when the value is an integer.
    pub fn to_integer(self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Approximate conversion for display/diagnostics only.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The smaller of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    fn checked(num: Option<i128>, den: Option<i128>) -> Rat {
        Rat::new(
            num.expect("rational arithmetic overflow"),
            den.expect("rational arithmetic overflow"),
        )
    }
}

impl From<i128> for Rat {
    fn from(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        let g = gcd(self.den, rhs.den).max(1);
        let (ld, rd) = (rhs.den / g, self.den / g);
        Rat::checked(
            self.num
                .checked_mul(ld)
                .and_then(|a| rhs.num.checked_mul(rd).and_then(|b| a.checked_add(b))),
            self.den.checked_mul(ld),
        )
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce before multiplying to limit growth.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rat::checked(
            (self.num / g1).checked_mul(rhs.num / g2),
            (self.den / g2).checked_mul(rhs.den / g1),
        )
    }
}

impl Div for Rat {
    type Output = Rat;
    // Division via the exact reciprocal keeps one overflow-checked
    // multiplication path for both operators.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b  (b, d > 0)
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational comparison overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational comparison overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_on_construction() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, -7), Rat::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Rat::new(3, 4);
        let b = Rat::new(5, 6);
        assert_eq!(a + b, Rat::new(19, 12));
        assert_eq!(a - b, Rat::new(-1, 12));
        assert_eq!(a * b, Rat::new(5, 8));
        assert_eq!(a / b, Rat::new(9, 10));
        assert_eq!(-a, Rat::new(-3, 4));
    }

    #[test]
    fn floor_and_ceil_handle_negatives() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from(5).floor(), 5);
        assert_eq!(Rat::from(5).ceil(), 5);
    }

    #[test]
    fn fract_is_in_unit_interval() {
        assert_eq!(Rat::new(7, 2).fract(), Rat::new(1, 2));
        assert_eq!(Rat::new(-7, 2).fract(), Rat::new(1, 2));
        assert_eq!(Rat::from(3).fract(), Rat::ZERO);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 3) > Rat::new(-1, 2));
        assert_eq!(Rat::new(2, 6).cmp(&Rat::new(1, 3)), Ordering::Equal);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rat::new(3, 4).to_string(), "3/4");
        assert_eq!(Rat::from(-2).to_string(), "-2");
    }

    #[test]
    fn min_max() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }
}
