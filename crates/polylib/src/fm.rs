//! Fourier–Motzkin elimination over exact rationals.
//!
//! Used to project polyhedra onto dimension prefixes, both for the
//! enumeration cascade ([`crate::enumerate`]) and for the public
//! [`crate::BasicSet::project_out`]. The projection is exact over the
//! rationals; integer points of the projection are an over-approximation of
//! the projection of the integer points (the classic FM caveat), which is why
//! enumeration re-checks membership at the leaves.

use crate::{Aff, Constraint, ConstraintKind, Rat};
use std::collections::HashSet;

/// Eliminates dimension `d` from `cons`, returning constraints over the same
/// dimension count but with a zero coefficient for `d`.
///
/// Equalities involving `d` are used as exact substitutions when present;
/// remaining lower/upper bound pairs are combined pairwise.
pub fn eliminate_dim(cons: &[Constraint], d: usize) -> Vec<Constraint> {
    // Prefer substitution through an equality: exact and avoids the
    // quadratic pair blow-up.
    if let Some(pos) = cons
        .iter()
        .position(|c| c.kind() == ConstraintKind::Eq && !c.expr().coeff(d).is_zero())
    {
        let eq = &cons[pos];
        let cd = eq.expr().coeff(d);
        // From e == 0 with coefficient cd on d:  d = -(e - cd*d)/cd.
        let rest = eq.expr().clone().with_coeff(d, Rat::ZERO);
        let repl = -rest * cd.recip();
        let mut out = Vec::with_capacity(cons.len() - 1);
        for (i, c) in cons.iter().enumerate() {
            if i == pos {
                continue;
            }
            let e = c
                .expr()
                .substitute(d, &repl)
                .clear_denominators()
                .normalize_gcd();
            out.push(match c.kind() {
                ConstraintKind::Ge => Constraint::ge0(e),
                ConstraintKind::Eq => Constraint::eq0(e),
            });
        }
        return dedupe(out);
    }

    let mut lowers: Vec<Aff> = Vec::new(); // d >= -rest/coeff, stored as the full expr (coeff>0)
    let mut uppers: Vec<Aff> = Vec::new(); // coeff < 0
    let mut keep: Vec<Constraint> = Vec::new();
    for c in cons {
        let cd = c.expr().coeff(d);
        if cd.is_zero() {
            keep.push(c.clone());
        } else if cd.signum() > 0 {
            lowers.push(c.expr().clone());
        } else {
            uppers.push(c.expr().clone());
        }
    }
    for lo in &lowers {
        for up in &uppers {
            // lo: a*d + p >= 0 (a>0)  =>  d >= -p/a
            // up: -b*d + q >= 0 (b>0) =>  d <= q/b
            // combined: q/b >= -p/a  =>  a*q + b*p >= 0.
            let a = lo.coeff(d);
            let b = -up.coeff(d);
            let p = lo.clone().with_coeff(d, Rat::ZERO);
            let q = up.clone().with_coeff(d, Rat::ZERO);
            let combined = (q * a + p * b).clear_denominators().normalize_gcd();
            if combined.is_constant() {
                if combined.constant_term().signum() < 0 {
                    // Trivially infeasible projection: return a canonical
                    // unsatisfiable constraint set.
                    return vec![Constraint::ge0(Aff::constant(
                        cons.first().map_or(0, Constraint::dim),
                        Rat::from(-1),
                    ))];
                }
                continue; // trivially true
            }
            keep.push(Constraint::ge0(combined));
        }
    }
    dedupe(keep)
}

/// Removes duplicate constraints (after normalization) while preserving
/// order.
pub fn dedupe(cons: Vec<Constraint>) -> Vec<Constraint> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut out = Vec::with_capacity(cons.len());
    for c in cons {
        let n = c.normalized();
        let key = format!("{n}");
        if seen.insert(key) {
            out.push(n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ge(coeffs: &[i64], c0: i64) -> Constraint {
        Constraint::ge0(Aff::from_ints(coeffs, c0))
    }

    #[test]
    fn projects_a_triangle_onto_x() {
        // 0 <= y <= x <= 4, eliminate y => 0 <= x <= 4.
        let cons = vec![
            ge(&[0, 1], 0),  // y >= 0
            ge(&[1, -1], 0), // x - y >= 0
            ge(&[-1, 0], 4), // x <= 4
        ];
        let proj = eliminate_dim(&cons, 1);
        // x in [0,4] must be exactly characterized.
        for x in -2..7 {
            let inside = proj.iter().all(|c| c.holds_at(&[x, 0]));
            assert_eq!(inside, (0..=4).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn equality_substitution_is_used() {
        // y == 2x, y <= 6, x >= 0: eliminate y => 2x <= 6, x >= 0.
        let cons = vec![
            Constraint::eq0(Aff::from_ints(&[2, -1], 0)),
            ge(&[0, -1], 6),
            ge(&[1, 0], 0),
        ];
        let proj = eliminate_dim(&cons, 1);
        for x in -1..6 {
            let inside = proj.iter().all(|c| c.holds_at(&[x, 0]));
            assert_eq!(inside, (0..=3).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn detects_empty_projection() {
        // y >= x + 1 and y <= x - 1: eliminating y exposes infeasibility.
        let cons = vec![ge(&[-1, 1], -1), ge(&[1, -1], -1)];
        let proj = eliminate_dim(&cons, 1);
        assert!(proj
            .iter()
            .any(|c| { c.expr().is_constant() && c.expr().constant_term().signum() < 0 }));
    }

    #[test]
    fn unconstrained_dim_elimination_keeps_rest() {
        let cons = vec![ge(&[1, 0], 0)];
        let proj = eliminate_dim(&cons, 1);
        assert_eq!(proj.len(), 1);
        assert!(proj[0].holds_at(&[3, 99]));
    }
}
