//! Exact integer-point enumeration and counting via a Fourier–Motzkin
//! cascade.
//!
//! The cascade projects the set onto its dimension prefixes once; the DFS
//! then derives exact per-level integer bounds from the projected
//! constraints. Leaf candidates are re-checked against the original
//! constraints because Fourier–Motzkin is only exact over the rationals.

use crate::{BasicSet, ConstraintKind, Rat};

/// Precomputed projection cascade for one basic set.
struct Cascade {
    /// `levels[k]` holds `(coeff_of_xk, rest_expr, kind)` for every
    /// constraint of the projection onto dims `0..=k` whose coefficient on
    /// `xk` is non-zero, where `rest_expr` is the constraint with the `xk`
    /// coefficient zeroed (still over `dim` variables for uniform indexing).
    levels: Vec<Vec<(Rat, crate::Aff, ConstraintKind)>>,
    dim: usize,
}

fn build_cascade(set: &BasicSet) -> Option<Cascade> {
    let dim = set.dim();
    if dim == 0 {
        return Some(Cascade {
            levels: Vec::new(),
            dim,
        });
    }
    // proj[k] = constraints over dims 0..=k (with zero coeffs above k).
    let mut projections: Vec<Vec<crate::Constraint>> = vec![Vec::new(); dim];
    let mut current: Vec<crate::Constraint> = set.constraints().to_vec();
    projections[dim - 1] = current.clone();
    for k in (1..dim).rev() {
        current = crate::fm::eliminate_dim(&current, k);
        projections[k - 1] = current.clone();
    }
    let mut levels = Vec::with_capacity(dim);
    for (k, proj) in projections.iter().enumerate() {
        let mut lv = Vec::new();
        let mut has_lower = false;
        let mut has_upper = false;
        for c in proj {
            let a = c.expr().coeff(k);
            if a.is_zero() {
                continue;
            }
            if c.kind() == ConstraintKind::Eq {
                has_lower = true;
                has_upper = true;
            } else if a.signum() > 0 {
                has_lower = true;
            } else {
                has_upper = true;
            }
            let rest = c.expr().clone().with_coeff(k, Rat::ZERO);
            lv.push((a, rest, c.kind()));
        }
        if !(has_lower && has_upper) {
            return None; // unbounded level
        }
        levels.push(lv);
    }
    Some(Cascade { levels, dim })
}

impl Cascade {
    /// Integer bounds `[lo, hi]` for `x_level` given the already-fixed
    /// prefix, or `None` when the slice is empty.
    fn bounds(&self, level: usize, point: &[i64]) -> Option<(i64, i64)> {
        let mut lo = i64::MIN;
        let mut hi = i64::MAX;
        for (a, rest, kind) in &self.levels[level] {
            let r = rest.eval_int(point);
            // a * x + r (>=|==) 0
            match kind {
                ConstraintKind::Ge => {
                    if a.signum() > 0 {
                        // x >= -r / a
                        let b = (-r / *a).ceil();
                        if b > i64::MAX as i128 {
                            return None;
                        }
                        lo = lo.max(b.max(i64::MIN as i128) as i64);
                    } else {
                        // x <= r / (-a)
                        let b = (r / -*a).floor();
                        if b < i64::MIN as i128 {
                            return None;
                        }
                        hi = hi.min(b.min(i64::MAX as i128) as i64);
                    }
                }
                ConstraintKind::Eq => {
                    let v = -r / *a;
                    match v.to_integer() {
                        Some(v) => {
                            let v = i64::try_from(v).ok()?;
                            lo = lo.max(v);
                            hi = hi.min(v);
                        }
                        None => return None, // fractional: no integer point
                    }
                }
            }
        }
        if lo > hi {
            None
        } else {
            Some((lo, hi))
        }
    }
}

/// Iterator over the integer points of a [`BasicSet`], lexicographic order.
pub struct Points {
    set: BasicSet,
    cascade: Option<Cascade>,
    /// DFS state: per level, the current value and the upper bound.
    stack: Vec<(i64, i64)>,
    point: Vec<i64>,
    started: bool,
    exhausted: bool,
    empty: bool,
}

pub(crate) fn points(set: &BasicSet) -> Points {
    let feasible = !set.is_empty_rat();
    let cascade = if feasible { build_cascade(set) } else { None };
    if feasible && cascade.is_none() {
        panic!("enumerating an unbounded set: {set}");
    }
    Points {
        set: set.clone(),
        cascade,
        stack: Vec::new(),
        point: vec![0; set.dim()],
        started: false,
        exhausted: false,
        empty: !feasible,
    }
}

impl Points {
    /// Descends from `level` to the deepest level, initializing bounds.
    /// Returns false if some level slice is empty.
    fn descend(&mut self, mut level: usize) -> bool {
        let cascade = self.cascade.as_ref().expect("cascade present");
        while level < cascade.dim {
            match cascade.bounds(level, &self.point) {
                Some((lo, hi)) => {
                    self.stack.push((lo, hi));
                    self.point[level] = lo;
                    level += 1;
                }
                None => return false,
            }
        }
        true
    }

    /// Advances the DFS to the next candidate leaf. Returns false when
    /// exhausted.
    fn advance(&mut self) -> bool {
        let dim = self.point.len();
        if dim == 0 {
            // Zero-dimensional set: single (empty) point if constraints hold.
            if self.started {
                return false;
            }
            self.started = true;
            return true;
        }
        if !self.started {
            self.started = true;
            if self.descend(0) {
                return true;
            }
            // Fall through to backtracking with a partially built stack.
        }
        // Backtrack to a level that can still advance.
        while let Some(&(_, hi)) = self.stack.last() {
            let level = self.stack.len() - 1;
            if self.point[level] < hi {
                self.point[level] += 1;
                if self.descend(level + 1) {
                    return true;
                }
                // Child slice empty: try the next value at this level.
            } else {
                self.stack.pop();
            }
        }
        false
    }
}

impl Iterator for Points {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        if self.empty || self.exhausted {
            return None;
        }
        loop {
            if !self.advance() {
                self.exhausted = true;
                return None;
            }
            // FM is exact over rationals only; re-check integrality at the
            // leaf against the original constraints.
            if self.set.contains(&self.point) {
                return Some(self.point.clone());
            }
        }
    }
}

/// Counts integer points exactly (without materializing them).
pub(crate) fn count(set: &BasicSet) -> u64 {
    let mut n = 0u64;
    for _ in points(set) {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use crate::{Aff, BasicSet};

    #[test]
    fn enumerates_a_box_in_lex_order() {
        let b = BasicSet::box_set(&[(0, 1), (0, 1)]);
        let pts: Vec<_> = b.points().collect();
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn respects_equalities() {
        // x + y == 3 inside a 0..=3 box: (0,3),(1,2),(2,1),(3,0).
        let b = BasicSet::box_set(&[(0, 3), (0, 3)]).with_eq(Aff::from_ints(&[1, 1], -3));
        assert_eq!(b.count_points(), 4);
    }

    #[test]
    fn fractional_equality_has_no_points() {
        // 2x == 1.
        let b = BasicSet::box_set(&[(-5, 5)]).with_eq(Aff::from_ints(&[2], -1));
        assert_eq!(b.count_points(), 0);
    }

    #[test]
    fn skewed_region() {
        // 0 <= x <= 4, x <= y <= x + 2: 5 * 3 points.
        let b = BasicSet::box_set(&[(0, 4), (-100, 100)])
            .with_ge(Aff::from_ints(&[-1, 1], 0))
            .with_ge(Aff::from_ints(&[1, -1], 2));
        assert_eq!(b.count_points(), 15);
    }

    #[test]
    fn empty_set_has_no_points() {
        let b = BasicSet::box_set(&[(3, 2)]);
        assert_eq!(b.count_points(), 0);
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn unbounded_enumeration_panics() {
        let b = BasicSet::new(1).with_ge(Aff::var(1, 0));
        let _ = b.points().next();
    }

    #[test]
    fn zero_dim_universe_has_one_point() {
        let b = BasicSet::new(0);
        assert_eq!(b.count_points(), 1);
    }

    #[test]
    fn matches_brute_force_on_random_triangles() {
        // Deterministic pseudo-random triangles, validated against brute
        // force over a bounding window.
        for seed in 0..20i64 {
            let a = (seed * 7 % 5) + 1;
            let b = (seed * 11 % 4) + 1;
            let c = (seed * 13 % 30) + 5;
            // a*x + b*y <= c, x >= 0, y >= 0
            let s = BasicSet::new(2)
                .with_ge(Aff::var(2, 0))
                .with_ge(Aff::var(2, 1))
                .with_ge(Aff::from_ints(&[-a, -b], c));
            let brute = {
                let mut n = 0;
                for x in 0..=c {
                    for y in 0..=c {
                        if a * x + b * y <= c {
                            n += 1;
                        }
                    }
                }
                n
            };
            assert_eq!(s.count_points() as i64, brute, "seed {seed}");
        }
    }
}
