//! Exact two-phase rational simplex.
//!
//! This is the LP engine behind the paper's §3.3.2: the slopes δ0 and δ1 of
//! the opposite dependence cone "can be computed through the solution of an
//! LP-problem". Variables are unrestricted rationals (split internally into
//! differences of non-negative variables); Bland's rule guarantees
//! termination; all arithmetic is exact.

use crate::{Aff, Constraint, ConstraintKind, Rat};

/// Optimization direction for [`lp`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Objective {
    /// Minimize the objective expression.
    Minimize,
    /// Maximize the objective expression.
    Maximize,
}

/// Result of an exact LP solve.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LpResult {
    /// The constraint system has no rational solution.
    Infeasible,
    /// The objective is unbounded in the requested direction.
    Unbounded,
    /// Optimum found: the optimal objective value and one optimal point.
    Optimal {
        /// Optimal value of the objective expression.
        value: Rat,
        /// A point attaining the optimum (dimension = number of variables).
        point: Vec<Rat>,
    },
}

impl LpResult {
    /// The optimal value, if an optimum was found.
    pub fn value(&self) -> Option<Rat> {
        match self {
            LpResult::Optimal { value, .. } => Some(*value),
            _ => None,
        }
    }
}

/// Solves `min/max objective` subject to `constraints` over unrestricted
/// rational variables.
///
/// All constraints and the objective must share the same dimension.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn lp(constraints: &[Constraint], objective: &Aff, direction: Objective) -> LpResult {
    let dim = objective.dim();
    for c in constraints {
        assert_eq!(c.dim(), dim, "constraint/objective dim mismatch");
    }

    let n_ge = constraints
        .iter()
        .filter(|c| c.kind() == ConstraintKind::Ge)
        .count();
    let n_rows = constraints.len();
    // Columns: x+ / x- pairs, slacks, artificials.
    let n_struct = 2 * dim + n_ge;
    let n_cols = n_struct + n_rows;

    // Build rows: a.x + c0 (>=|==) 0  ->  a.x [- s] = -c0.
    let mut rows: Vec<Vec<Rat>> = Vec::with_capacity(n_rows);
    let mut rhs: Vec<Rat> = Vec::with_capacity(n_rows);
    let mut slack_idx = 0usize;
    for c in constraints {
        let mut row = vec![Rat::ZERO; n_cols];
        for d in 0..dim {
            let a = c.expr().coeff(d);
            row[2 * d] = a;
            row[2 * d + 1] = -a;
        }
        if c.kind() == ConstraintKind::Ge {
            row[2 * dim + slack_idx] = -Rat::ONE;
            slack_idx += 1;
        }
        let mut b = -c.expr().constant_term();
        if b.signum() < 0 {
            for v in row.iter_mut() {
                *v = -*v;
            }
            b = -b;
        }
        rows.push(row);
        rhs.push(b);
    }
    // Artificial basis.
    let mut basis: Vec<usize> = Vec::with_capacity(n_rows);
    for (i, row) in rows.iter_mut().enumerate() {
        row[n_struct + i] = Rat::ONE;
        basis.push(n_struct + i);
    }

    let mut t = Tableau {
        rows,
        rhs,
        basis,
        z: vec![Rat::ZERO; n_cols],
        z_rhs: Rat::ZERO,
        banned_from: n_cols, // nothing banned during phase 1
    };

    // Phase 1: minimize the sum of artificials. With artificial basis of
    // cost 1 each, the reduced-cost row is the sum of all constraint rows
    // (artificial columns then get 1 - 1 = 0).
    for i in 0..n_rows {
        for j in 0..n_cols {
            t.z[j] += t.rows[i][j];
        }
        t.z_rhs += t.rhs[i];
    }
    for j in n_struct..n_cols {
        t.z[j] = Rat::ZERO;
    }
    t.solve_to_optimality();
    if !t.z_rhs.is_zero() {
        return LpResult::Infeasible;
    }
    // Drive remaining artificials out of the basis where possible.
    for i in 0..n_rows {
        if t.basis[i] >= n_struct {
            if let Some(j) = (0..n_struct).find(|&j| !t.rows[i][j].is_zero()) {
                t.pivot(i, j);
            }
            // Otherwise the row is redundant (all-zero over structurals) and
            // the artificial stays basic at value zero, which is harmless as
            // long as artificials never re-enter.
        }
    }
    t.banned_from = n_struct;

    // Phase 2 objective: minimize sign * objective.
    let sign = match direction {
        Objective::Minimize => Rat::ONE,
        Objective::Maximize => -Rat::ONE,
    };
    let mut cost = vec![Rat::ZERO; n_cols];
    for d in 0..dim {
        let c = objective.coeff(d) * sign;
        cost[2 * d] = c;
        cost[2 * d + 1] = -c;
    }
    // Rebuild reduced costs: z[j] = c_B . B^-1 A_j - c_j.
    for j in 0..n_cols {
        let mut v = -cost[j];
        for i in 0..n_rows {
            let cb = cost[t.basis[i]];
            if !cb.is_zero() {
                v += cb * t.rows[i][j];
            }
        }
        t.z[j] = v;
    }
    t.z_rhs = Rat::ZERO;
    for i in 0..n_rows {
        let cb = cost[t.basis[i]];
        if !cb.is_zero() {
            t.z_rhs += cb * t.rhs[i];
        }
    }
    if !t.solve_to_optimality() {
        return LpResult::Unbounded;
    }

    // Extract the witness point: x_d = y(2d) - y(2d+1).
    let mut y = vec![Rat::ZERO; n_cols];
    for i in 0..n_rows {
        y[t.basis[i]] = t.rhs[i];
    }
    let point: Vec<Rat> = (0..dim).map(|d| y[2 * d] - y[2 * d + 1]).collect();
    // z_rhs holds c_B b = sign * objective(point) since constant term was
    // excluded; add it back and undo the sign.
    let value = t.z_rhs * sign + objective.constant_term();
    debug_assert_eq!(objective.eval(&point), value, "simplex witness mismatch");
    LpResult::Optimal { value, point }
}

struct Tableau {
    rows: Vec<Vec<Rat>>,
    rhs: Vec<Rat>,
    basis: Vec<usize>,
    /// Reduced-cost row: `z[j] = c_B . B^-1 A_j - c_j`.
    z: Vec<Rat>,
    /// Current objective value `c_B . B^-1 b`.
    z_rhs: Rat,
    /// Columns `>= banned_from` may not enter the basis (artificials in
    /// phase 2).
    banned_from: usize,
}

impl Tableau {
    /// Pivots until optimal. Returns `false` if the problem is unbounded.
    fn solve_to_optimality(&mut self) -> bool {
        loop {
            // Bland's rule: smallest-index column with positive reduced cost.
            let enter = (0..self.banned_from.min(self.z.len())).find(|&j| self.z[j].signum() > 0);
            let Some(j) = enter else {
                return true;
            };
            // Ratio test, Bland tie-break on smallest basis variable.
            let mut leave: Option<(usize, Rat)> = None;
            for i in 0..self.rows.len() {
                let a = self.rows[i][j];
                if a.signum() > 0 {
                    let ratio = self.rhs[i] / a;
                    let better = match &leave {
                        None => true,
                        Some((li, lr)) => {
                            ratio < *lr || (ratio == *lr && self.basis[i] < self.basis[*li])
                        }
                    };
                    if better {
                        leave = Some((i, ratio));
                    }
                }
            }
            let Some((i, _)) = leave else {
                return false;
            };
            self.pivot(i, j);
        }
    }

    fn pivot(&mut self, pi: usize, pj: usize) {
        let p = self.rows[pi][pj];
        assert!(!p.is_zero(), "pivot on zero element");
        let inv = p.recip();
        for v in self.rows[pi].iter_mut() {
            *v = *v * inv;
        }
        self.rhs[pi] = self.rhs[pi] * inv;
        for i in 0..self.rows.len() {
            if i == pi {
                continue;
            }
            let f = self.rows[i][pj];
            if f.is_zero() {
                continue;
            }
            for j in 0..self.rows[i].len() {
                let delta = self.rows[pi][j] * f;
                self.rows[i][j] -= delta;
            }
            let delta = self.rhs[pi] * f;
            self.rhs[i] -= delta;
        }
        let f = self.z[pj];
        if !f.is_zero() {
            for j in 0..self.z.len() {
                let delta = self.rows[pi][j] * f;
                self.z[j] -= delta;
            }
            self.z_rhs -= self.rhs[pi] * f;
        }
        self.basis[pi] = pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ge(coeffs: &[i64], c0: i64) -> Constraint {
        Constraint::ge0(Aff::from_ints(coeffs, c0))
    }

    #[test]
    fn maximize_over_a_box() {
        // 0 <= x <= 3, 0 <= y <= 5: max x + y = 8 at (3, 5).
        let cs = vec![
            ge(&[1, 0], 0),
            ge(&[-1, 0], 3),
            ge(&[0, 1], 0),
            ge(&[0, -1], 5),
        ];
        let obj = Aff::from_ints(&[1, 1], 0);
        match lp(&cs, &obj, Objective::Maximize) {
            LpResult::Optimal { value, point } => {
                assert_eq!(value, Rat::from(8));
                assert_eq!(point, vec![Rat::from(3), Rat::from(5)]);
            }
            other => panic!("expected optimum, got {other:?}"),
        }
    }

    #[test]
    fn minimize_with_negative_region() {
        // x >= -4: min x = -4.
        let cs = vec![ge(&[1], 4)];
        let obj = Aff::from_ints(&[1], 0);
        assert_eq!(
            lp(&cs, &obj, Objective::Minimize).value(),
            Some(Rat::from(-4))
        );
    }

    #[test]
    fn detects_unbounded() {
        let cs = vec![ge(&[1], 0)]; // x >= 0
        let obj = Aff::from_ints(&[1], 0);
        assert_eq!(lp(&cs, &obj, Objective::Maximize), LpResult::Unbounded);
    }

    #[test]
    fn detects_infeasible() {
        // x >= 1 and x <= -1.
        let cs = vec![ge(&[1], -1), ge(&[-1], -1)];
        let obj = Aff::from_ints(&[1], 0);
        assert_eq!(lp(&cs, &obj, Objective::Minimize), LpResult::Infeasible);
    }

    #[test]
    fn handles_equalities() {
        // x + y == 10, x >= 2, y >= 3: min x = 2 (y = 8).
        let cs = vec![
            Constraint::eq0(Aff::from_ints(&[1, 1], -10)),
            ge(&[1, 0], -2),
            ge(&[0, 1], -3),
        ];
        let obj = Aff::from_ints(&[1, 0], 0);
        match lp(&cs, &obj, Objective::Minimize) {
            LpResult::Optimal { value, point } => {
                assert_eq!(value, Rat::from(2));
                assert_eq!(point[0] + point[1], Rat::from(10));
            }
            other => panic!("expected optimum, got {other:?}"),
        }
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // 2x <= 1, x >= 0: max x = 1/2.
        let cs = vec![ge(&[-2], 1), ge(&[1], 0)];
        let obj = Aff::from_ints(&[1], 0);
        assert_eq!(
            lp(&cs, &obj, Objective::Maximize).value(),
            Some(Rat::new(1, 2))
        );
    }

    #[test]
    fn objective_constant_term_is_included() {
        // max (x + 7) with 0 <= x <= 1 is 8.
        let cs = vec![ge(&[1], 0), ge(&[-1], 1)];
        let obj = Aff::from_ints(&[1], 7);
        assert_eq!(
            lp(&cs, &obj, Objective::Maximize).value(),
            Some(Rat::from(8))
        );
    }

    #[test]
    fn paper_delta_lp() {
        // Distance vectors {(1,-2),(2,2)} from the paper's running example.
        // delta0 = min d s.t. ds0 <= d * dt for both vectors  =>  d >= -2 and
        // 2 <= 2d  =>  delta0 = 1.
        let cs = vec![
            ge(&[1], 2),  // d*1 - (-2) >= 0
            ge(&[2], -2), // d*2 - 2 >= 0
        ];
        let obj = Aff::from_ints(&[1], 0);
        assert_eq!(lp(&cs, &obj, Objective::Minimize).value(), Some(Rat::ONE));
        // delta1 = min d s.t. ds0 >= -d * dt: -2 >= -d, 2 >= -2d => delta1 = 2.
        let cs = vec![ge(&[1], -2), ge(&[2], 2)];
        assert_eq!(
            lp(&cs, &obj, Objective::Minimize).value(),
            Some(Rat::from(2))
        );
    }

    #[test]
    fn degenerate_redundant_rows() {
        // Duplicate and redundant constraints must not confuse phase 1.
        let cs = vec![
            ge(&[1, 0], 0),
            ge(&[1, 0], 0),
            ge(&[0, 1], 0),
            ge(&[-1, -1], 6),
        ];
        let obj = Aff::from_ints(&[1, 1], 0);
        assert_eq!(
            lp(&cs, &obj, Objective::Maximize).value(),
            Some(Rat::from(6))
        );
    }
}
