//! Relations (maps) between integer spaces, with dependence-distance
//! computation.

use crate::{Aff, BasicSet, Rat, Set};
use std::fmt;

/// A conjunctive relation `{ [in] -> [out] : constraints }` represented as a
/// basic set over the concatenated `in ++ out` dimensions.
///
/// This mirrors isl's `basic_map`; the key operation for the paper is
/// [`BasicMap::deltas`], which computes the set of dependence distance
/// vectors `out - in` (paper §3.1).
#[derive(Clone)]
pub struct BasicMap {
    n_in: usize,
    n_out: usize,
    bset: BasicSet,
}

impl BasicMap {
    /// The universe relation with the given arities.
    pub fn new(n_in: usize, n_out: usize) -> BasicMap {
        BasicMap {
            n_in,
            n_out,
            bset: BasicSet::new(n_in + n_out),
        }
    }

    /// Wraps a basic set over `n_in + n_out` dimensions as a relation.
    ///
    /// # Panics
    ///
    /// Panics if the set's dimension is not `n_in + n_out`.
    pub fn from_set(n_in: usize, n_out: usize, bset: BasicSet) -> BasicMap {
        assert_eq!(bset.dim(), n_in + n_out, "wrapped set has wrong dimension");
        BasicMap { n_in, n_out, bset }
    }

    /// The uniform translation `{ [x] -> [x + shift] }` intersected with
    /// `domain` (a set over the input space).
    pub fn translation(domain: &BasicSet, shift: &[i64]) -> BasicMap {
        let n = domain.dim();
        assert_eq!(shift.len(), n, "shift arity mismatch");
        let total = 2 * n;
        // Domain constraints apply to the input dims.
        let mut bset = domain.insert_dims(n, n);
        for (d, &s) in shift.iter().enumerate() {
            // out_d - in_d - s == 0
            let e =
                Aff::var(total, n + d) - Aff::var(total, d) - Aff::constant(total, Rat::from(s));
            bset = bset.with_eq(e);
        }
        BasicMap {
            n_in: n,
            n_out: n,
            bset,
        }
    }

    /// Input arity.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output arity.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// The underlying set over `in ++ out` dimensions.
    pub fn wrapped_set(&self) -> &BasicSet {
        &self.bset
    }

    /// True if the pair `(input, output)` is in the relation.
    pub fn contains_pair(&self, input: &[i64], output: &[i64]) -> bool {
        assert_eq!(input.len(), self.n_in, "input arity mismatch");
        assert_eq!(output.len(), self.n_out, "output arity mismatch");
        let mut p = Vec::with_capacity(self.n_in + self.n_out);
        p.extend_from_slice(input);
        p.extend_from_slice(output);
        self.bset.contains(&p)
    }

    /// All outputs related to `input` (requires the image to be bounded).
    pub fn image_of(&self, input: &[i64]) -> Vec<Vec<i64>> {
        assert_eq!(input.len(), self.n_in, "input arity mismatch");
        let mut s = self.bset.clone();
        for (d, &v) in input.iter().enumerate() {
            s = s.fix_dim(d, v);
        }
        s.points().map(|p| p[self.n_in..].to_vec()).collect()
    }

    /// The set of distance vectors `{ out - in }` (requires `n_in == n_out`).
    ///
    /// This is isl's `deltas`, the input to the dependence-cone construction
    /// of §3.3.2.
    ///
    /// # Panics
    ///
    /// Panics if input and output arities differ.
    pub fn deltas(&self) -> BasicSet {
        assert_eq!(self.n_in, self.n_out, "deltas of non-square relation");
        let n = self.n_in;
        // Space: [delta (n), in (n), out (n)].
        let mut s = self.bset.insert_dims(0, n);
        let total = 3 * n;
        for d in 0..n {
            // delta_d - (out_d - in_d) == 0
            let e = Aff::var(total, d) - Aff::var(total, n + n + d) + Aff::var(total, n + d);
            s = s.with_eq(e);
        }
        // Project out in/out dims (indices n .. 3n), highest first.
        for d in (n..3 * n).rev() {
            s = s.project_out(d);
        }
        s
    }

    /// The domain of the relation (projection onto the input dims).
    pub fn domain(&self) -> BasicSet {
        let mut s = self.bset.clone();
        for d in (self.n_in..self.n_in + self.n_out).rev() {
            s = s.project_out(d);
        }
        s
    }

    /// The range of the relation (projection onto the output dims).
    pub fn range(&self) -> BasicSet {
        let mut s = self.bset.clone();
        for d in (0..self.n_in).rev() {
            s = s.project_out(d);
        }
        s
    }
}

impl fmt::Debug for BasicMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{ [in:{}] -> [out:{}] : {} }}",
            self.n_in, self.n_out, self.bset
        )
    }
}

/// A finite union of [`BasicMap`]s with common arities.
#[derive(Clone, Debug)]
pub struct Map {
    n_in: usize,
    n_out: usize,
    parts: Vec<BasicMap>,
}

impl Map {
    /// The empty relation with the given arities.
    pub fn empty(n_in: usize, n_out: usize) -> Map {
        Map {
            n_in,
            n_out,
            parts: Vec::new(),
        }
    }

    /// A relation with a single conjunctive piece.
    pub fn from_basic(m: BasicMap) -> Map {
        Map {
            n_in: m.n_in(),
            n_out: m.n_out(),
            parts: vec![m],
        }
    }

    /// Adds a disjunct.
    ///
    /// # Panics
    ///
    /// Panics if arities disagree.
    pub fn add_basic(&mut self, m: BasicMap) {
        assert_eq!((m.n_in(), m.n_out()), (self.n_in, self.n_out));
        self.parts.push(m);
    }

    /// Input arity.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output arity.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// The disjuncts.
    pub fn parts(&self) -> &[BasicMap] {
        &self.parts
    }

    /// True if the pair is in any disjunct.
    pub fn contains_pair(&self, input: &[i64], output: &[i64]) -> bool {
        self.parts.iter().any(|m| m.contains_pair(input, output))
    }

    /// Union of all per-disjunct delta sets.
    pub fn deltas(&self) -> Set {
        let mut out = Set::empty(self.n_in);
        for m in &self.parts {
            out = out.union(&Set::from_basic(m.deltas()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_image() {
        let dom = BasicSet::box_set(&[(0, 4), (0, 4)]);
        let m = BasicMap::translation(&dom, &[1, -2]);
        assert_eq!(m.image_of(&[2, 3]), vec![vec![3, 1]]);
        assert!(m.contains_pair(&[0, 0], &[1, -2]));
        assert!(!m.contains_pair(&[0, 0], &[1, -1]));
        // Outside the domain: empty image.
        assert!(m.image_of(&[9, 9]).is_empty());
    }

    #[test]
    fn deltas_of_translation_is_singleton() {
        let dom = BasicSet::box_set(&[(0, 4), (0, 4)]);
        let m = BasicMap::translation(&dom, &[1, -2]);
        let d = m.deltas();
        assert_eq!(d.dim(), 2);
        let pts: Vec<_> = d.points().collect();
        assert_eq!(pts, vec![vec![1, -2]]);
    }

    #[test]
    fn deltas_of_paper_example() {
        // Dependences of A[t][i] = f(A[t-2][i-2], A[t-1][i+2]):
        // distance vectors (2, 2) and (1, -2).
        let dom = BasicSet::box_set(&[(0, 9), (0, 9)]);
        let mut m = Map::empty(2, 2);
        m.add_basic(BasicMap::translation(&dom, &[2, 2]));
        m.add_basic(BasicMap::translation(&dom, &[1, -2]));
        let d = m.deltas();
        assert!(d.contains(&[2, 2]));
        assert!(d.contains(&[1, -2]));
        assert!(!d.contains(&[1, 2]));
        assert_eq!(d.count_points(), 2);
    }

    #[test]
    fn domain_and_range() {
        let dom = BasicSet::box_set(&[(0, 3)]);
        let m = BasicMap::translation(&dom, &[5]);
        let d = m.domain();
        let r = m.range();
        assert!(d.contains(&[0]) && d.contains(&[3]) && !d.contains(&[4]));
        assert!(r.contains(&[5]) && r.contains(&[8]) && !r.contains(&[4]));
    }
}
