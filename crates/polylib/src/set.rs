//! Finite unions of basic sets, with integer-exact subtraction.

use crate::{BasicSet, Constraint, ConstraintKind};
use std::fmt;

/// A finite union of [`BasicSet`]s over a common space, interpreted over
/// integer points.
///
/// Subtraction is exact on integer points: constraint negation uses the
/// integer complement (`e >= 0` becomes `e <= -1` after scaling to integer
/// coefficients), mirroring how isl subtracts integer sets. This is the
/// operation used to carve hexagonal tiles out of truncated cones (paper
/// §3.3.2, Fig. 4).
#[derive(Clone)]
pub struct Set {
    dim: usize,
    parts: Vec<BasicSet>,
}

impl Set {
    /// The empty set over `dim` variables.
    pub fn empty(dim: usize) -> Set {
        Set {
            dim,
            parts: Vec::new(),
        }
    }

    /// The universe over `dim` variables.
    pub fn universe(dim: usize) -> Set {
        Set {
            dim,
            parts: vec![BasicSet::new(dim)],
        }
    }

    /// A set with a single conjunctive piece.
    pub fn from_basic(b: BasicSet) -> Set {
        Set {
            dim: b.dim(),
            parts: vec![b],
        }
    }

    /// Dimension of the ambient space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The disjuncts of this union.
    pub fn parts(&self) -> &[BasicSet] {
        &self.parts
    }

    /// True if the integer point lies in any disjunct.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.parts.iter().any(|p| p.contains(point))
    }

    /// Union with another set over the same space.
    pub fn union(&self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "union of sets with unequal dim");
        let mut parts = self.parts.clone();
        parts.extend(other.parts.iter().cloned());
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Intersection with another set (distributes over the disjuncts,
    /// dropping rationally-empty pieces).
    pub fn intersect(&self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "intersection of sets with unequal dim");
        let mut parts = Vec::new();
        for a in &self.parts {
            for b in &other.parts {
                let i = a.intersect(b);
                if !i.is_empty_rat() {
                    parts.push(i);
                }
            }
        }
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Subtracts `other`, exactly over integer points.
    ///
    /// `A \ B` for a conjunctive `B = c1 and ... and ck` is
    /// `union_i (A and not c_i and c_1 and ... and c_{i-1})`; the prefix
    /// conjunction keeps the disjuncts pairwise disjoint so that point
    /// counting remains exact without coalescing.
    pub fn subtract(&self, other: &Set) -> Set {
        assert_eq!(self.dim, other.dim, "subtraction of sets with unequal dim");
        let mut current = self.clone();
        for b in &other.parts {
            current = current.subtract_basic(b);
        }
        current
    }

    fn subtract_basic(&self, b: &BasicSet) -> Set {
        let mut parts: Vec<BasicSet> = Vec::new();
        for a in &self.parts {
            let mut prefix: Vec<Constraint> = Vec::new();
            for c in b.constraints() {
                for neg in c.negate_int() {
                    let mut piece = a.clone().with_constraint(neg);
                    for p in &prefix {
                        piece = piece.with_constraint(p.clone());
                    }
                    if !piece.is_empty_rat() {
                        parts.push(piece);
                    }
                }
                // Keep the (positive) constraint for subsequent pieces so the
                // pieces partition `a \ b`.
                match c.kind() {
                    ConstraintKind::Ge | ConstraintKind::Eq => prefix.push(c.clone()),
                }
            }
            if b.constraints().is_empty() {
                // Subtracting the universe: nothing remains of `a`.
            }
        }
        Set {
            dim: self.dim,
            parts,
        }
    }

    /// Counts integer points across all disjuncts.
    ///
    /// # Panics
    ///
    /// Panics if a non-empty disjunct is unbounded. Disjuncts produced by
    /// [`Set::subtract`] are pairwise disjoint, so the sum is exact.
    pub fn count_points(&self) -> u64 {
        self.parts.iter().map(BasicSet::count_points).sum()
    }

    /// Collects all integer points (order: per disjunct, lexicographic).
    pub fn points_vec(&self) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        for p in &self.parts {
            out.extend(p.points());
        }
        out
    }

    /// True if no disjunct contains an integer point.
    pub fn is_empty_int(&self) -> bool {
        self.parts.iter().all(BasicSet::is_empty_int)
    }
}

impl fmt::Debug for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.is_empty() {
            return write!(f, "{{ empty (dim {}) }}", self.dim);
        }
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aff, Rat};

    #[test]
    fn union_and_membership() {
        let a = Set::from_basic(BasicSet::box_set(&[(0, 2)]));
        let b = Set::from_basic(BasicSet::box_set(&[(5, 6)]));
        let u = a.union(&b);
        assert!(u.contains(&[1]));
        assert!(u.contains(&[6]));
        assert!(!u.contains(&[4]));
    }

    #[test]
    fn subtract_interval() {
        // [0,9] \ [3,5] = [0,2] u [6,9], 7 points.
        let a = Set::from_basic(BasicSet::box_set(&[(0, 9)]));
        let b = Set::from_basic(BasicSet::box_set(&[(3, 5)]));
        let d = a.subtract(&b);
        assert_eq!(d.count_points(), 7);
        for x in -2..12 {
            let expect = (0..=9).contains(&x) && !(3..=5).contains(&x);
            assert_eq!(d.contains(&[x]), expect, "x = {x}");
        }
    }

    #[test]
    fn subtract_is_disjoint_partition() {
        // 2D box minus overlapping box; count must equal brute force.
        let a = Set::from_basic(BasicSet::box_set(&[(0, 6), (0, 6)]));
        let b = Set::from_basic(BasicSet::box_set(&[(2, 9), (3, 4)]));
        let d = a.subtract(&b);
        let mut brute = 0;
        for x in 0..=6 {
            for y in 0..=6 {
                if !((2..=9).contains(&x) && (3..=4).contains(&y)) {
                    brute += 1;
                }
            }
        }
        assert_eq!(d.count_points(), brute);
    }

    #[test]
    fn subtract_with_diagonal_constraint() {
        // Triangle x+y<=6 minus half-plane x>=y, exact on integers.
        let tri = BasicSet::box_set(&[(0, 6), (0, 6)]).with_ge(Aff::from_ints(&[-1, -1], 6));
        let half = BasicSet::new(2).with_ge(Aff::from_ints(&[1, -1], 0));
        let d = Set::from_basic(tri.clone()).subtract(&Set::from_basic(half));
        for x in 0..=6i64 {
            for y in 0..=6i64 {
                let expect = x + y <= 6 && x < y;
                assert_eq!(d.contains(&[x, y]), expect, "({x},{y})");
            }
        }
    }

    #[test]
    fn subtract_universe_leaves_nothing() {
        let a = Set::from_basic(BasicSet::box_set(&[(0, 3)]));
        let d = a.subtract(&Set::universe(1));
        assert!(d.is_empty_int());
    }

    #[test]
    fn subtract_equality_piece() {
        // [0,4] minus {x == 2}.
        let a = Set::from_basic(BasicSet::box_set(&[(0, 4)]));
        let b = Set::from_basic(
            BasicSet::new(1).with_eq(Aff::var(1, 0) - Aff::constant(1, Rat::from(2))),
        );
        let d = a.subtract(&b);
        assert_eq!(d.count_points(), 4);
        assert!(!d.contains(&[2]));
    }
}
