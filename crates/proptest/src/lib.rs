//! Offline stand-in for the [proptest] property-testing crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest's API that the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, integer range strategies, tuple
//! strategies, [`collection::vec`], the [`proptest!`] macro with
//! `proptest_config`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * value generation is **deterministic** — the RNG is seeded from the
//!   test name, so a failure always reproduces with `cargo test`;
//! * there is **no shrinking** — instead, the generated inputs of the
//!   failing case are printed (via `Debug`) alongside the case number;
//! * `prop_assert*` panics immediately instead of returning `Err`.
//!
//! [proptest]: https://crates.io/crates/proptest

use std::ops::{Range, RangeInclusive};

/// Runtime configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator; seeded from the test name so every
/// property sees a stable, reproducible input stream.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary string (the generated tests pass their
    /// function name).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        lo.wrapping_add((self.next_u64() as u128 % span) as i64)
    }

    /// Uniform draw from `[lo, hi]` over `usize`.
    pub fn gen_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_i64(lo as i64, hi as i64) as usize
    }
}

/// A reusable recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_i64(*self.start() as i64, *self.end() as i64) as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                rng.gen_i64(self.start as i64, self.end as i64 - 1) as $t
            }
        }
    )+};
}

int_range_strategies! {
    i8 => gen_i64, i16 => gen_i64, i32 => gen_i64, i64 => gen_i64,
    u8 => gen_i64, u16 => gen_i64, u32 => gen_i64, usize => gen_i64,
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! { (A, B) (A, B, C) (A, B, C, D) }

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy generating vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_usize(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The names a test file gets from `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property; panics with the formatted
/// message (no shrinking, the input is reported by the caller's message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Expands each property into a `#[test]` that draws `cases` deterministic
/// inputs from the argument strategies and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    { ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)* } => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                $(let $arg = $strat;)*
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)*
                    // Snapshot the inputs up front: the body may move them,
                    // and on failure they are the whole diagnosis.
                    let inputs = [$(format!(
                        "  {} = {:?}", stringify!($arg), $arg,
                    )),*].join("\n");
                    let run = || -> () { $body };
                    if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest: property {} failed on case {}/{} (deterministic seed) with inputs:\n{}",
                            stringify!($name), case + 1, config.cases, inputs,
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(a.gen_i64(-50, 50), b.gen_i64(-50, 50));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..256 {
            let v = (-3i64..=3).generate(&mut rng);
            assert!((-3..=3).contains(&v));
            let w = (0usize..4).generate(&mut rng);
            assert!(w < 4);
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let strat = prop::collection::vec((-2i64..=2, 0i64..=9), 0..5);
        let mut rng = crate::TestRng::deterministic("compose");
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 5);
            for (a, b) in v {
                assert!((-2..=2).contains(&a));
                assert!((0..=9).contains(&b));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, map, and assertions all wire up.
        #[test]
        fn macro_generates_cases(x in 0i64..=5, v in prop::collection::vec(1i64..=3, 2)) {
            prop_assert!(x <= 5);
            prop_assert_eq!(v.len(), 2);
            let doubled = (0i64..=3).prop_map(|n| n * 2);
            let mut rng = crate::TestRng::deterministic("inner");
            let d = doubled.generate(&mut rng);
            prop_assert!(d % 2 == 0 && d <= 6);
        }
    }
}
