//! Property: the block-parallel executor AND the compiled-bytecode
//! executor are bit-exact with the sequential interpreter — identical
//! grids and identical merged counters — across random gallery stencils,
//! tile sizes, codegen strategies and worker-pool widths (1, 2 and 8
//! threads).
//!
//! This is the executable form of two contracts at once: the determinism
//! argument in [`gpusim::parallel`] (concurrent `S0` tiles of a hybrid
//! schedule are independent — the §3.3.3 property `hybrid_tiling::verify`
//! checks exhaustively at the schedule level, so any interleaving of
//! block execution merges to the same state), and the equivalence
//! contract in [`gpusim::bytecode`] (`run_plan` stays the interpreting
//! oracle; the compiled executor must reproduce its grids and counters
//! bit-for-bit, both standalone and underneath the parallel workers,
//! which use it by default).

use gpu_codegen::{generate_hybrid, CodegenOptions, SmemStrategy};
use gpusim::{DeviceConfig, GpuSim};
use hybrid_tiling::TileParams;
use proptest::prelude::*;
use stencil::{gallery, Grid, StencilProgram};

/// The stencil pool: all 2D gallery programs plus the 1D contrived cone
/// and one (small) 3D program.
fn stencil_pool() -> Vec<StencilProgram> {
    vec![
        gallery::jacobi2d(),
        gallery::laplacian2d(),
        gallery::heat2d(),
        gallery::gradient2d(),
        gallery::fdtd2d(),
        gallery::contrived1d(),
        gallery::laplacian3d(),
    ]
}

/// Small per-arity workloads so a single property case stays fast.
fn workload(program: &StencilProgram, size_pick: usize, steps: usize) -> (Vec<usize>, usize) {
    match program.spatial_dims() {
        1 => (vec![48 + 8 * size_pick], steps),
        2 => (vec![20 + 4 * size_pick, 24 + 4 * size_pick], steps),
        _ => (vec![8 + size_pick, 8, 10], steps.min(4)),
    }
}

/// Tile parameters from the raw draws, shaped to the program's arity. The
/// innermost classical width stays a warp divisor so block shapes remain
/// small.
fn tile_params(program: &StencilProgram, h: i64, w0: i64, wi: i64) -> TileParams {
    let n = program.spatial_dims();
    let mut w = vec![w0];
    if n >= 2 {
        w.resize(n - 1, 2);
        w.push(8 * wi);
    }
    TileParams::new(h, &w)
}

/// Runs one plan on all three executors — interpreting oracle, compiled
/// sequential, compiled parallel — and asserts bitwise agreement.
fn assert_bit_exact(program: &StencilProgram, plan: &gpu_codegen::ir::LaunchPlan, dims: &[usize]) {
    let init: Vec<Grid> = (0..program.num_fields())
        .map(|f| Grid::random(dims, 41 + f as u64))
        .collect();
    let planes = program.max_dt() as usize + 1;

    let mut seq = GpuSim::new(DeviceConfig::gtx470(), &init, planes);
    seq.run_plan(plan);

    // The compiled-bytecode executor against the interpreting oracle:
    // grids and counters, single-threaded, no logging backend involved.
    let mut compiled = GpuSim::new(DeviceConfig::gtx470(), &init, planes);
    compiled.run_plan_compiled(plan);
    assert_eq!(
        compiled.counters(),
        seq.counters(),
        "{}: compiled counters diverged from run_plan oracle",
        program.name()
    );
    for f in 0..program.num_fields() {
        for p in 0..planes {
            assert!(
                compiled.plane(f, p).bit_equal(seq.plane(f, p)),
                "{}: compiled field {} plane {} diverged from run_plan oracle",
                program.name(),
                f,
                p
            );
        }
    }

    for threads in [1usize, 2, 8] {
        let mut par = GpuSim::new(DeviceConfig::gtx470(), &init, planes);
        par.run_plan_parallel_with(plan, threads);
        assert_eq!(
            par.counters(),
            seq.counters(),
            "{}: counters diverged at {} threads",
            program.name(),
            threads
        );
        for f in 0..program.num_fields() {
            for p in 0..planes {
                assert!(
                    par.plane(f, p).bit_equal(seq.plane(f, p)),
                    "{}: field {} plane {} diverged at {} threads",
                    program.name(),
                    f,
                    p,
                    threads
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hybrid plans with shared-memory staging (the Table 1/2 path).
    #[test]
    fn parallel_equals_sequential_shared(
        pick in 0usize..7,
        h in 0i64..=3,
        w0 in 0i64..=4,
        wi in 1i64..=2,
        size_pick in 0usize..4,
        steps in 4usize..=8,
    ) {
        let program = stencil_pool().swap_remove(pick);
        let params = tile_params(&program, h, w0, wi);
        let (dims, steps) = workload(&program, size_pick, steps);
        let opts = CodegenOptions::best();
        // Not every random (h, w) is schedulable (width lower bound,
        // multi-statement height divisibility): infeasible draws are
        // skipped, feasible ones must match bit-for-bit.
        let Ok(plan) = generate_hybrid(&program, &params, &dims, steps, opts) else {
            return;
        };
        assert_bit_exact(&program, &plan, &dims);
    }

    /// Global-memory-only plans: exercises the read-own-write overlay of
    /// the logging backend across multi-step kernels.
    #[test]
    fn parallel_equals_sequential_global_only(
        pick in 0usize..7,
        h in 0i64..=2,
        w0 in 1i64..=3,
        size_pick in 0usize..4,
        steps in 4usize..=6,
    ) {
        let program = stencil_pool().swap_remove(pick);
        let params = tile_params(&program, h, w0, 1);
        let (dims, steps) = workload(&program, size_pick, steps);
        let opts = CodegenOptions {
            smem: SmemStrategy::GlobalOnly,
            aligned_loads: false,
            unroll: true,
        };
        let Ok(plan) = generate_hybrid(&program, &params, &dims, steps, opts) else {
            return;
        };
        assert_bit_exact(&program, &plan, &dims);
    }
}
