//! # gpusim — a CUDA-execution-model GPU simulator
//!
//! The paper evaluates on an NVIDIA GTX 470 and an NVS 5200M with `nvprof`
//! hardware counters. Neither GPU (nor any GPU) is available here, so this
//! crate simulates the CUDA execution model at the fidelity the paper's
//! claims live at:
//!
//! * **functional**: kernels ([`gpu_codegen::Kernel`]) are interpreted
//!   warp-synchronously over real `f32` data, so results are compared
//!   *bit-for-bit* against the sequential oracle;
//! * **memory system**: per-warp global-memory coalescing into 128-byte
//!   transactions, a set-associative write-allocate L2, DRAM sector
//!   counters, and 32-bank shared memory with conflict replay — producing
//!   the counter set of the paper's Table 5 (`gld_inst`, DRAM reads, L2
//!   reads, shared loads per request, global-load efficiency);
//! * **timing**: a roofline model over the counters
//!   ([`timing::estimate_time`]) with per-device parameters
//!   ([`DeviceConfig::gtx470`], [`DeviceConfig::nvs5200m`]), yielding the
//!   GStencils/s and GFLOPS figures of Tables 1, 2 and 4.
//!
//! Large paper workloads are simulated in *sampled* mode
//! ([`GpuSim::run_plan_sampled`]): a subset of thread blocks per launch is
//! interpreted exactly and counters are scaled by the grid size; functional
//! results are then meaningless, so correctness always uses full runs on
//! smaller grids.
//!
//! Full runs scale across CPU cores with the block-parallel executor
//! ([`GpuSim::run_plan_parallel`], module [`parallel`]), which is
//! bit-exact with the sequential path — same grids, same counters — for
//! any worker count.
//!
//! Production paths execute blocks through a compiled bytecode
//! ([`GpuSim::run_plan_compiled`], module [`bytecode`]) instead of
//! re-interpreting the kernel AST per point — several times faster,
//! still bit-exact. `run_plan` keeps interpreting and serves as the
//! oracle; set `HYBRID_SIM_INTERPRET=1` to force the interpreter
//! everywhere.

pub mod bytecode;
pub mod counters;
pub mod device;
pub mod exec;
pub mod memory;
pub mod parallel;
pub mod shared;
pub mod timing;

pub use bytecode::interpreter_forced;
pub use counters::Counters;
pub use device::DeviceConfig;
pub use exec::GpuSim;
pub use parallel::{resolve_sim_threads, sim_threads, ExecError};
pub use timing::{estimate_time, TimeBreakdown};
