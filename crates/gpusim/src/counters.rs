//! The performance-counter set of the paper's Table 5.

use std::ops::{Add, AddAssign};

/// Hardware-style event counters accumulated during simulation.
///
/// Field names follow `nvprof` conventions used in Table 5 of the paper.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Counters {
    /// Executed 32-bit global load instructions (per lane).
    pub gld_inst: u64,
    /// Executed 32-bit global store instructions (per lane).
    pub gst_inst: u64,
    /// Global-memory load transactions (128-byte segments per warp).
    pub gld_transactions: u64,
    /// Global-memory store transactions (128-byte segments per warp).
    pub gst_transactions: u64,
    /// L1/LSU port transactions for global accesses (every coalesced
    /// segment occupies the L1 data port, hit or miss — on Fermi the L1
    /// and shared memory share the same SRAM port).
    pub l1_transactions: u64,
    /// Bytes actually requested by global loads (4 per lane).
    pub gld_requested_bytes: u64,
    /// L2 read transactions (32-byte sectors).
    pub l2_read_transactions: u64,
    /// L2 write transactions (32-byte sectors).
    pub l2_write_transactions: u64,
    /// DRAM read transactions (32-byte sectors, L2 misses).
    pub dram_read_transactions: u64,
    /// DRAM write transactions (32-byte sectors, write misses/evictions).
    pub dram_write_transactions: u64,
    /// Shared-memory load requests (per warp instruction).
    pub shared_load_requests: u64,
    /// Shared-memory load transactions (replays due to bank conflicts).
    pub shared_load_transactions: u64,
    /// Shared-memory store requests.
    pub shared_store_requests: u64,
    /// Shared-memory store transactions.
    pub shared_store_transactions: u64,
    /// Single-precision FLOPs executed (`sqrt` weighted 3).
    pub flops: u64,
    /// Warp instructions issued (all statement executions).
    pub warp_instructions: u64,
    /// `__syncthreads` executions (per block).
    pub syncs: u64,
    /// Warp-level divergent branch events (non-uniform `If` masks).
    pub divergent_branches: u64,
    /// Stencil point-updates computed (for GStencils/s).
    pub point_updates: u64,
    /// Kernel launches performed.
    pub launches: u64,
}

impl Counters {
    /// Global load efficiency: requested bytes / fetched bytes
    /// (the `gld_efficiency` column of Table 5). 1.0 when no loads ran.
    pub fn gld_efficiency(&self) -> f64 {
        if self.gld_transactions == 0 {
            return 1.0;
        }
        self.gld_requested_bytes as f64 / (self.gld_transactions as f64 * 128.0)
    }

    /// Shared loads per request (bank-conflict replay factor; 1.0 is
    /// conflict-free).
    pub fn shared_loads_per_request(&self) -> f64 {
        if self.shared_load_requests == 0 {
            return 1.0;
        }
        self.shared_load_transactions as f64 / self.shared_load_requests as f64
    }

    /// Total DRAM traffic in bytes (32-byte sectors both directions).
    pub fn dram_bytes(&self) -> u64 {
        (self.dram_read_transactions + self.dram_write_transactions) * 32
    }

    /// Total L2 traffic in bytes.
    pub fn l2_bytes(&self) -> u64 {
        (self.l2_read_transactions + self.l2_write_transactions) * 32
    }

    /// Scales all counters by an extrapolation factor (sampled simulation).
    pub fn scaled(&self, factor: f64) -> Counters {
        let s = |v: u64| (v as f64 * factor).round() as u64;
        Counters {
            gld_inst: s(self.gld_inst),
            gst_inst: s(self.gst_inst),
            gld_transactions: s(self.gld_transactions),
            gst_transactions: s(self.gst_transactions),
            l1_transactions: s(self.l1_transactions),
            gld_requested_bytes: s(self.gld_requested_bytes),
            l2_read_transactions: s(self.l2_read_transactions),
            l2_write_transactions: s(self.l2_write_transactions),
            dram_read_transactions: s(self.dram_read_transactions),
            dram_write_transactions: s(self.dram_write_transactions),
            shared_load_requests: s(self.shared_load_requests),
            shared_load_transactions: s(self.shared_load_transactions),
            shared_store_requests: s(self.shared_store_requests),
            shared_store_transactions: s(self.shared_store_transactions),
            flops: s(self.flops),
            warp_instructions: s(self.warp_instructions),
            syncs: s(self.syncs),
            divergent_branches: s(self.divergent_branches),
            point_updates: s(self.point_updates),
            launches: self.launches,
        }
    }
}

impl Add for Counters {
    type Output = Counters;
    fn add(mut self, rhs: Counters) -> Counters {
        self += rhs;
        self
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        self.gld_inst += rhs.gld_inst;
        self.gst_inst += rhs.gst_inst;
        self.gld_transactions += rhs.gld_transactions;
        self.gst_transactions += rhs.gst_transactions;
        self.l1_transactions += rhs.l1_transactions;
        self.gld_requested_bytes += rhs.gld_requested_bytes;
        self.l2_read_transactions += rhs.l2_read_transactions;
        self.l2_write_transactions += rhs.l2_write_transactions;
        self.dram_read_transactions += rhs.dram_read_transactions;
        self.dram_write_transactions += rhs.dram_write_transactions;
        self.shared_load_requests += rhs.shared_load_requests;
        self.shared_load_transactions += rhs.shared_load_transactions;
        self.shared_store_requests += rhs.shared_store_requests;
        self.shared_store_transactions += rhs.shared_store_transactions;
        self.flops += rhs.flops;
        self.warp_instructions += rhs.warp_instructions;
        self.syncs += rhs.syncs;
        self.divergent_branches += rhs.divergent_branches;
        self.point_updates += rhs.point_updates;
        self.launches += rhs.launches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_of_perfect_coalescing() {
        let c = Counters {
            gld_transactions: 10,
            gld_requested_bytes: 1280,
            ..Counters::default()
        };
        assert_eq!(c.gld_efficiency(), 1.0);
    }

    #[test]
    fn efficiency_of_strided_access() {
        // 32 lanes each in their own segment: 32 * 128 fetched, 128 used.
        let c = Counters {
            gld_transactions: 32,
            gld_requested_bytes: 128,
            ..Counters::default()
        };
        assert!((c.gld_efficiency() - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn conflict_replay_factor() {
        let c = Counters {
            shared_load_requests: 100,
            shared_load_transactions: 180,
            ..Counters::default()
        };
        assert!((c.shared_loads_per_request() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn add_and_scale() {
        let a = Counters {
            flops: 10,
            gld_inst: 4,
            ..Counters::default()
        };
        let b = a + a;
        assert_eq!(b.flops, 20);
        let s = b.scaled(2.5);
        assert_eq!(s.flops, 50);
        assert_eq!(s.gld_inst, 20);
    }
}
