//! Shared memory: per-block buffers with 32-bank conflict modeling.

use crate::counters::Counters;
use gpu_codegen::SharedBuf;

/// Shared-memory state of one thread block.
#[derive(Clone, Debug)]
pub struct SharedMem {
    bufs: Vec<Vec<f32>>,
    dims: Vec<Vec<usize>>,
    /// Word offset of each buffer within the shared address space.
    bases: Vec<usize>,
}

impl SharedMem {
    /// Allocates the buffers declared by a kernel.
    pub fn new(decls: &[SharedBuf]) -> SharedMem {
        let mut bases = Vec::new();
        let mut next = 0usize;
        for d in decls {
            bases.push(next);
            next += d.len();
        }
        SharedMem {
            bufs: decls.iter().map(|d| vec![0.0; d.len()]).collect(),
            dims: decls.iter().map(|d| d.dims.clone()).collect(),
            bases,
        }
    }

    /// Row-major word offset within buffer `buf`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices (a code-generation bug).
    pub fn offset(&self, buf: usize, idx: &[i64]) -> usize {
        let dims = &self.dims[buf];
        assert_eq!(idx.len(), dims.len(), "shared index arity");
        let mut off = 0usize;
        for (d, &i) in idx.iter().enumerate() {
            assert!(
                i >= 0 && (i as usize) < dims[d],
                "shared index {i} out of bounds for dim {d} (extent {})",
                dims[d]
            );
            off = off * dims[d] + i as usize;
        }
        off
    }

    /// Absolute word address (across all buffers) for bank analysis.
    pub fn word_address(&self, buf: usize, idx: &[i64]) -> usize {
        self.bases[buf] + self.offset(buf, idx)
    }

    /// Reads a value.
    pub fn read(&self, buf: usize, idx: &[i64]) -> f32 {
        self.bufs[buf][self.offset(buf, idx)]
    }

    /// Writes a value.
    pub fn write(&mut self, buf: usize, idx: &[i64], v: f32) {
        let off = self.offset(buf, idx);
        self.bufs[buf][off] = v;
    }
}

/// Computes the number of transactions (replays) a warp's shared access
/// needs: the maximum, over the 32 banks, of the number of *distinct words*
/// addressed in that bank. Identical words broadcast for free.
pub fn bank_transactions(word_addrs: &[usize]) -> u64 {
    // A warp has at most 32 lanes, so a quadratic first-occurrence scan
    // over a stack array beats per-bank heap sets.
    let mut distinct_per_bank = [0u64; 32];
    for (i, &w) in word_addrs.iter().enumerate() {
        // A repeated word broadcasts for free; count its first occurrence.
        if !word_addrs[..i].contains(&w) {
            distinct_per_bank[w % 32] += 1;
        }
    }
    distinct_per_bank.iter().copied().max().unwrap_or(0).max(1)
}

/// Charges a warp shared-memory load.
pub fn charge_shared_load(counters: &mut Counters, word_addrs: &[usize]) {
    if word_addrs.is_empty() {
        return;
    }
    counters.shared_load_requests += 1;
    counters.shared_load_transactions += bank_transactions(word_addrs);
}

/// Charges a warp shared-memory store.
pub fn charge_shared_store(counters: &mut Counters, word_addrs: &[usize]) {
    if word_addrs.is_empty() {
        return;
    }
    counters.shared_store_requests += 1;
    counters.shared_store_transactions += bank_transactions(word_addrs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_unit_stride() {
        let addrs: Vec<usize> = (0..32).collect();
        assert_eq!(bank_transactions(&addrs), 1);
    }

    #[test]
    fn broadcast_is_free() {
        let addrs = vec![7usize; 32];
        assert_eq!(bank_transactions(&addrs), 1);
    }

    #[test]
    fn stride_two_is_two_way_conflict() {
        let addrs: Vec<usize> = (0..32).map(|i| i * 2).collect();
        assert_eq!(bank_transactions(&addrs), 2);
    }

    #[test]
    fn stride_32_is_fully_serialized() {
        let addrs: Vec<usize> = (0..32).map(|i| i * 32).collect();
        assert_eq!(bank_transactions(&addrs), 32);
    }

    #[test]
    fn buffer_addressing_row_major() {
        let m = SharedMem::new(&[SharedBuf {
            name: "s".into(),
            dims: vec![4, 10],
        }]);
        assert_eq!(m.offset(0, &[0, 3]), 3);
        assert_eq!(m.offset(0, &[2, 0]), 20);
    }

    #[test]
    fn distinct_buffers_do_not_alias() {
        let mut m = SharedMem::new(&[
            SharedBuf {
                name: "a".into(),
                dims: vec![8],
            },
            SharedBuf {
                name: "b".into(),
                dims: vec![8],
            },
        ]);
        m.write(0, &[3], 1.0);
        m.write(1, &[3], 2.0);
        assert_eq!(m.read(0, &[3]), 1.0);
        assert_eq!(m.read(1, &[3]), 2.0);
        assert_ne!(m.word_address(0, &[3]), m.word_address(1, &[3]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_shared_access_panics() {
        let m = SharedMem::new(&[SharedBuf {
            name: "s".into(),
            dims: vec![4],
        }]);
        let _ = m.offset(0, &[4]);
    }
}
