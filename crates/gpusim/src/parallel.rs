//! Deterministic block-parallel plan execution.
//!
//! Blocks of one launch are independent by construction: the hybrid
//! schedule places concurrent thread blocks on distinct `S0` wavefront
//! tiles, and `hybrid_tiling::verify` proves (per schedule, exhaustively
//! on bounded domains) that no dependence crosses concurrent tiles — in
//! particular, blocks of one launch never write overlapping locations and
//! never read another block's same-launch writes. The parallel executor
//! exploits exactly that property:
//!
//! 1. workers on a [`std::thread`] pool pull block indices from a shared
//!    atomic counter and interpret each block against a **read-only
//!    snapshot** of global memory plus a private write overlay
//!    (`LoggedBackend`), accumulating per-block [`Counters`] locally;
//! 2. every access that would reach the shared L2 is appended to a
//!    per-block log instead of touching shared cache state;
//! 3. after all blocks of the launch finish, the main thread merges the
//!    per-block results **in ascending block order**: counters are summed
//!    (u64 addition — order-insensitive and exact), the L2 logs are
//!    replayed through the shared cache in the same order the sequential
//!    executor would have produced ([`crate::memory::replay_l2`]), and the
//!    write logs are applied to global memory while asserting that no two
//!    blocks wrote conflicting values to the same location.
//!
//! The result: grids *and* counters are bit-for-bit identical to
//! [`GpuSim::run_plan`] for any thread count, which the property tests in
//! `tests/parallel_equivalence.rs` check across random stencils, tile
//! sizes and pool widths. A plan that violates write-disjointness (a
//! scheduling bug, never a legal hybrid/classical plan) panics in the
//! merge instead of returning order-dependent data; under debug
//! assertions the merge additionally rejects cross-block
//! *read*/write overlap within a launch — the dependence the
//! write-conflict check alone cannot see (sequentially the reader might
//! have observed the writer's value, here it reads the launch-entry
//! snapshot) — so debug runs, including the property suite, enforce the
//! full independence contract.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `HYBRID_SIM_THREADS` environment variable.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use gpu_codegen::ir::LaunchPlan;

use crate::bytecode::{exec_block_compiled, interpreter_forced, CompiledPlan, ExecScratch};
use crate::counters::Counters;
use crate::exec::{exec_block, DirectBackend, GlobalBackend, GpuSim};
use crate::memory::{
    charge_warp_load_logged, charge_warp_store_logged, replay_l2, GlobalMem, L2Access, L2Cache,
};

/// A typed failure of the block-parallel executor.
///
/// [`GpuSim::try_run_plan_parallel_with`] returns these instead of
/// aborting the process, so a long-lived compile service can map a
/// schedule that violates concurrent-tile independence to a per-request
/// error. The panicking API ([`GpuSim::run_plan_parallel_with`]) remains
/// for direct callers that treat such plans as programming errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// Two blocks of one launch wrote different values to the same
    /// location — a violation of the §3.3.3 concurrent-tile independence
    /// that `hybrid_tiling::verify` checks at the schedule level.
    WriteConflict {
        /// Name of the launched kernel.
        kernel: String,
        /// First block observed writing the location.
        block_a: usize,
        /// Conflicting block.
        block_b: usize,
        /// Field written.
        field: u32,
        /// Time plane written.
        plane: u32,
        /// Plane-linear element offset.
        offset: usize,
    },
    /// A block read a location another block of the same launch wrote —
    /// a cross-tile dependence even without a write *conflict* (the
    /// sequential executor may have served a different value). Only
    /// detected under debug assertions, where read tracking is on.
    ReadWriteOverlap {
        /// Name of the launched kernel.
        kernel: String,
        /// The reading block.
        reader: usize,
        /// The writing block.
        writer: usize,
    },
    /// A kernel's shared-memory demand exceeds the device limit.
    SharedMemExceeded {
        /// Name of the launched kernel.
        kernel: String,
        /// Bytes the kernel needs.
        needed: u64,
        /// Bytes the device allows.
        limit: u64,
    },
    /// A worker thread panicked while executing a block — an
    /// out-of-bounds access or similar code-generation bug. Surfaced as
    /// a typed error so abort-free callers (the compile service, the
    /// fleet) survive a bad plan instead of tearing down the process;
    /// the panicking wrappers re-raise it.
    WorkerPanicked {
        /// Name of the launched kernel.
        kernel: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::WriteConflict {
                kernel,
                block_a,
                block_b,
                field,
                plane,
                offset,
            } => write!(
                f,
                "write race in launch of kernel {kernel}: blocks {block_a} and {block_b} \
                 wrote different values to field {field} plane {plane} offset {offset} — \
                 concurrent S0 tiles must be write-disjoint (verify the schedule with \
                 hybrid_tiling::verify)"
            ),
            ExecError::ReadWriteOverlap {
                kernel,
                reader,
                writer,
            } => write!(
                f,
                "read/write overlap in launch of kernel {kernel}: block {reader} read a \
                 location block {writer} wrote in the same launch — concurrent S0 tiles \
                 must be independent (verify the schedule with hybrid_tiling::verify)"
            ),
            ExecError::SharedMemExceeded {
                kernel,
                needed,
                limit,
            } => write!(
                f,
                "kernel {kernel} needs {needed} bytes of shared memory; the device \
                 allows {limit}"
            ),
            ExecError::WorkerPanicked { kernel, message } => write!(
                f,
                "simulator worker panicked in launch of kernel {kernel}: {message}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// One recorded global-memory write: plane-linear location plus value.
#[derive(Clone, Copy, Debug)]
struct WriteRec {
    field: u32,
    plane: u32,
    offset: usize,
    value: f32,
}

impl WriteRec {
    /// Packed location key (field/plane/offset) for overlay lookups and
    /// cross-block conflict detection. Offsets are far below 2^40 for any
    /// simulated grid.
    fn key(field: usize, plane: usize, offset: usize) -> u64 {
        debug_assert!(offset < 1 << 40, "grid offset exceeds key packing");
        ((field as u64) << 56) | ((plane as u64) << 40) | offset as u64
    }
}

/// Everything one block produced: its local counters (DRAM fields still
/// zero), its global writes in program order, and its L2-bound accesses in
/// program order.
struct BlockOutcome {
    counters: Counters,
    writes: Vec<WriteRec>,
    l2_log: Vec<L2Access>,
    /// Locations this block read from the launch-entry snapshot (i.e. not
    /// through its own overlay). Only tracked under debug assertions,
    /// where the merge uses it to flag cross-block read/write overlap —
    /// the violation the write-conflict assert alone cannot see.
    #[cfg(debug_assertions)]
    base_reads: std::collections::HashSet<u64>,
}

/// The worker-side backend: reads fall through a private overlay of this
/// block's own writes to the launch-entry memory snapshot; writes and
/// L2-bound traffic are logged for the ordered merge.
pub(crate) struct LoggedBackend<'a> {
    base: &'a GlobalMem,
    /// This block's own writes, newest value per location.
    overlay: HashMap<u64, f32>,
    writes: Vec<WriteRec>,
    l2_log: Vec<L2Access>,
    #[cfg(debug_assertions)]
    base_reads: std::collections::HashSet<u64>,
}

impl<'a> LoggedBackend<'a> {
    /// Builds a backend from pooled buffers: the overlay map keeps its
    /// capacity across blocks and launches; `writes`/`l2_log` are
    /// recycled outcome buffers (cleared by the pool). Allocation-free
    /// after the pools warm up.
    fn from_parts(
        base: &'a GlobalMem,
        overlay: HashMap<u64, f32>,
        writes: Vec<WriteRec>,
        l2_log: Vec<L2Access>,
    ) -> LoggedBackend<'a> {
        debug_assert!(overlay.is_empty() && writes.is_empty() && l2_log.is_empty());
        LoggedBackend {
            base,
            overlay,
            writes,
            l2_log,
            #[cfg(debug_assertions)]
            base_reads: std::collections::HashSet::new(),
        }
    }

    /// Splits the backend into the block's outcome (which travels to the
    /// merge) and the overlay map (cleared, returned to the worker's
    /// pool slot).
    fn into_parts(mut self, counters: Counters) -> (BlockOutcome, HashMap<u64, f32>) {
        self.overlay.clear();
        (
            BlockOutcome {
                counters,
                writes: self.writes,
                l2_log: self.l2_log,
                #[cfg(debug_assertions)]
                base_reads: self.base_reads,
            },
            self.overlay,
        )
    }
}

impl GlobalBackend for LoggedBackend<'_> {
    fn byte_address(&self, field: usize, plane: usize, idx: &[i64]) -> u64 {
        self.base.byte_address(field, plane, idx)
    }

    fn read(&mut self, field: usize, plane: usize, idx: &[i64]) -> f32 {
        let offset = self.base.flat_offset(field, plane, idx);
        self.read_flat(field, plane, offset)
    }

    fn write(&mut self, field: usize, plane: usize, idx: &[i64], v: f32) {
        let offset = self.base.flat_offset(field, plane, idx);
        self.write_flat(field, plane, offset, v);
    }

    fn byte_address_flat(&self, field: usize, plane: usize, offset: usize) -> u64 {
        self.base.byte_address_flat(field, plane, offset)
    }

    fn read_flat(&mut self, field: usize, plane: usize, offset: usize) -> f32 {
        let key = WriteRec::key(field, plane, offset);
        if !self.overlay.is_empty() {
            if let Some(&v) = self.overlay.get(&key) {
                return v;
            }
        }
        #[cfg(debug_assertions)]
        self.base_reads.insert(key);
        self.base.read_flat(field, plane, offset)
    }

    fn write_flat(&mut self, field: usize, plane: usize, offset: usize, v: f32) {
        self.overlay.insert(WriteRec::key(field, plane, offset), v);
        self.writes.push(WriteRec {
            field: field as u32,
            plane: plane as u32,
            offset,
            value: v,
        });
    }

    fn charge_load(&mut self, counters: &mut Counters, l1: &mut L2Cache, addrs: &[u64]) {
        charge_warp_load_logged(counters, l1, &mut self.l2_log, addrs);
    }

    fn charge_store(&mut self, counters: &mut Counters, addrs: &[u64]) {
        charge_warp_store_logged(counters, &mut self.l2_log, addrs);
    }
}

/// The worker-pool width used by [`GpuSim::run_plan_parallel`]: the
/// `HYBRID_SIM_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`]. `HYBRID_SIM_THREADS=0`
/// explicitly requests "auto" (the same fallback); see
/// [`resolve_sim_threads`], which `hybridc --threads` routes through so
/// the flag and the env var agree on that meaning of `0`.
pub fn sim_threads() -> usize {
    sim_threads_from(std::env::var("HYBRID_SIM_THREADS").ok().as_deref())
}

/// Resolves a requested worker count to an effective one: `0` means
/// **auto** — the machine's available parallelism (at least 1) — and any
/// positive value is used as-is. This is the single definition of what
/// "0 workers" means, shared by `HYBRID_SIM_THREADS=0` and
/// `hybridc --threads 0`.
pub fn resolve_sim_threads(requested: usize) -> usize {
    if requested == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    }
}

/// [`sim_threads`] with the override value injected: a positive integer
/// (whitespace tolerated) wins; `0` and anything unparsable resolve to
/// auto via [`resolve_sim_threads`].
fn sim_threads_from(override_value: Option<&str>) -> usize {
    let requested = override_value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    resolve_sim_threads(requested)
}

/// Per-worker reusable state: the compiled executor's slot arrays plus
/// the write-overlay map, pooled across blocks *and* launches.
#[derive(Default)]
struct WorkerSlot {
    scratch: ExecScratch,
    overlay: HashMap<u64, f32>,
}

/// Locks a pool mutex, tolerating poisoning: pools hold only recycled
/// scratch buffers (cleared before reuse), so a worker that panicked
/// while touching a pool cannot corrupt anything observable — and the
/// abort-free contract forbids propagating the poison panic.
fn lock_pool<T>(pool: &Mutex<Vec<T>>) -> std::sync::MutexGuard<'_, Vec<T>> {
    pool.lock().unwrap_or_else(|p| p.into_inner())
}

/// Renders a worker's panic payload for [`ExecError::WorkerPanicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl GpuSim {
    /// Runs the plan with block-level parallelism on [`sim_threads`]
    /// workers. Results — grids and counters — are bit-exact with
    /// [`GpuSim::run_plan`]; see the [module docs](crate::parallel) for
    /// the determinism argument.
    pub fn run_plan_parallel(&mut self, plan: &LaunchPlan) {
        self.run_plan_parallel_with(plan, sim_threads());
    }

    /// Like [`GpuSim::run_plan_parallel`] with an explicit worker count.
    /// `threads <= 1` falls back to the sequential executor (no logging
    /// overhead), which produces identical results by definition.
    ///
    /// # Panics
    ///
    /// Panics on any [`ExecError`] the non-panicking variant
    /// ([`GpuSim::try_run_plan_parallel_with`]) would return — shared
    /// memory over the device limit, cross-block write conflicts, and
    /// (under debug assertions) cross-block read/write overlap — as well
    /// as on out-of-bounds accesses (code-generation bugs).
    pub fn run_plan_parallel_with(&mut self, plan: &LaunchPlan, threads: usize) {
        if let Err(e) = self.try_run_plan_parallel_with(plan, threads) {
            panic!("{e}");
        }
    }

    /// Non-panicking [`GpuSim::run_plan_parallel`]: executes with
    /// [`sim_threads`] workers, surfacing independence violations as
    /// [`ExecError`]s.
    ///
    /// # Errors
    ///
    /// See [`GpuSim::try_run_plan_parallel_with`].
    pub fn try_run_plan_parallel(&mut self, plan: &LaunchPlan) -> Result<(), ExecError> {
        self.try_run_plan_parallel_with(plan, sim_threads())
    }

    /// Non-panicking [`GpuSim::run_plan_parallel_with`]: a plan that
    /// violates the concurrent-tile independence contract returns a typed
    /// [`ExecError`] instead of aborting the process, so a resident
    /// compile service can report it per request and keep serving.
    ///
    /// On `Err` the simulator state (grids, counters, L2) reflects a
    /// partially merged launch and must not be interpreted further —
    /// discard the simulator or treat the run as failed.
    ///
    /// # Errors
    ///
    /// [`ExecError::SharedMemExceeded`] when a kernel's shared demand is
    /// over the device limit; [`ExecError::WriteConflict`] when two blocks
    /// of one launch wrote different values to one location; under debug
    /// assertions additionally [`ExecError::ReadWriteOverlap`] when a
    /// block read a location a concurrent block wrote.
    pub fn try_run_plan_parallel_with(
        &mut self,
        plan: &LaunchPlan,
        threads: usize,
    ) -> Result<(), ExecError> {
        // Compile every kernel once per plan; all launches (and all
        // blocks) replay the compiled form. `HYBRID_SIM_INTERPRET`
        // forces the tree-walking interpreter for debugging.
        let compiled = if interpreter_forced() {
            None
        } else {
            Some(CompiledPlan::new(plan, &self.mem))
        };
        // Pools shared across every launch of the plan: per-worker slot
        // arrays and overlay maps, plus recycled outcome buffers (write
        // logs, L2 logs) that the merge hands back after each launch.
        let slot_pool: Mutex<Vec<WorkerSlot>> = Mutex::new(Vec::new());
        let out_pool: Mutex<Vec<(Vec<WriteRec>, Vec<L2Access>)>> = Mutex::new(Vec::new());
        for launch in &plan.launches {
            let kernel = &plan.kernels[launch.kernel];
            if kernel.shared_bytes() > self.device.shared_limit {
                return Err(ExecError::SharedMemExceeded {
                    kernel: kernel.name.clone(),
                    needed: kernel.shared_bytes() as u64,
                    limit: self.device.shared_limit as u64,
                });
            }
            self.counters.launches += 1;
            let n = launch.blocks;
            if n == 0 {
                continue;
            }
            let bc = compiled.as_ref().map(|cp| cp.kernel(launch.kernel));
            if threads <= 1 || n == 1 {
                // Sequential fallback — still through the compiled path
                // (single-core hosts get the speedup too), with the
                // direct backend so no logging overhead remains.
                match bc {
                    Some(bc) => {
                        let mut slot = lock_pool(&slot_pool).pop().unwrap_or_default();
                        for b in 0..n {
                            let mut backend = DirectBackend {
                                mem: &mut self.mem,
                                l2: &mut self.l2,
                            };
                            exec_block_compiled(
                                bc,
                                &launch.params,
                                b as i64,
                                &mut backend,
                                &mut self.counters,
                                &mut slot.scratch,
                            );
                        }
                        lock_pool(&slot_pool).push(slot);
                    }
                    None => {
                        for b in 0..n {
                            self.run_block(kernel, &launch.params, b as i64);
                        }
                    }
                }
                continue;
            }

            let workers = threads.min(n);
            let next = AtomicUsize::new(0);
            let mem = &self.mem;
            let params = &launch.params;
            let joined: Vec<Result<Vec<(usize, BlockOutcome)>, _>> = thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut slot = lock_pool(&slot_pool).pop().unwrap_or_default();
                            let mut done = Vec::new();
                            loop {
                                let b = next.fetch_add(1, Ordering::Relaxed);
                                if b >= n {
                                    break;
                                }
                                let (writes, l2_log) =
                                    lock_pool(&out_pool).pop().unwrap_or_default();
                                let overlay = std::mem::take(&mut slot.overlay);
                                let mut backend =
                                    LoggedBackend::from_parts(mem, overlay, writes, l2_log);
                                let mut counters = Counters::default();
                                match bc {
                                    Some(bc) => exec_block_compiled(
                                        bc,
                                        params,
                                        b as i64,
                                        &mut backend,
                                        &mut counters,
                                        &mut slot.scratch,
                                    ),
                                    None => exec_block(
                                        kernel,
                                        params,
                                        b as i64,
                                        &mut backend,
                                        &mut counters,
                                    ),
                                }
                                let (outcome, overlay) = backend.into_parts(counters);
                                slot.overlay = overlay;
                                done.push((b, outcome));
                            }
                            lock_pool(&slot_pool).push(slot);
                            done
                        })
                    })
                    .collect();
                // Join every worker before mapping panics, so no thread
                // outlives the error path.
                handles.into_iter().map(|h| h.join()).collect()
            });
            let mut results: Vec<(usize, BlockOutcome)> = Vec::with_capacity(n);
            let mut panicked = None;
            for r in joined {
                match r {
                    Ok(done) => results.extend(done),
                    Err(payload) => {
                        if panicked.is_none() {
                            panicked = Some(panic_message(payload));
                        }
                    }
                }
            }
            if let Some(message) = panicked {
                return Err(ExecError::WorkerPanicked {
                    kernel: kernel.name.clone(),
                    message,
                });
            }
            // Deterministic merge order regardless of worker scheduling.
            results.sort_unstable_by_key(|(b, _)| *b);

            let mut owners: HashMap<u64, (usize, u32)> = HashMap::new();
            for (b, outcome) in &results {
                self.counters += outcome.counters;
                replay_l2(&mut self.counters, &mut self.l2, &outcome.l2_log);
                for w in &outcome.writes {
                    let key = WriteRec::key(w.field as usize, w.plane as usize, w.offset);
                    let bits = w.value.to_bits();
                    if let Some(&(owner, prev_bits)) = owners.get(&key) {
                        if owner != *b && prev_bits != bits {
                            return Err(ExecError::WriteConflict {
                                kernel: kernel.name.clone(),
                                block_a: owner,
                                block_b: *b,
                                field: w.field,
                                plane: w.plane,
                                offset: w.offset,
                            });
                        }
                    }
                    owners.insert(key, (*b, bits));
                    self.mem
                        .write_flat(w.field as usize, w.plane as usize, w.offset, w.value);
                }
            }
            // Under debug assertions, also reject cross-block
            // read-after-write within the launch: block A reading a
            // location block B wrote is a dependence between concurrent
            // tiles even when no write *conflict* exists, and the
            // sequential executor may have served a different value.
            #[cfg(debug_assertions)]
            for (b, outcome) in &results {
                for key in &outcome.base_reads {
                    if let Some(&(owner, _)) = owners.get(key) {
                        if owner != *b {
                            return Err(ExecError::ReadWriteOverlap {
                                kernel: kernel.name.clone(),
                                reader: *b,
                                writer: owner,
                            });
                        }
                    }
                }
            }
            // Recycle the merged outcome buffers for the next launch.
            let mut op = lock_pool(&out_pool);
            for (_, mut outcome) in results {
                outcome.writes.clear();
                outcome.l2_log.clear();
                op.push((outcome.writes, outcome.l2_log));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use gpu_codegen::ir::{Cond, FExpr, IExpr, Kernel, Launch, Stmt};
    use stencil::Grid;

    /// `out[i] = in[i] * 2` over 8 blocks of 32 threads, with a second
    /// launch reading the first launch's output — exercises cross-launch
    /// visibility of merged writes.
    fn two_launch_plan() -> (LaunchPlan, Vec<Grid>) {
        let idx = IExpr::BlockIdx.scale(32).add(IExpr::ThreadIdx(0));
        let scale = |plane_in: i64, plane_out: i64, factor: f32| Kernel {
            name: format!("scale{plane_out}"),
            block_dim: [32, 1, 1],
            shared: vec![],
            n_vars: 0,
            n_regs: 1,
            n_params: 0,
            body: vec![
                Stmt::GlobalLoad {
                    dst: 0,
                    field: 0,
                    plane: IExpr::Const(plane_in),
                    index: vec![idx.clone()],
                },
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(plane_out),
                    index: vec![idx.clone()],
                    src: FExpr::Mul(Box::new(FExpr::Reg(0)), Box::new(FExpr::Const(factor))),
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![scale(0, 1, 2.0), scale(1, 0, 3.0)],
            launches: vec![
                Launch {
                    kernel: 0,
                    params: vec![],
                    blocks: 8,
                },
                Launch {
                    kernel: 1,
                    params: vec![],
                    blocks: 8,
                },
            ],
            description: "two-launch scale".into(),
        };
        (plan, vec![Grid::random(&[256], 11)])
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let (plan, init) = two_launch_plan();
        let mut seq = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
        seq.run_plan(&plan);
        for threads in [1, 2, 3, 8] {
            let mut par = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
            par.run_plan_parallel_with(&plan, threads);
            assert_eq!(par.counters(), seq.counters(), "threads = {threads}");
            for plane in 0..2 {
                assert!(
                    par.plane(0, plane).bit_equal(seq.plane(0, plane)),
                    "plane {plane} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn block_reads_its_own_writes() {
        // Within one launch a block stores then reloads the same location;
        // the overlay must serve the fresh value.
        let idx = IExpr::BlockIdx.scale(32).add(IExpr::ThreadIdx(0));
        let kernel = Kernel {
            name: "rmw".into(),
            block_dim: [32, 1, 1],
            shared: vec![],
            n_vars: 0,
            n_regs: 1,
            n_params: 0,
            body: vec![
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(1),
                    index: vec![idx.clone()],
                    src: FExpr::Const(5.0),
                },
                Stmt::GlobalLoad {
                    dst: 0,
                    field: 0,
                    plane: IExpr::Const(1),
                    index: vec![idx.clone()],
                },
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(0),
                    index: vec![idx],
                    src: FExpr::Add(Box::new(FExpr::Reg(0)), Box::new(FExpr::Const(1.0))),
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![kernel],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 4,
            }],
            description: "read-own-write".into(),
        };
        let init = vec![Grid::zeros(&[128])];
        let mut par = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
        par.run_plan_parallel_with(&plan, 4);
        for i in 0..128 {
            assert_eq!(par.plane(0, 0).get(&[i]), 6.0);
            assert_eq!(par.plane(0, 1).get(&[i]), 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "write race")]
    fn conflicting_cross_block_writes_panic() {
        // Both blocks of one launch store to location 0, with a value that
        // depends on BlockIdx: blocks 0 and 1 disagree, which the merge
        // must reject instead of returning order-dependent data.
        let k = Kernel {
            name: "race".into(),
            block_dim: [32, 1, 1],
            shared: vec![],
            n_vars: 1,
            n_regs: 1,
            n_params: 0,
            body: vec![
                Stmt::SetVar {
                    var: 0,
                    value: IExpr::BlockIdx,
                },
                Stmt::If {
                    cond: Cond::Eq(IExpr::ThreadIdx(0), IExpr::Const(0)),
                    then_: vec![Stmt::If {
                        cond: Cond::Eq(IExpr::Var(0), IExpr::Const(0)),
                        then_: vec![Stmt::GlobalStore {
                            field: 0,
                            plane: IExpr::Const(0),
                            index: vec![IExpr::Const(0)],
                            src: FExpr::Const(1.0),
                        }],
                        else_: vec![Stmt::GlobalStore {
                            field: 0,
                            plane: IExpr::Const(0),
                            index: vec![IExpr::Const(0)],
                            src: FExpr::Const(2.0),
                        }],
                    }],
                    else_: vec![],
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![k],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 2,
            }],
            description: "write race".into(),
        };
        let init = vec![Grid::zeros(&[64])];
        let mut par = GpuSim::new(DeviceConfig::gtx470(), &init, 1);
        par.run_plan_parallel_with(&plan, 2);
    }

    #[test]
    fn try_run_reports_write_conflicts_without_aborting() {
        // Same racy plan as the should_panic test above, through the
        // non-panicking API: the conflict surfaces as a typed error the
        // compile service can report per request.
        let k = Kernel {
            name: "race".into(),
            block_dim: [32, 1, 1],
            shared: vec![],
            n_vars: 1,
            n_regs: 1,
            n_params: 0,
            body: vec![
                Stmt::SetVar {
                    var: 0,
                    value: IExpr::BlockIdx,
                },
                Stmt::If {
                    cond: Cond::Eq(IExpr::ThreadIdx(0), IExpr::Const(0)),
                    then_: vec![Stmt::If {
                        cond: Cond::Eq(IExpr::Var(0), IExpr::Const(0)),
                        then_: vec![Stmt::GlobalStore {
                            field: 0,
                            plane: IExpr::Const(0),
                            index: vec![IExpr::Const(0)],
                            src: FExpr::Const(1.0),
                        }],
                        else_: vec![Stmt::GlobalStore {
                            field: 0,
                            plane: IExpr::Const(0),
                            index: vec![IExpr::Const(0)],
                            src: FExpr::Const(2.0),
                        }],
                    }],
                    else_: vec![],
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![k],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 2,
            }],
            description: "write race".into(),
        };
        let init = vec![Grid::zeros(&[64])];
        let mut par = GpuSim::new(DeviceConfig::gtx470(), &init, 1);
        let err = par.try_run_plan_parallel_with(&plan, 2).unwrap_err();
        match err {
            ExecError::WriteConflict {
                ref kernel,
                block_a,
                block_b,
                field,
                plane,
                offset,
            } => {
                assert_eq!(kernel, "race");
                assert_eq!((block_a, block_b), (0, 1));
                assert_eq!((field, plane, offset), (0, 0, 0));
            }
            other => panic!("expected WriteConflict, got {other:?}"),
        }
        assert!(err.to_string().contains("write race"));
    }

    #[test]
    fn try_run_matches_sequential_on_clean_plans() {
        let (plan, init) = two_launch_plan();
        let mut seq = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
        seq.run_plan(&plan);
        let mut par = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
        par.try_run_plan_parallel_with(&plan, 4).unwrap();
        assert_eq!(par.counters(), seq.counters());
        for plane in 0..2 {
            assert!(par.plane(0, plane).bit_equal(seq.plane(0, plane)));
        }
    }

    #[test]
    fn try_run_rejects_oversized_shared_demand() {
        let k = Kernel {
            name: "huge".into(),
            block_dim: [32, 1, 1],
            shared: vec![gpu_codegen::ir::SharedBuf {
                name: "s".into(),
                dims: vec![1 << 20],
            }],
            n_vars: 0,
            n_regs: 1,
            n_params: 0,
            body: vec![],
        };
        let plan = LaunchPlan {
            kernels: vec![k],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 1,
            }],
            description: "oversized shared".into(),
        };
        let mut sim = GpuSim::new(DeviceConfig::gtx470(), &[Grid::zeros(&[32])], 1);
        assert!(matches!(
            sim.try_run_plan_parallel_with(&plan, 2),
            Err(ExecError::SharedMemExceeded { .. })
        ));
    }

    /// A kernel whose single store runs off the end of the grid — the
    /// injected panic for the worker-panic regression tests.
    fn oob_plan() -> LaunchPlan {
        let k = Kernel {
            name: "oob".into(),
            block_dim: [32, 1, 1],
            shared: vec![],
            n_vars: 0,
            n_regs: 1,
            n_params: 0,
            body: vec![Stmt::GlobalStore {
                field: 0,
                plane: IExpr::Const(0),
                index: vec![IExpr::ThreadIdx(0).offset(1 << 30)],
                src: FExpr::Const(1.0),
            }],
        };
        LaunchPlan {
            kernels: vec![k],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 2,
            }],
            description: "oob".into(),
        }
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error() {
        // Two blocks on two workers, so the parallel path (not the
        // sequential fallback) executes the panicking kernel: the panic
        // must come back as ExecError::WorkerPanicked, not abort the
        // process via a join().expect().
        let plan = oob_plan();
        let mut sim = GpuSim::new(DeviceConfig::gtx470(), &[Grid::zeros(&[64])], 1);
        let err = sim.try_run_plan_parallel_with(&plan, 2).unwrap_err();
        match err {
            ExecError::WorkerPanicked {
                ref kernel,
                ref message,
            } => {
                assert_eq!(kernel, "oob");
                assert!(
                    message.contains("out of bounds"),
                    "payload should carry the original panic text, got: {message}"
                );
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert!(err.to_string().contains("worker panicked"));
        // The simulator object itself must remain usable for a fresh,
        // clean plan (the per-request contract of the compile service).
        let (clean, init) = two_launch_plan();
        let mut fresh = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
        fresh.try_run_plan_parallel_with(&clean, 2).unwrap();
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn panicking_wrapper_still_panics_on_worker_panic() {
        let plan = oob_plan();
        let mut sim = GpuSim::new(DeviceConfig::gtx470(), &[Grid::zeros(&[64])], 1);
        sim.run_plan_parallel_with(&plan, 2);
    }

    #[test]
    fn resolve_zero_threads_means_auto() {
        // `0` is "auto" for both the env var and `hybridc --threads`;
        // this is the single shared definition.
        assert!(resolve_sim_threads(0) >= 1);
        assert_eq!(
            resolve_sim_threads(0),
            thread::available_parallelism().map_or(1, |n| n.get())
        );
        assert_eq!(resolve_sim_threads(1), 1);
        assert_eq!(resolve_sim_threads(7), 7);
        // The env-var path routes through the same resolution.
        assert_eq!(sim_threads_from(Some("0")), resolve_sim_threads(0));
        assert_eq!(sim_threads_from(Some("garbage")), resolve_sim_threads(0));
    }

    #[test]
    fn sim_threads_env_override() {
        // The parsing is tested through injection — mutating the real
        // process environment would race libstd's own getenv calls in
        // concurrently running tests.
        assert_eq!(sim_threads_from(Some(" 6 ")), 6, "override, whitespace ok");
        assert_eq!(sim_threads_from(Some("1")), 1);
        assert!(
            sim_threads_from(Some("0")) >= 1,
            "non-positive override falls back"
        );
        assert!(
            sim_threads_from(Some("not-a-number")) >= 1,
            "garbage override falls back"
        );
        assert!(sim_threads_from(None) >= 1, "fallback must be positive");
        assert!(sim_threads() >= 1);
    }
}
