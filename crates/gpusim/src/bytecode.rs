//! The compiled-bytecode block executor: specialize once, run flat.
//!
//! The interpreter in [`crate::exec`] re-walks every `IExpr`/`FExpr` tree
//! for every lane of every statement execution — a pointer chase per node
//! plus a heap-allocated index `Vec` per lane per memory access. For
//! simulated tuning that tree walk *is* the hot path: a tile-size sweep
//! interprets the same few kernels thousands of times. This module
//! removes it by compiling each [`Kernel`] once into a flat bytecode
//! that the executor then replays with branch-predictable linear loops:
//!
//! * expression trees become linear op streams over **slot arrays**
//!   (three-address code, no recursion, no boxes);
//! * multi-dimensional global/shared indices are folded into **flat
//!   row-major offsets** against the strides of the bound memory, so the
//!   executor uses [`Grid::get_flat`](stencil::Grid::get_flat)-style
//!   access instead of re-deriving the offset from an index vector
//!   (twice — once for the byte address, once for the data) per lane;
//! * per-warp address scratch, divergence masks, shared memory, and the
//!   slot arrays live in a reusable [`ExecScratch`] pooled across blocks
//!   and launches instead of being reallocated per block.
//!
//! # Op format
//!
//! Compilation classifies every value by *rank*, and lowers it to the
//! cheapest matching storage:
//!
//! * **immediate** — a compile-time constant, folded into the consuming
//!   op ([`Val::SImm`]);
//! * **scalar** — uniform across lanes of a block: launch parameters,
//!   `BlockIdx`, and integer vars only ever assigned uniform values
//!   outside divergent control flow. Scalars occupy one `i64` cell
//!   ([`Val::SSlot`]) and are computed once per evaluation site by
//!   [`SOp`]s — or once per *block* when they do not depend on loop
//!   variables (the hoisted preamble);
//! * **vector** — lane-dependent: `ThreadIdx`, `f32` registers, and
//!   anything derived from them. Vectors occupy `n_threads` consecutive
//!   cells ([`Val::VSlot`]) and are computed by [`VOp`]s/[`FOp`]s that
//!   loop over the active lanes of the current mask.
//!
//! Slot layout: scalar slots are `[params.., block, scalar vars..,
//! temps..]`; vector `i64` slots are `[tid.x, tid.y, tid.z, vector
//! vars.., temps..]`; `f32` slots are `[registers.., temps..]`. Var and
//! register slots are zeroed per block (matching the interpreter);
//! temporaries are written before read by construction.
//!
//! Statements ([`BcStmt`]) mirror the source [`Stmt`]s — control flow
//! keeps its tree shape, which is cold — but every expression they carry
//! is a pre-lowered program, and every memory access is flat.
//!
//! # Equivalence contract
//!
//! The compiled executor is **bit-exact** with the interpreter: same
//! grids, same [`Counters`] — including warp instructions, divergence
//! events, coalescing transactions and bank conflicts — for any kernel
//! the interpreter accepts. `tests/parallel_equivalence.rs` property-
//! tests this against `run_plan` across random stencils, tile sizes and
//! shared-memory strategies. [`GpuSim::run_plan`] remains the oracle and
//! never uses this path; the parallel executor and everything built on
//! it (the autotune scorer, the fleet) use it by default. Set the
//! `HYBRID_SIM_INTERPRET` environment variable to any non-empty value to
//! force the interpreter everywhere for debugging.

use gpu_codegen::ir::{Cond, FExpr, IExpr, Kernel, LaunchPlan, Stmt};

use crate::counters::Counters;
use crate::exec::{GlobalBackend, GpuSim};
use crate::memory::{GlobalMem, L2Cache};
use crate::shared::{charge_shared_load, charge_shared_store};

/// A compiled operand: where a value lives.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Val {
    /// Compile-time integer constant.
    SImm(i64),
    /// Scalar (block-uniform) slot.
    SSlot(u16),
    /// Vector (per-lane) slot.
    VSlot(u16),
}

/// A scalar op: evaluated once (not per lane) into a scalar slot.
///
/// Operands are [`Val::SImm`] or [`Val::SSlot`]; a scalar op never reads
/// a vector slot.
#[derive(Clone, Debug)]
pub enum SOp {
    /// `dst = a + b`.
    Add(u16, Val, Val),
    /// `dst = a - b`.
    Sub(u16, Val, Val),
    /// `dst = a * b`.
    Mul(u16, Val, Val),
    /// `dst = a.div_euclid(k)`.
    FloorDiv(u16, Val, i64),
    /// `dst = a.rem_euclid(k)`.
    Mod(u16, Val, i64),
    /// `dst = min(a, b)`.
    Min(u16, Val, Val),
    /// `dst = max(a, b)`.
    Max(u16, Val, Val),
    /// `dst = (a <= b) as i64`.
    Le(u16, Val, Val),
    /// `dst = (a < b) as i64`.
    Lt(u16, Val, Val),
    /// `dst = (a == b) as i64`.
    Eq(u16, Val, Val),
    /// `dst = a & b` (boolean conjunction over 0/1 values).
    And(u16, Val, Val),
    /// `dst = a | b` (boolean disjunction over 0/1 values).
    Or(u16, Val, Val),
    /// `dst = 1 - a` (boolean negation over 0/1 values).
    Not(u16, Val),
}

/// A vector integer op: evaluated for every active lane of the current
/// mask into a vector slot. Operands may be scalar (resolved once before
/// the lane loop) or vector.
#[derive(Clone, Debug)]
pub enum VOp {
    /// `dst[l] = src` for active lanes (scalar/immediate broadcast or
    /// vector copy — used when a var assignment is a bare operand).
    Copy(u16, Val),
    /// `dst[l] = a[l] + b[l]`.
    Add(u16, Val, Val),
    /// `dst[l] = a[l] - b[l]`.
    Sub(u16, Val, Val),
    /// `dst[l] = a[l] * b[l]`.
    Mul(u16, Val, Val),
    /// `dst[l] = a[l].div_euclid(k)`.
    FloorDiv(u16, Val, i64),
    /// `dst[l] = a[l].rem_euclid(k)`.
    Mod(u16, Val, i64),
    /// `dst[l] = min(a[l], b[l])`.
    Min(u16, Val, Val),
    /// `dst[l] = max(a[l], b[l])`.
    Max(u16, Val, Val),
    /// `dst[l] = (a[l] <= b[l]) as i64`.
    Le(u16, Val, Val),
    /// `dst[l] = (a[l] < b[l]) as i64`.
    Lt(u16, Val, Val),
    /// `dst[l] = (a[l] == b[l]) as i64`.
    Eq(u16, Val, Val),
    /// `dst[l] = a[l] & b[l]` (boolean over 0/1).
    And(u16, Val, Val),
    /// `dst[l] = a[l] | b[l]` (boolean over 0/1).
    Or(u16, Val, Val),
    /// `dst[l] = 1 - a[l]` (boolean negation over 0/1).
    Not(u16, Val),
}

/// An `f32` operand: an immediate or an `f32` vector slot.
#[derive(Clone, Copy, Debug)]
pub enum FVal {
    /// Compile-time `f32` constant.
    Imm(f32),
    /// Per-lane `f32` slot (registers first, then temporaries).
    Slot(u16),
}

/// A vector `f32` op: evaluated for every active lane.
#[derive(Clone, Debug)]
pub enum FOp {
    /// `dst[l] = src` (broadcast or copy).
    Copy(u16, FVal),
    /// `dst[l] = a[l] + b[l]`.
    Add(u16, FVal, FVal),
    /// `dst[l] = a[l] - b[l]`.
    Sub(u16, FVal, FVal),
    /// `dst[l] = a[l] * b[l]`.
    Mul(u16, FVal, FVal),
    /// `dst[l] = a[l].sqrt()`.
    Sqrt(u16, FVal),
}

/// The ops one evaluation site needs, in execution order: scalar ops
/// first (they never read vectors), then vector ops.
#[derive(Clone, Default, Debug)]
pub struct Prog {
    /// Scalar ops, evaluated once per site execution.
    pub sops: Vec<SOp>,
    /// Vector ops, evaluated per active lane.
    pub vops: Vec<VOp>,
}

/// A compiled flat memory address: per-dimension index operands plus the
/// extents/strides of the target array, folded to a bounds-checked
/// row-major offset at execution time.
#[derive(Clone, Debug)]
pub struct FlatIndex {
    /// One operand per dimension.
    pub idx: Vec<Val>,
    /// Extents per dimension (for bounds checks).
    pub dims: Vec<i64>,
    /// Row-major strides per dimension.
    pub strides: Vec<i64>,
    /// Constant word offset added after the strided sum (shared-memory
    /// buffer base within the block's shared address space; 0 for
    /// global).
    pub base: i64,
}

impl FlatIndex {
    /// The flat offset for one lane, given resolved per-dimension index
    /// values. Panics on out-of-bounds exactly where the interpreter
    /// would (an OOB access is a code-generation bug).
    #[inline]
    fn offset(&self, at: impl Fn(Val) -> i64) -> usize {
        let mut off = self.base;
        for d in 0..self.idx.len() {
            let i = at(self.idx[d]);
            assert!(
                i >= 0 && i < self.dims[d],
                "compiled index {i} out of bounds for dim {d} (extent {})",
                self.dims[d]
            );
            off += self.strides[d] * i;
        }
        off as usize
    }
}

/// A compiled statement. Control flow keeps its (cold) tree shape; all
/// expressions are pre-lowered [`Prog`]s with [`Val`] results.
#[derive(Clone, Debug)]
pub enum BcStmt {
    /// Scalar var assignment (uniform value, non-divergent context).
    SetVarS {
        /// Value program.
        prog: Prog,
        /// Value operand.
        value: Val,
        /// Destination scalar slot.
        dst: u16,
    },
    /// Vector var assignment (masked, per lane).
    SetVarV {
        /// Value program; its final op targets the var's vector slot.
        prog: Prog,
    },
    /// `for (var = lo; var < hi; var += step)` with uniform bounds.
    For {
        /// Bounds program.
        prog: Prog,
        /// Lower bound operand.
        lo: Val,
        /// Upper bound operand.
        hi: Val,
        /// Positive step.
        step: i64,
        /// The loop variable's slot (scalar or vector).
        var: Val,
        /// Loop body.
        body: Vec<BcStmt>,
    },
    /// Conditional with a block-uniform condition: no mask is built and
    /// no divergence can occur.
    IfUniform {
        /// Condition program (scalar).
        prog: Prog,
        /// Condition operand (0/1).
        cond: Val,
        /// Taken branch.
        then_: Vec<BcStmt>,
        /// Else branch.
        else_: Vec<BcStmt>,
    },
    /// Conditional with a lane-dependent condition: splits the mask and
    /// counts per-warp divergence exactly as the interpreter does.
    IfLane {
        /// Condition program (vector).
        prog: Prog,
        /// Condition operand (0/1 per lane).
        cond: Val,
        /// Taken branch.
        then_: Vec<BcStmt>,
        /// Else branch.
        else_: Vec<BcStmt>,
    },
    /// `reg[dst] = global[field][plane][flat]` with coalescing charges.
    GlobalLoad {
        /// Index/plane program.
        prog: Prog,
        /// Destination register slot.
        dst: u16,
        /// Field identifier.
        field: u32,
        /// Time-plane operand.
        plane: Val,
        /// Flat spatial address.
        flat: FlatIndex,
    },
    /// `global[field][plane][flat] = src`.
    GlobalStore {
        /// Index/plane/value program.
        prog: Prog,
        /// Field identifier.
        field: u32,
        /// Time-plane operand.
        plane: Val,
        /// Flat spatial address.
        flat: FlatIndex,
        /// Value ops (evaluated per active lane before the warp loop).
        fops: Vec<FOp>,
        /// Value operand.
        src: FVal,
        /// FLOP weight of the source expression, charged per lane.
        flops: u64,
    },
    /// `reg[dst] = shared[flat]` with bank-conflict charges.
    SharedLoad {
        /// Index program.
        prog: Prog,
        /// Destination register slot.
        dst: u16,
        /// Flat word address within the block's shared space.
        flat: FlatIndex,
    },
    /// `shared[flat] = src`.
    SharedStore {
        /// Index/value program.
        prog: Prog,
        /// Flat word address within the block's shared space.
        flat: FlatIndex,
        /// Value ops.
        fops: Vec<FOp>,
        /// Value operand.
        src: FVal,
        /// FLOP weight of the source expression, charged per lane.
        flops: u64,
    },
    /// `reg[dst] = expr`, charging `flops` per active lane.
    Compute {
        /// Value ops; the final op targets the destination register.
        fops: Vec<FOp>,
        /// FLOP weight charged per active lane.
        flops: u64,
    },
    /// `__syncthreads()`.
    Sync,
}

/// One kernel compiled against the shape of a [`GlobalMem`].
///
/// The compilation is valid for any launch of the kernel on memory with
/// the same per-field extents (strides are baked into the flat
/// addresses).
#[derive(Clone, Debug)]
pub struct BcKernel {
    body: Vec<BcStmt>,
    /// Scalar ops depending only on params/block: run once per block.
    preamble: Vec<SOp>,
    n_threads: usize,
    n_params: usize,
    n_sslots: usize,
    n_vslots: usize,
    n_fslots: usize,
    /// Vector-var slots to zero per block (after the 3 tid slots).
    vector_var_slots: std::ops::Range<usize>,
    n_regs: usize,
    shared_words: usize,
    block_dim: [usize; 3],
}

/// A whole launch plan compiled kernel-by-kernel; index with the
/// launch's kernel id.
#[derive(Clone, Debug)]
pub struct CompiledPlan {
    kernels: Vec<BcKernel>,
}

impl CompiledPlan {
    /// Compiles every kernel of `plan` against the shape of `mem`.
    pub(crate) fn new(plan: &LaunchPlan, mem: &GlobalMem) -> CompiledPlan {
        CompiledPlan {
            kernels: plan
                .kernels
                .iter()
                .map(|k| compile_kernel(k, mem))
                .collect(),
        }
    }

    /// The compiled form of kernel `i`.
    pub(crate) fn kernel(&self, i: usize) -> &BcKernel {
        &self.kernels[i]
    }
}

/// True when the `HYBRID_SIM_INTERPRET` environment variable forces the
/// tree-walking interpreter onto paths that would otherwise use the
/// compiled executor (a debugging aid; see the module docs).
pub fn interpreter_forced() -> bool {
    std::env::var_os("HYBRID_SIM_INTERPRET").is_some_and(|v| !v.is_empty())
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

/// How a kernel var is stored: scalar slot when every assignment is
/// uniform and outside divergent control flow, vector slot otherwise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VarStorage {
    Scalar(u16),
    Vector(u16),
}

struct Compiler<'a> {
    kernel: &'a Kernel,
    mem: &'a GlobalMem,
    vars: Vec<VarStorage>,
    n_sslots: usize,
    n_vslots: usize,
    n_fslots: usize,
    preamble: Vec<SOp>,
    /// Scalar slots whose value is block-uniform (computable in the
    /// preamble): params, block, and ops over them.
    hoistable: Vec<bool>,
    /// Shared-buffer word bases (cumulative, matching `SharedMem`).
    shared_bases: Vec<i64>,
}

/// Decides which vars can live in scalar slots: every assignment must be
/// outside divergent control flow (`If`) and its value must be uniform —
/// i.e. free of `ThreadIdx` and of vars already known to be vector.
/// Iterates to a fixpoint because uniformity depends on other vars.
fn classify_vars(kernel: &Kernel) -> Vec<bool> {
    let mut scalar = vec![true; kernel.n_vars];
    loop {
        let mut changed = false;
        fn walk(stmts: &[Stmt], divergent: bool, scalar: &mut [bool], changed: &mut bool) {
            for s in stmts {
                match s {
                    Stmt::SetVar { var, value }
                        if scalar[*var] && (divergent || !uniform_iexpr(value, scalar)) =>
                    {
                        scalar[*var] = false;
                        *changed = true;
                    }
                    Stmt::For { var, body, .. } => {
                        // The loop value itself is uniform; only the
                        // context matters.
                        if scalar[*var] && divergent {
                            scalar[*var] = false;
                            *changed = true;
                        }
                        walk(body, divergent, scalar, changed);
                    }
                    Stmt::If { then_, else_, .. } => {
                        walk(then_, true, scalar, changed);
                        walk(else_, true, scalar, changed);
                    }
                    _ => {}
                }
            }
        }
        walk(&kernel.body, false, &mut scalar, &mut changed);
        if !changed {
            return scalar;
        }
    }
}

/// True when the expression is lane-independent given the current var
/// classification.
fn uniform_iexpr(e: &IExpr, scalar: &[bool]) -> bool {
    match e {
        IExpr::Const(_) | IExpr::Param(_) | IExpr::BlockIdx => true,
        IExpr::ThreadIdx(_) => false,
        IExpr::Var(v) => scalar[*v],
        IExpr::Add(a, b) | IExpr::Sub(a, b) | IExpr::Mul(a, b) => {
            uniform_iexpr(a, scalar) && uniform_iexpr(b, scalar)
        }
        IExpr::FloorDiv(a, _) | IExpr::Mod(a, _) => uniform_iexpr(a, scalar),
        IExpr::Min(a, b) | IExpr::Max(a, b) => uniform_iexpr(a, scalar) && uniform_iexpr(b, scalar),
    }
}

impl<'a> Compiler<'a> {
    fn new(kernel: &'a Kernel, mem: &'a GlobalMem) -> Compiler<'a> {
        let scalar = classify_vars(kernel);
        // Scalar slots: [params.., block, scalar vars.., temps..].
        let mut n_sslots = kernel.n_params + 1;
        // Vector slots: [tid.x, tid.y, tid.z, vector vars.., temps..].
        let mut n_vslots = 3;
        let vars = scalar
            .iter()
            .map(|&s| {
                if s {
                    let slot = VarStorage::Scalar(n_sslots as u16);
                    n_sslots += 1;
                    slot
                } else {
                    let slot = VarStorage::Vector(n_vslots as u16);
                    n_vslots += 1;
                    slot
                }
            })
            .collect();
        let mut shared_bases = Vec::new();
        let mut next = 0i64;
        for b in &kernel.shared {
            shared_bases.push(next);
            next += b.len() as i64;
        }
        // Only params and the block index are known at preamble time;
        // scalar *var* slots are assigned by the body at runtime, so ops
        // reading them must stay at their site.
        let mut hoistable = vec![false; n_sslots];
        for h in hoistable.iter_mut().take(kernel.n_params + 1) {
            *h = true;
        }
        Compiler {
            kernel,
            mem,
            vars,
            n_sslots,
            n_vslots,
            n_fslots: kernel.n_regs,
            preamble: Vec::new(),
            hoistable,
            shared_bases,
        }
    }

    fn sslot(&mut self, hoisted: bool) -> u16 {
        let s = self.n_sslots;
        self.n_sslots += 1;
        self.hoistable.push(hoisted);
        s as u16
    }

    fn vslot(&mut self) -> u16 {
        let v = self.n_vslots;
        self.n_vslots += 1;
        v as u16
    }

    fn fslot(&mut self) -> u16 {
        let f = self.n_fslots;
        self.n_fslots += 1;
        f as u16
    }

    fn is_hoistable(&self, v: Val) -> bool {
        match v {
            Val::SImm(_) => true,
            Val::SSlot(s) => self.hoistable[s as usize],
            Val::VSlot(_) => false,
        }
    }

    /// Emits a scalar op: into the per-block preamble when every operand
    /// is block-uniform, into the site program otherwise.
    fn emit_s(&mut self, prog: &mut Prog, hoisted: bool, op: SOp) {
        if hoisted {
            self.preamble.push(op);
        } else {
            prog.sops.push(op);
        }
    }

    /// Lowers an integer expression, returning its operand.
    fn iexpr(&mut self, e: &IExpr, prog: &mut Prog) -> Val {
        match e {
            IExpr::Const(c) => Val::SImm(*c),
            IExpr::Param(p) => Val::SSlot(*p as u16),
            IExpr::BlockIdx => Val::SSlot(self.kernel.n_params as u16),
            IExpr::ThreadIdx(d) => Val::VSlot(*d as u16),
            IExpr::Var(v) => match self.vars[*v] {
                VarStorage::Scalar(s) => Val::SSlot(s),
                VarStorage::Vector(s) => Val::VSlot(s),
            },
            IExpr::Add(a, b) => self.ibin(a, b, prog, Ibin::Add),
            IExpr::Sub(a, b) => self.ibin(a, b, prog, Ibin::Sub),
            IExpr::Mul(a, b) => self.ibin(a, b, prog, Ibin::Mul),
            IExpr::Min(a, b) => self.ibin(a, b, prog, Ibin::Min),
            IExpr::Max(a, b) => self.ibin(a, b, prog, Ibin::Max),
            IExpr::FloorDiv(a, k) => {
                let a = self.iexpr(a, prog);
                match a {
                    Val::SImm(c) => Val::SImm(c.div_euclid(*k)),
                    Val::VSlot(_) => {
                        let dst = self.vslot();
                        prog.vops.push(VOp::FloorDiv(dst, a, *k));
                        Val::VSlot(dst)
                    }
                    _ => {
                        let hoisted = self.is_hoistable(a);
                        let dst = self.sslot(hoisted);
                        self.emit_s(prog, hoisted, SOp::FloorDiv(dst, a, *k));
                        Val::SSlot(dst)
                    }
                }
            }
            IExpr::Mod(a, k) => {
                let a = self.iexpr(a, prog);
                match a {
                    Val::SImm(c) => Val::SImm(c.rem_euclid(*k)),
                    Val::VSlot(_) => {
                        let dst = self.vslot();
                        prog.vops.push(VOp::Mod(dst, a, *k));
                        Val::VSlot(dst)
                    }
                    _ => {
                        let hoisted = self.is_hoistable(a);
                        let dst = self.sslot(hoisted);
                        self.emit_s(prog, hoisted, SOp::Mod(dst, a, *k));
                        Val::SSlot(dst)
                    }
                }
            }
        }
    }

    fn ibin(&mut self, a: &IExpr, b: &IExpr, prog: &mut Prog, kind: Ibin) -> Val {
        let a = self.iexpr(a, prog);
        let b = self.iexpr(b, prog);
        if let (Val::SImm(x), Val::SImm(y)) = (a, b) {
            return Val::SImm(match kind {
                Ibin::Add => x + y,
                Ibin::Sub => x - y,
                Ibin::Mul => x * y,
                Ibin::Min => x.min(y),
                Ibin::Max => x.max(y),
                Ibin::Le => (x <= y) as i64,
                Ibin::Lt => (x < y) as i64,
                Ibin::Eq => (x == y) as i64,
                Ibin::And => x & y,
                Ibin::Or => x | y,
            });
        }
        if matches!(a, Val::VSlot(_)) || matches!(b, Val::VSlot(_)) {
            let dst = self.vslot();
            prog.vops.push(match kind {
                Ibin::Add => VOp::Add(dst, a, b),
                Ibin::Sub => VOp::Sub(dst, a, b),
                Ibin::Mul => VOp::Mul(dst, a, b),
                Ibin::Min => VOp::Min(dst, a, b),
                Ibin::Max => VOp::Max(dst, a, b),
                Ibin::Le => VOp::Le(dst, a, b),
                Ibin::Lt => VOp::Lt(dst, a, b),
                Ibin::Eq => VOp::Eq(dst, a, b),
                Ibin::And => VOp::And(dst, a, b),
                Ibin::Or => VOp::Or(dst, a, b),
            });
            Val::VSlot(dst)
        } else {
            let hoisted = self.is_hoistable(a) && self.is_hoistable(b);
            let dst = self.sslot(hoisted);
            let op = match kind {
                Ibin::Add => SOp::Add(dst, a, b),
                Ibin::Sub => SOp::Sub(dst, a, b),
                Ibin::Mul => SOp::Mul(dst, a, b),
                Ibin::Min => SOp::Min(dst, a, b),
                Ibin::Max => SOp::Max(dst, a, b),
                Ibin::Le => SOp::Le(dst, a, b),
                Ibin::Lt => SOp::Lt(dst, a, b),
                Ibin::Eq => SOp::Eq(dst, a, b),
                Ibin::And => SOp::And(dst, a, b),
                Ibin::Or => SOp::Or(dst, a, b),
            };
            self.emit_s(prog, hoisted, op);
            Val::SSlot(dst)
        }
    }

    /// Lowers a condition to a 0/1 operand. Both operands of `And`/`Or`
    /// are always evaluated (conditions are pure), which the 0/1
    /// arithmetic then combines without short-circuiting.
    fn cond(&mut self, c: &Cond, prog: &mut Prog) -> Val {
        match c {
            Cond::True => Val::SImm(1),
            Cond::Le(a, b) => self.ibin(a, b, prog, Ibin::Le),
            Cond::Lt(a, b) => self.ibin(a, b, prog, Ibin::Lt),
            Cond::Eq(a, b) => self.ibin(a, b, prog, Ibin::Eq),
            Cond::And(a, b) => {
                let a = self.cond(a, prog);
                let b = self.cond(b, prog);
                self.bool_bin(a, b, prog, Ibin::And)
            }
            Cond::Or(a, b) => {
                let a = self.cond(a, prog);
                let b = self.cond(b, prog);
                self.bool_bin(a, b, prog, Ibin::Or)
            }
            Cond::Not(a) => {
                let a = self.cond(a, prog);
                match a {
                    Val::SImm(x) => Val::SImm(1 - x),
                    Val::VSlot(_) => {
                        let dst = self.vslot();
                        prog.vops.push(VOp::Not(dst, a));
                        Val::VSlot(dst)
                    }
                    _ => {
                        let hoisted = self.is_hoistable(a);
                        let dst = self.sslot(hoisted);
                        self.emit_s(prog, hoisted, SOp::Not(dst, a));
                        Val::SSlot(dst)
                    }
                }
            }
        }
    }

    fn bool_bin(&mut self, a: Val, b: Val, prog: &mut Prog, kind: Ibin) -> Val {
        if let (Val::SImm(x), Val::SImm(y)) = (a, b) {
            return Val::SImm(match kind {
                Ibin::And => x & y,
                _ => x | y,
            });
        }
        if matches!(a, Val::VSlot(_)) || matches!(b, Val::VSlot(_)) {
            let dst = self.vslot();
            prog.vops.push(match kind {
                Ibin::And => VOp::And(dst, a, b),
                _ => VOp::Or(dst, a, b),
            });
            Val::VSlot(dst)
        } else {
            let hoisted = self.is_hoistable(a) && self.is_hoistable(b);
            let dst = self.sslot(hoisted);
            let op = match kind {
                Ibin::And => SOp::And(dst, a, b),
                _ => SOp::Or(dst, a, b),
            };
            self.emit_s(prog, hoisted, op);
            Val::SSlot(dst)
        }
    }

    /// Lowers an `f32` expression; `dst` pins the final op's target (used
    /// to write registers in place).
    fn fexpr(&mut self, e: &FExpr, fops: &mut Vec<FOp>) -> FVal {
        match e {
            FExpr::Reg(r) => FVal::Slot(*r as u16),
            FExpr::Const(c) => FVal::Imm(*c),
            FExpr::Add(a, b) => {
                let (a, b) = (self.fexpr(a, fops), self.fexpr(b, fops));
                let dst = self.fslot();
                fops.push(FOp::Add(dst, a, b));
                FVal::Slot(dst)
            }
            FExpr::Sub(a, b) => {
                let (a, b) = (self.fexpr(a, fops), self.fexpr(b, fops));
                let dst = self.fslot();
                fops.push(FOp::Sub(dst, a, b));
                FVal::Slot(dst)
            }
            FExpr::Mul(a, b) => {
                let (a, b) = (self.fexpr(a, fops), self.fexpr(b, fops));
                let dst = self.fslot();
                fops.push(FOp::Mul(dst, a, b));
                FVal::Slot(dst)
            }
            FExpr::Sqrt(a) => {
                let a = self.fexpr(a, fops);
                let dst = self.fslot();
                fops.push(FOp::Sqrt(dst, a));
                FVal::Slot(dst)
            }
        }
    }

    /// Lowers an `f32` expression whose result must land in register
    /// `reg`: the final op is retargeted, or a copy is emitted for bare
    /// operands.
    fn fexpr_into(&mut self, e: &FExpr, reg: u16, fops: &mut Vec<FOp>) {
        let out = self.fexpr(e, fops);
        match (out, fops.last_mut()) {
            (FVal::Slot(s), Some(op)) if op_dst(op) == s => retarget(op, reg),
            _ => fops.push(FOp::Copy(reg, out)),
        }
    }

    /// FLOP weight of an expression (`sqrt` counts 3), matching the
    /// interpreter's accounting.
    fn flop_weight(e: &FExpr) -> u64 {
        match e {
            FExpr::Reg(_) | FExpr::Const(_) => 0,
            FExpr::Add(a, b) | FExpr::Sub(a, b) | FExpr::Mul(a, b) => {
                1 + Self::flop_weight(a) + Self::flop_weight(b)
            }
            FExpr::Sqrt(a) => 3 + Self::flop_weight(a),
        }
    }

    /// Lowers a spatial index against the extents of global field
    /// `field`.
    fn global_index(&mut self, field: usize, index: &[IExpr], prog: &mut Prog) -> FlatIndex {
        let dims: Vec<i64> = self
            .mem
            .field_dims(field)
            .iter()
            .map(|&d| d as i64)
            .collect();
        self.flat_index(index, dims, 0, prog)
    }

    /// Lowers a shared-buffer index against the buffer's static extents.
    fn shared_index(&mut self, buf: usize, index: &[IExpr], prog: &mut Prog) -> FlatIndex {
        let dims: Vec<i64> = self.kernel.shared[buf]
            .dims
            .iter()
            .map(|&d| d as i64)
            .collect();
        let base = self.shared_bases[buf];
        self.flat_index(index, dims, base, prog)
    }

    fn flat_index(
        &mut self,
        index: &[IExpr],
        dims: Vec<i64>,
        base: i64,
        prog: &mut Prog,
    ) -> FlatIndex {
        assert_eq!(index.len(), dims.len(), "index arity mismatch");
        let idx: Vec<Val> = index.iter().map(|e| self.iexpr(e, prog)).collect();
        let mut strides = vec![1i64; dims.len()];
        for d in (0..dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * dims[d + 1];
        }
        FlatIndex {
            idx,
            dims,
            strides,
            base,
        }
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Vec<BcStmt> {
        stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, stmt: &Stmt) -> BcStmt {
        match stmt {
            Stmt::SetVar { var, value } => match self.vars[*var] {
                VarStorage::Scalar(dst) => {
                    let mut prog = Prog::default();
                    let value = self.iexpr(value, &mut prog);
                    BcStmt::SetVarS { prog, value, dst }
                }
                VarStorage::Vector(dst) => {
                    let mut prog = Prog::default();
                    let out = self.iexpr(value, &mut prog);
                    match (out, prog.vops.last_mut()) {
                        (Val::VSlot(s), Some(op)) if vop_dst(op) == s => retarget_v(op, dst),
                        _ => prog.vops.push(VOp::Copy(dst, out)),
                    }
                    BcStmt::SetVarV { prog }
                }
            },
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let mut prog = Prog::default();
                let lo = self.iexpr(lo, &mut prog);
                let hi = self.iexpr(hi, &mut prog);
                let var = match self.vars[*var] {
                    VarStorage::Scalar(s) => Val::SSlot(s),
                    VarStorage::Vector(s) => Val::VSlot(s),
                };
                let body = self.stmts(body);
                BcStmt::For {
                    prog,
                    lo,
                    hi,
                    step: *step,
                    var,
                    body,
                }
            }
            Stmt::If { cond, then_, else_ } => {
                let mut prog = Prog::default();
                let cond = self.cond(cond, &mut prog);
                let then_ = self.stmts(then_);
                let else_ = self.stmts(else_);
                if matches!(cond, Val::VSlot(_)) {
                    BcStmt::IfLane {
                        prog,
                        cond,
                        then_,
                        else_,
                    }
                } else {
                    BcStmt::IfUniform {
                        prog,
                        cond,
                        then_,
                        else_,
                    }
                }
            }
            Stmt::GlobalLoad {
                dst,
                field,
                plane,
                index,
            } => {
                let mut prog = Prog::default();
                let plane = self.iexpr(plane, &mut prog);
                let flat = self.global_index(*field, index, &mut prog);
                BcStmt::GlobalLoad {
                    prog,
                    dst: *dst as u16,
                    field: *field as u32,
                    plane,
                    flat,
                }
            }
            Stmt::GlobalStore {
                field,
                plane,
                index,
                src,
            } => {
                let mut prog = Prog::default();
                let plane = self.iexpr(plane, &mut prog);
                let flat = self.global_index(*field, index, &mut prog);
                let mut fops = Vec::new();
                let out = self.fexpr(src, &mut fops);
                BcStmt::GlobalStore {
                    prog,
                    field: *field as u32,
                    plane,
                    flat,
                    fops,
                    src: out,
                    flops: Self::flop_weight(src),
                }
            }
            Stmt::SharedLoad { dst, buf, index } => {
                let mut prog = Prog::default();
                let flat = self.shared_index(*buf, index, &mut prog);
                BcStmt::SharedLoad {
                    prog,
                    dst: *dst as u16,
                    flat,
                }
            }
            Stmt::SharedStore { buf, index, src } => {
                let mut prog = Prog::default();
                let flat = self.shared_index(*buf, index, &mut prog);
                let mut fops = Vec::new();
                let out = self.fexpr(src, &mut fops);
                BcStmt::SharedStore {
                    prog,
                    flat,
                    fops,
                    src: out,
                    flops: Self::flop_weight(src),
                }
            }
            Stmt::Compute { dst, expr } => {
                let mut fops = Vec::new();
                self.fexpr_into(expr, *dst as u16, &mut fops);
                BcStmt::Compute {
                    fops,
                    flops: Self::flop_weight(expr),
                }
            }
            Stmt::Sync => BcStmt::Sync,
        }
    }
}

#[derive(Clone, Copy)]
enum Ibin {
    Add,
    Sub,
    Mul,
    Min,
    Max,
    Le,
    Lt,
    Eq,
    And,
    Or,
}

fn op_dst(op: &FOp) -> u16 {
    match op {
        FOp::Copy(d, _)
        | FOp::Add(d, _, _)
        | FOp::Sub(d, _, _)
        | FOp::Mul(d, _, _)
        | FOp::Sqrt(d, _) => *d,
    }
}

fn retarget(op: &mut FOp, dst: u16) {
    match op {
        FOp::Copy(d, _)
        | FOp::Add(d, _, _)
        | FOp::Sub(d, _, _)
        | FOp::Mul(d, _, _)
        | FOp::Sqrt(d, _) => *d = dst,
    }
}

fn vop_dst(op: &VOp) -> u16 {
    match op {
        VOp::Copy(d, _)
        | VOp::Add(d, _, _)
        | VOp::Sub(d, _, _)
        | VOp::Mul(d, _, _)
        | VOp::FloorDiv(d, _, _)
        | VOp::Mod(d, _, _)
        | VOp::Min(d, _, _)
        | VOp::Max(d, _, _)
        | VOp::Le(d, _, _)
        | VOp::Lt(d, _, _)
        | VOp::Eq(d, _, _)
        | VOp::And(d, _, _)
        | VOp::Or(d, _, _)
        | VOp::Not(d, _) => *d,
    }
}

fn retarget_v(op: &mut VOp, dst: u16) {
    match op {
        VOp::Copy(d, _)
        | VOp::Add(d, _, _)
        | VOp::Sub(d, _, _)
        | VOp::Mul(d, _, _)
        | VOp::FloorDiv(d, _, _)
        | VOp::Mod(d, _, _)
        | VOp::Min(d, _, _)
        | VOp::Max(d, _, _)
        | VOp::Le(d, _, _)
        | VOp::Lt(d, _, _)
        | VOp::Eq(d, _, _)
        | VOp::And(d, _, _)
        | VOp::Or(d, _, _)
        | VOp::Not(d, _) => *d = dst,
    }
}

/// Compiles one kernel against the field extents of `mem`.
pub(crate) fn compile_kernel(kernel: &Kernel, mem: &GlobalMem) -> BcKernel {
    let mut c = Compiler::new(kernel, mem);
    let body = c.stmts(&kernel.body);
    let vector_var_slots = 3..3 + c
        .vars
        .iter()
        .filter(|v| matches!(v, VarStorage::Vector(_)))
        .count();
    assert!(
        c.n_sslots < u16::MAX as usize
            && c.n_vslots < u16::MAX as usize
            && c.n_fslots < u16::MAX as usize,
        "kernel too large for 16-bit slot indices"
    );
    BcKernel {
        body,
        preamble: c.preamble,
        n_threads: kernel.threads_per_block(),
        n_params: kernel.n_params,
        n_sslots: c.n_sslots,
        n_vslots: c.n_vslots,
        n_fslots: c.n_fslots,
        vector_var_slots,
        n_regs: kernel.n_regs,
        shared_words: kernel.shared.iter().map(|b| b.len()).sum(),
        block_dim: kernel.block_dim,
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Reusable per-worker execution state: slot arrays, shared memory, the
/// per-block L1 slice, warp address scratch and a mask arena — all
/// pooled across blocks and launches so the four hot statement handlers
/// never allocate.
#[derive(Default, Debug)]
pub struct ExecScratch {
    s: Vec<i64>,
    v: Vec<i64>,
    f: Vec<f32>,
    shared: Vec<f32>,
    addrs: Vec<u64>,
    words: Vec<usize>,
    masks: Vec<Vec<bool>>,
    l1: Option<L2Cache>,
}

impl ExecScratch {
    /// Prepares the scratch for one block of `bc`: sizes the slot
    /// arrays, zeroes vars/registers/shared memory, seeds params, block
    /// index and thread-id vectors, resets the block-private L1 slice
    /// and runs the scalar preamble.
    fn bind(&mut self, bc: &BcKernel, params: &[i64], block: i64) {
        assert_eq!(params.len(), bc.n_params, "launch parameter arity");
        let n = bc.n_threads;
        self.s.clear();
        self.s.resize(bc.n_sslots, 0);
        self.s[..bc.n_params].copy_from_slice(params);
        self.s[bc.n_params] = block;
        self.v.resize(bc.n_vslots * n, 0);
        self.f.resize(bc.n_fslots * n, 0.0);
        self.shared.clear();
        self.shared.resize(bc.shared_words, 0.0);
        // Zero var and register slots (temps are written before read).
        for slot in bc.vector_var_slots.clone() {
            self.v[slot * n..(slot + 1) * n].fill(0);
        }
        self.f[..bc.n_regs * n].fill(0.0);
        // Thread-id vectors.
        for t in 0..n {
            self.v[t] = (t % bc.block_dim[0]) as i64;
            self.v[n + t] = ((t / bc.block_dim[0]) % bc.block_dim[1]) as i64;
            self.v[2 * n + t] = (t / (bc.block_dim[0] * bc.block_dim[1])) as i64;
        }
        // Fermi's 16 KB L1 configuration divided among ~8 resident
        // blocks per SM: a 2 KB effective slice per block, reset (not
        // reallocated) between blocks.
        match &mut self.l1 {
            Some(l1) => l1.reset(),
            None => self.l1 = Some(L2Cache::new(2 * 1024)),
        }
        for op in &bc.preamble {
            exec_sop(op, &mut self.s);
        }
    }

    fn take_mask(&mut self, n: usize) -> Vec<bool> {
        let mut m = self.masks.pop().unwrap_or_default();
        m.clear();
        m.resize(n, false);
        m
    }

    fn return_mask(&mut self, m: Vec<bool>) {
        self.masks.push(m);
    }
}

#[inline]
fn exec_sop(op: &SOp, s: &mut [i64]) {
    #[inline]
    fn at(s: &[i64], v: Val) -> i64 {
        match v {
            Val::SImm(c) => c,
            Val::SSlot(i) => s[i as usize],
            Val::VSlot(_) => unreachable!("scalar op with vector operand"),
        }
    }
    match *op {
        SOp::Add(d, a, b) => s[d as usize] = at(s, a) + at(s, b),
        SOp::Sub(d, a, b) => s[d as usize] = at(s, a) - at(s, b),
        SOp::Mul(d, a, b) => s[d as usize] = at(s, a) * at(s, b),
        SOp::FloorDiv(d, a, k) => s[d as usize] = at(s, a).div_euclid(k),
        SOp::Mod(d, a, k) => s[d as usize] = at(s, a).rem_euclid(k),
        SOp::Min(d, a, b) => s[d as usize] = at(s, a).min(at(s, b)),
        SOp::Max(d, a, b) => s[d as usize] = at(s, a).max(at(s, b)),
        SOp::Le(d, a, b) => s[d as usize] = (at(s, a) <= at(s, b)) as i64,
        SOp::Lt(d, a, b) => s[d as usize] = (at(s, a) < at(s, b)) as i64,
        SOp::Eq(d, a, b) => s[d as usize] = (at(s, a) == at(s, b)) as i64,
        SOp::And(d, a, b) => s[d as usize] = at(s, a) & at(s, b),
        SOp::Or(d, a, b) => s[d as usize] = at(s, a) | at(s, b),
        SOp::Not(d, a) => s[d as usize] = 1 - at(s, a),
    }
}

/// A vector-op operand resolved once per op (not once per lane): either a
/// lane-invariant broadcast value or a base offset into the vector slot
/// array.
#[derive(Clone, Copy)]
enum VSrc {
    Broadcast(i64),
    Lanes(usize),
}

/// [`VSrc`] for `f32` operands.
#[derive(Clone, Copy)]
enum FSrc {
    Broadcast(f32),
    Lanes(usize),
}

/// Applies `f` to operand `a` across the active lanes, writing slot range
/// `d..d + n`. `mask: None` means every lane is active — the common
/// non-divergent case — and skips the per-lane mask test.
#[inline]
fn vmap1(
    v: &mut [i64],
    d: usize,
    n: usize,
    mask: Option<&[bool]>,
    a: VSrc,
    f: impl Fn(i64) -> i64,
) {
    match (a, mask) {
        (VSrc::Broadcast(x), None) => v[d..d + n].fill(f(x)),
        (VSrc::Broadcast(x), Some(mask)) => {
            let r = f(x);
            for (lane, &m) in mask.iter().enumerate() {
                if m {
                    v[d + lane] = r;
                }
            }
        }
        (VSrc::Lanes(ab), None) => {
            for lane in 0..n {
                v[d + lane] = f(v[ab + lane]);
            }
        }
        (VSrc::Lanes(ab), Some(mask)) => {
            for (lane, &m) in mask.iter().enumerate() {
                if m {
                    v[d + lane] = f(v[ab + lane]);
                }
            }
        }
    }
}

/// Binary [`vmap1`].
#[inline]
fn vmap2(
    v: &mut [i64],
    d: usize,
    n: usize,
    mask: Option<&[bool]>,
    a: VSrc,
    b: VSrc,
    f: impl Fn(i64, i64) -> i64,
) {
    match (a, b) {
        (VSrc::Broadcast(x), b) => vmap1(v, d, n, mask, b, |y| f(x, y)),
        (VSrc::Lanes(ab), VSrc::Broadcast(y)) => vmap1(v, d, n, mask, VSrc::Lanes(ab), |x| f(x, y)),
        (VSrc::Lanes(ab), VSrc::Lanes(bb)) => match mask {
            None => {
                for lane in 0..n {
                    v[d + lane] = f(v[ab + lane], v[bb + lane]);
                }
            }
            Some(mask) => {
                for (lane, &m) in mask.iter().enumerate() {
                    if m {
                        v[d + lane] = f(v[ab + lane], v[bb + lane]);
                    }
                }
            }
        },
    }
}

/// [`vmap1`] over the `f32` slot array.
#[inline]
fn fmap1(
    f32s: &mut [f32],
    d: usize,
    n: usize,
    mask: Option<&[bool]>,
    a: FSrc,
    f: impl Fn(f32) -> f32,
) {
    match (a, mask) {
        (FSrc::Broadcast(x), None) => f32s[d..d + n].fill(f(x)),
        (FSrc::Broadcast(x), Some(mask)) => {
            let r = f(x);
            for (lane, &m) in mask.iter().enumerate() {
                if m {
                    f32s[d + lane] = r;
                }
            }
        }
        (FSrc::Lanes(ab), None) => {
            for lane in 0..n {
                f32s[d + lane] = f(f32s[ab + lane]);
            }
        }
        (FSrc::Lanes(ab), Some(mask)) => {
            for (lane, &m) in mask.iter().enumerate() {
                if m {
                    f32s[d + lane] = f(f32s[ab + lane]);
                }
            }
        }
    }
}

/// Binary [`fmap1`].
#[inline]
fn fmap2(
    f32s: &mut [f32],
    d: usize,
    n: usize,
    mask: Option<&[bool]>,
    a: FSrc,
    b: FSrc,
    f: impl Fn(f32, f32) -> f32,
) {
    match (a, b) {
        (FSrc::Broadcast(x), b) => fmap1(f32s, d, n, mask, b, |y| f(x, y)),
        (FSrc::Lanes(ab), FSrc::Broadcast(y)) => {
            fmap1(f32s, d, n, mask, FSrc::Lanes(ab), |x| f(x, y))
        }
        (FSrc::Lanes(ab), FSrc::Lanes(bb)) => match mask {
            None => {
                for lane in 0..n {
                    f32s[d + lane] = f(f32s[ab + lane], f32s[bb + lane]);
                }
            }
            Some(mask) => {
                for (lane, &m) in mask.iter().enumerate() {
                    if m {
                        f32s[d + lane] = f(f32s[ab + lane], f32s[bb + lane]);
                    }
                }
            }
        },
    }
}

struct CompiledExec<'a, B: GlobalBackend> {
    bc: &'a BcKernel,
    glob: &'a mut B,
    counters: &'a mut Counters,
    scratch: &'a mut ExecScratch,
}

impl<B: GlobalBackend> CompiledExec<'_, B> {
    #[inline]
    fn geti(&self, v: Val, lane: usize) -> i64 {
        match v {
            Val::SImm(c) => c,
            Val::SSlot(i) => self.scratch.s[i as usize],
            Val::VSlot(i) => self.scratch.v[i as usize * self.bc.n_threads + lane],
        }
    }

    #[inline]
    fn getf(&self, v: FVal, lane: usize) -> f32 {
        match v {
            FVal::Imm(c) => c,
            FVal::Slot(i) => self.scratch.f[i as usize * self.bc.n_threads + lane],
        }
    }

    fn run_prog(&mut self, prog: &Prog, mask: &[bool]) {
        for op in &prog.sops {
            exec_sop(op, &mut self.scratch.s);
        }
        self.run_vops(&prog.vops, mask);
    }

    /// Resolves a vector-op operand once, hoisting the per-lane `match`
    /// out of the lane loops.
    #[inline]
    fn vsrc(&self, v: Val) -> VSrc {
        match v {
            Val::SImm(c) => VSrc::Broadcast(c),
            Val::SSlot(i) => VSrc::Broadcast(self.scratch.s[i as usize]),
            Val::VSlot(i) => VSrc::Lanes(i as usize * self.bc.n_threads),
        }
    }

    /// [`CompiledExec::vsrc`] for `f32` operands.
    #[inline]
    fn fsrc(&self, v: FVal) -> FSrc {
        match v {
            FVal::Imm(c) => FSrc::Broadcast(c),
            FVal::Slot(i) => FSrc::Lanes(i as usize * self.bc.n_threads),
        }
    }

    fn run_vops(&mut self, vops: &[VOp], mask: &[bool]) {
        let n = self.bc.n_threads;
        let mask = if mask.iter().all(|&m| m) {
            None
        } else {
            Some(mask)
        };
        for op in vops {
            macro_rules! vbin {
                ($d:expr, $a:expr, $b:expr, $f:expr) => {{
                    let a = self.vsrc(*$a);
                    let b = self.vsrc(*$b);
                    vmap2(&mut self.scratch.v, *$d as usize * n, n, mask, a, b, $f);
                }};
            }
            macro_rules! vun {
                ($d:expr, $a:expr, $f:expr) => {{
                    let a = self.vsrc(*$a);
                    vmap1(&mut self.scratch.v, *$d as usize * n, n, mask, a, $f);
                }};
            }
            match op {
                VOp::Copy(d, a) => vun!(d, a, |x: i64| x),
                VOp::Add(d, a, b) => vbin!(d, a, b, |x: i64, y: i64| x + y),
                VOp::Sub(d, a, b) => vbin!(d, a, b, |x: i64, y: i64| x - y),
                VOp::Mul(d, a, b) => vbin!(d, a, b, |x: i64, y: i64| x * y),
                VOp::Min(d, a, b) => vbin!(d, a, b, |x: i64, y: i64| x.min(y)),
                VOp::Max(d, a, b) => vbin!(d, a, b, |x: i64, y: i64| x.max(y)),
                VOp::Le(d, a, b) => vbin!(d, a, b, |x: i64, y: i64| (x <= y) as i64),
                VOp::Lt(d, a, b) => vbin!(d, a, b, |x: i64, y: i64| (x < y) as i64),
                VOp::Eq(d, a, b) => vbin!(d, a, b, |x: i64, y: i64| (x == y) as i64),
                VOp::And(d, a, b) => vbin!(d, a, b, |x: i64, y: i64| x & y),
                VOp::Or(d, a, b) => vbin!(d, a, b, |x: i64, y: i64| x | y),
                VOp::FloorDiv(d, a, k) => {
                    let k = *k;
                    vun!(d, a, move |x: i64| x.div_euclid(k))
                }
                VOp::Mod(d, a, k) => {
                    let k = *k;
                    vun!(d, a, move |x: i64| x.rem_euclid(k))
                }
                VOp::Not(d, a) => vun!(d, a, |x: i64| 1 - x),
            }
        }
    }

    fn run_fops(&mut self, fops: &[FOp], mask: &[bool]) {
        let n = self.bc.n_threads;
        let mask = if mask.iter().all(|&m| m) {
            None
        } else {
            Some(mask)
        };
        for op in fops {
            macro_rules! fbin {
                ($d:expr, $a:expr, $b:expr, $f:expr) => {{
                    let a = self.fsrc(*$a);
                    let b = self.fsrc(*$b);
                    fmap2(&mut self.scratch.f, *$d as usize * n, n, mask, a, b, $f);
                }};
            }
            match op {
                FOp::Copy(d, a) => {
                    let a = self.fsrc(*a);
                    fmap1(&mut self.scratch.f, *d as usize * n, n, mask, a, |x: f32| x);
                }
                FOp::Add(d, a, b) => fbin!(d, a, b, |x: f32, y: f32| x + y),
                FOp::Sub(d, a, b) => fbin!(d, a, b, |x: f32, y: f32| x - y),
                FOp::Mul(d, a, b) => fbin!(d, a, b, |x: f32, y: f32| x * y),
                FOp::Sqrt(d, a) => {
                    let a = self.fsrc(*a);
                    fmap1(&mut self.scratch.f, *d as usize * n, n, mask, a, f32::sqrt);
                }
            }
        }
    }

    fn active_warps(mask: &[bool]) -> u64 {
        mask.chunks(32).filter(|w| w.iter().any(|&m| m)).count() as u64
    }

    fn run(&mut self, stmts: &[BcStmt], mask: &[bool]) {
        for s in stmts {
            self.exec(s, mask);
        }
    }

    fn exec(&mut self, stmt: &BcStmt, mask: &[bool]) {
        if !mask.iter().any(|&m| m) {
            return;
        }
        self.counters.warp_instructions += Self::active_warps(mask);
        let n = self.bc.n_threads;
        match stmt {
            BcStmt::SetVarS { prog, value, dst } => {
                self.run_prog(prog, mask);
                self.scratch.s[*dst as usize] = self.geti(*value, 0);
            }
            BcStmt::SetVarV { prog } => {
                self.run_prog(prog, mask);
            }
            BcStmt::For {
                prog,
                lo,
                hi,
                step,
                var,
                body,
            } => {
                assert!(*step > 0, "loop step must be positive");
                self.run_prog(prog, mask);
                let first = mask.iter().position(|&m| m).expect("non-empty mask");
                let lo_v = self.geti(*lo, first);
                let hi_v = self.geti(*hi, first);
                debug_assert!(
                    mask.iter()
                        .enumerate()
                        .filter(|&(_, &m)| m)
                        .all(|(l, _)| self.geti(*lo, l) == lo_v && self.geti(*hi, l) == hi_v),
                    "loop bounds must be uniform across active lanes"
                );
                let mut v = lo_v;
                while v < hi_v {
                    match *var {
                        Val::SSlot(s) => self.scratch.s[s as usize] = v,
                        Val::VSlot(s) => {
                            let d = s as usize * n;
                            for (lane, &m) in mask.iter().enumerate() {
                                if m {
                                    self.scratch.v[d + lane] = v;
                                }
                            }
                        }
                        Val::SImm(_) => unreachable!("loop var is a slot"),
                    }
                    self.run(body, mask);
                    v += step;
                }
            }
            BcStmt::IfUniform {
                prog,
                cond,
                then_,
                else_,
            } => {
                self.run_prog(prog, mask);
                if self.geti(*cond, 0) != 0 {
                    self.run(then_, mask);
                } else if !else_.is_empty() {
                    self.run(else_, mask);
                }
            }
            BcStmt::IfLane {
                prog,
                cond,
                then_,
                else_,
            } => {
                self.run_prog(prog, mask);
                let mut tmask = self.scratch.take_mask(n);
                let mut emask = self.scratch.take_mask(n);
                let c = match *cond {
                    Val::VSlot(s) => s as usize * n,
                    _ => unreachable!("lane If has a vector condition"),
                };
                for (lane, &m) in mask.iter().enumerate() {
                    if m {
                        if self.scratch.v[c + lane] != 0 {
                            tmask[lane] = true;
                        } else {
                            emask[lane] = true;
                        }
                    }
                }
                // Divergence: warps where both sub-masks are non-empty.
                for w in 0..mask.len().div_ceil(32) {
                    let r = w * 32..((w + 1) * 32).min(mask.len());
                    let t = tmask[r.clone()].iter().any(|&m| m);
                    let e = emask[r].iter().any(|&m| m);
                    if t && e {
                        self.counters.divergent_branches += 1;
                    }
                }
                self.run(then_, &tmask);
                if !else_.is_empty() {
                    self.run(else_, &emask);
                }
                self.scratch.return_mask(tmask);
                self.scratch.return_mask(emask);
            }
            BcStmt::GlobalLoad {
                prog,
                dst,
                field,
                plane,
                flat,
            } => {
                self.run_prog(prog, mask);
                let field = *field as usize;
                let d = *dst as usize * n;
                for warp in 0..n.div_ceil(32) {
                    let lanes = warp * 32..((warp + 1) * 32).min(n);
                    let mut addrs = std::mem::take(&mut self.scratch.addrs);
                    addrs.clear();
                    for lane in lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let pl = self.geti(*plane, lane) as usize;
                        let off = flat.offset(|v| self.geti(v, lane));
                        addrs.push(self.glob.byte_address_flat(field, pl, off));
                        self.scratch.f[d + lane] = self.glob.read_flat(field, pl, off);
                    }
                    let l1 = self.scratch.l1.as_mut().expect("bound scratch has an L1");
                    self.glob.charge_load(self.counters, l1, &addrs);
                    self.scratch.addrs = addrs;
                }
            }
            BcStmt::GlobalStore {
                prog,
                field,
                plane,
                flat,
                fops,
                src,
                flops,
            } => {
                self.run_prog(prog, mask);
                self.run_fops(fops, mask);
                let field = *field as usize;
                for warp in 0..n.div_ceil(32) {
                    let lanes = warp * 32..((warp + 1) * 32).min(n);
                    let mut addrs = std::mem::take(&mut self.scratch.addrs);
                    addrs.clear();
                    for lane in lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let pl = self.geti(*plane, lane) as usize;
                        let off = flat.offset(|v| self.geti(v, lane));
                        addrs.push(self.glob.byte_address_flat(field, pl, off));
                        let v = self.getf(*src, lane);
                        self.counters.flops += flops;
                        self.glob.write_flat(field, pl, off, v);
                    }
                    self.glob.charge_store(self.counters, &addrs);
                    self.scratch.addrs = addrs;
                }
            }
            BcStmt::SharedLoad { prog, dst, flat } => {
                self.run_prog(prog, mask);
                let d = *dst as usize * n;
                for warp in 0..n.div_ceil(32) {
                    let lanes = warp * 32..((warp + 1) * 32).min(n);
                    let mut words = std::mem::take(&mut self.scratch.words);
                    words.clear();
                    for lane in lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let off = flat.offset(|v| self.geti(v, lane));
                        words.push(off);
                        self.scratch.f[d + lane] = self.scratch.shared[off];
                    }
                    charge_shared_load(self.counters, &words);
                    self.scratch.words = words;
                }
            }
            BcStmt::SharedStore {
                prog,
                flat,
                fops,
                src,
                flops,
            } => {
                self.run_prog(prog, mask);
                self.run_fops(fops, mask);
                for warp in 0..n.div_ceil(32) {
                    let lanes = warp * 32..((warp + 1) * 32).min(n);
                    let mut words = std::mem::take(&mut self.scratch.words);
                    words.clear();
                    for lane in lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let off = flat.offset(|v| self.geti(v, lane));
                        words.push(off);
                        let v = self.getf(*src, lane);
                        self.counters.flops += flops;
                        self.scratch.shared[off] = v;
                    }
                    charge_shared_store(self.counters, &words);
                    self.scratch.words = words;
                }
            }
            BcStmt::Compute { fops, flops } => {
                self.run_fops(fops, mask);
                self.counters.flops += flops * mask.iter().filter(|&&m| m).count() as u64;
            }
            BcStmt::Sync => {
                self.counters.syncs += 1;
            }
        }
    }
}

/// Executes one block of a compiled kernel against `glob`, charging
/// `counters`, using (and reusing) `scratch`. Bit-exact with
/// [`crate::exec::exec_block`] on the same backend.
pub(crate) fn exec_block_compiled<B: GlobalBackend>(
    bc: &BcKernel,
    params: &[i64],
    block: i64,
    glob: &mut B,
    counters: &mut Counters,
    scratch: &mut ExecScratch,
) {
    scratch.bind(bc, params, block);
    let mut full = scratch.take_mask(bc.n_threads);
    full.fill(true);
    let mut exec = CompiledExec {
        bc,
        glob,
        counters,
        scratch: &mut *scratch,
    };
    exec.run(&bc.body, &full);
    scratch.return_mask(full);
}

impl GpuSim {
    /// Runs every launch of the plan through the compiled-bytecode
    /// executor — bit-exact with [`GpuSim::run_plan`] (grids *and*
    /// counters), typically several times faster single-threaded. The
    /// interpreter remains the oracle; this is the production path.
    ///
    /// # Panics
    ///
    /// Panics exactly where [`GpuSim::run_plan`] does: shared-memory
    /// demand over the device limit, or out-of-bounds accesses
    /// (code-generation bugs).
    pub fn run_plan_compiled(&mut self, plan: &LaunchPlan) {
        let compiled = CompiledPlan::new(plan, &self.mem);
        let mut scratch = ExecScratch::default();
        self.run_plan_precompiled(plan, &compiled, &mut scratch);
    }

    /// [`GpuSim::run_plan_compiled`] with caller-owned compilation and
    /// scratch, so repeated runs of one plan (a tuning sweep) pay for
    /// neither compilation nor allocation twice.
    pub(crate) fn run_plan_precompiled(
        &mut self,
        plan: &LaunchPlan,
        compiled: &CompiledPlan,
        scratch: &mut ExecScratch,
    ) {
        for launch in &plan.launches {
            let kernel = &plan.kernels[launch.kernel];
            self.check_kernel(kernel);
            self.counters.launches += 1;
            let bc = compiled.kernel(launch.kernel);
            for b in 0..launch.blocks {
                let mut backend = crate::exec::DirectBackend {
                    mem: &mut self.mem,
                    l2: &mut self.l2,
                };
                exec_block_compiled(
                    bc,
                    &launch.params,
                    b as i64,
                    &mut backend,
                    &mut self.counters,
                    scratch,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use gpu_codegen::ir::{Launch, SharedBuf};
    use stencil::Grid;

    /// The hand-written kernels of `exec.rs`'s tests, re-run through the
    /// compiled path and compared bit-for-bit.
    fn assert_compiled_matches(plan: &LaunchPlan, init: &[Grid], planes: usize) {
        let mut seq = GpuSim::new(DeviceConfig::gtx470(), init, planes);
        seq.run_plan(plan);
        let mut comp = GpuSim::new(DeviceConfig::gtx470(), init, planes);
        comp.run_plan_compiled(plan);
        assert_eq!(comp.counters(), seq.counters(), "counters diverged");
        for f in 0..init.len() {
            for p in 0..planes {
                assert!(
                    comp.plane(f, p).bit_equal(seq.plane(f, p)),
                    "field {f} plane {p} diverged"
                );
            }
        }
    }

    #[test]
    fn compiled_copy_kernel_matches_interpreter() {
        let idx = IExpr::BlockIdx.scale(32).add(IExpr::ThreadIdx(0));
        let kernel = Kernel {
            name: "copy".into(),
            block_dim: [32, 1, 1],
            shared: vec![],
            n_vars: 0,
            n_regs: 1,
            n_params: 0,
            body: vec![
                Stmt::GlobalLoad {
                    dst: 0,
                    field: 0,
                    plane: IExpr::Const(0),
                    index: vec![idx.clone()],
                },
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(1),
                    index: vec![idx],
                    src: FExpr::Add(Box::new(FExpr::Reg(0)), Box::new(FExpr::Const(1.0))),
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![kernel],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 4,
            }],
            description: "copy".into(),
        };
        let mut g = Grid::zeros(&[128]);
        for i in 0..128 {
            g.set(&[i], i as f32);
        }
        assert_compiled_matches(&plan, &[g], 2);
    }

    #[test]
    fn compiled_divergent_if_counts_divergence() {
        let kernel = Kernel {
            name: "div".into(),
            block_dim: [32, 1, 1],
            shared: vec![],
            n_vars: 1,
            n_regs: 1,
            n_params: 0,
            body: vec![
                // A var assigned inside the If must be demoted to a
                // vector slot; a top-level uniform one stays scalar.
                Stmt::If {
                    cond: Cond::Lt(IExpr::ThreadIdx(0), IExpr::Const(16)),
                    then_: vec![
                        Stmt::SetVar {
                            var: 0,
                            value: IExpr::Const(3),
                        },
                        Stmt::Compute {
                            dst: 0,
                            expr: FExpr::Const(1.0),
                        },
                    ],
                    else_: vec![Stmt::Compute {
                        dst: 0,
                        expr: FExpr::Const(2.0),
                    }],
                },
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(0),
                    index: vec![IExpr::ThreadIdx(0)],
                    src: FExpr::Reg(0),
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![kernel],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 1,
            }],
            description: "divergence".into(),
        };
        assert_compiled_matches(&plan, &[Grid::zeros(&[32])], 1);
    }

    #[test]
    fn compiled_shared_roundtrip_matches() {
        let tx = IExpr::ThreadIdx(0);
        let kernel = Kernel {
            name: "stage".into(),
            block_dim: [32, 1, 1],
            shared: vec![SharedBuf {
                name: "s".into(),
                dims: vec![32],
            }],
            n_vars: 0,
            n_regs: 2,
            n_params: 0,
            body: vec![
                Stmt::GlobalLoad {
                    dst: 0,
                    field: 0,
                    plane: IExpr::Const(0),
                    index: vec![tx.clone()],
                },
                Stmt::SharedStore {
                    buf: 0,
                    index: vec![tx.clone()],
                    src: FExpr::Reg(0),
                },
                Stmt::Sync,
                Stmt::SharedLoad {
                    dst: 1,
                    buf: 0,
                    index: vec![IExpr::Const(31).sub(tx.clone())],
                },
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(1),
                    index: vec![tx],
                    src: FExpr::Reg(1),
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![kernel],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 1,
            }],
            description: "shared stage".into(),
        };
        let mut g = Grid::zeros(&[32]);
        for i in 0..32 {
            g.set(&[i], i as f32);
        }
        assert_compiled_matches(&plan, &[g], 2);
    }

    #[test]
    fn compiled_loop_with_params_matches() {
        let tx = IExpr::ThreadIdx(0);
        let kernel = Kernel {
            name: "loop".into(),
            block_dim: [8, 1, 1],
            shared: vec![],
            n_vars: 2,
            n_regs: 2,
            n_params: 1,
            body: vec![
                // Scalar var from a param — exercises the hoisted
                // preamble.
                Stmt::SetVar {
                    var: 1,
                    value: IExpr::Param(0).scale(2).offset(1),
                },
                Stmt::Compute {
                    dst: 1,
                    expr: FExpr::Const(0.0),
                },
                Stmt::For {
                    var: 0,
                    lo: IExpr::Const(0),
                    hi: IExpr::Var(1),
                    step: 1,
                    body: vec![
                        Stmt::GlobalLoad {
                            dst: 0,
                            field: 0,
                            plane: IExpr::Const(0),
                            index: vec![tx.clone().scale(4).add(IExpr::Var(0).modulo(4))],
                        },
                        Stmt::Compute {
                            dst: 1,
                            expr: FExpr::Add(Box::new(FExpr::Reg(1)), Box::new(FExpr::Reg(0))),
                        },
                    ],
                },
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(1),
                    index: vec![tx],
                    src: FExpr::Reg(1),
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![kernel],
            launches: vec![Launch {
                kernel: 0,
                params: vec![1],
                blocks: 1,
            }],
            description: "param loop".into(),
        };
        let g = Grid::random(&[32], 9);
        assert_compiled_matches(&plan, &[g], 2);
    }

    #[test]
    fn compiled_min_max_floordiv_mod_match() {
        let tx = IExpr::ThreadIdx(0);
        let idx = IExpr::Min(
            Box::new(IExpr::Max(
                Box::new(tx.clone().fdiv(2).scale(3).modulo(16)),
                Box::new(IExpr::Const(1)),
            )),
            Box::new(IExpr::Const(30)),
        );
        let kernel = Kernel {
            name: "mm".into(),
            block_dim: [32, 1, 1],
            shared: vec![],
            n_vars: 0,
            n_regs: 1,
            n_params: 0,
            body: vec![
                Stmt::GlobalLoad {
                    dst: 0,
                    field: 0,
                    plane: IExpr::Const(0),
                    index: vec![idx],
                },
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(1),
                    index: vec![tx],
                    src: FExpr::Sqrt(Box::new(FExpr::Mul(
                        Box::new(FExpr::Reg(0)),
                        Box::new(FExpr::Reg(0)),
                    ))),
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![kernel],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 1,
            }],
            description: "minmax".into(),
        };
        assert_compiled_matches(&plan, &[Grid::random(&[32], 5)], 2);
    }

    #[test]
    fn interpreter_forced_reads_env_shape() {
        // Can't mutate the process environment safely in tests; just
        // exercise the call.
        let _ = interpreter_forced();
    }
}
