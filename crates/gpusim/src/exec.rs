//! The warp-synchronous kernel interpreter.
//!
//! Blocks execute statement-locked: all warps of a block finish a statement
//! before the next begins. This is stronger than real hardware but agrees
//! with it on every kernel whose cross-warp communication is
//! `__syncthreads`-separated — which the generated stencil kernels are.
//! Divergence is modeled by per-lane masks on `If`; memory instrumentation
//! happens per warp (32 consecutive lanes).

use gpu_codegen::ir::{Cond, FExpr, IExpr, Kernel, LaunchPlan, Stmt};
use stencil::Grid;

use crate::counters::Counters;
use crate::device::DeviceConfig;
use crate::memory::{charge_warp_load, charge_warp_store, GlobalMem, L2Cache};
use crate::shared::{charge_shared_load, charge_shared_store, SharedMem};

/// How a block's global-memory traffic reaches storage and the cache
/// hierarchy. The sequential executor writes straight through to the
/// simulator's [`GlobalMem`] and shared L2 ([`DirectBackend`]); the
/// parallel executor substitutes a logging backend
/// ([`crate::parallel::LoggedBackend`]) that defers shared-state effects
/// to a deterministic merge.
pub(crate) trait GlobalBackend {
    /// Byte address of an element (for coalescing analysis).
    fn byte_address(&self, field: usize, plane: usize, idx: &[i64]) -> u64;
    /// Reads one element (seeing this block's own earlier writes).
    fn read(&mut self, field: usize, plane: usize, idx: &[i64]) -> f32;
    /// Writes one element.
    fn write(&mut self, field: usize, plane: usize, idx: &[i64], v: f32);
    /// [`GlobalBackend::byte_address`] with a precomputed plane-linear
    /// offset (the compiled executor's fast path).
    fn byte_address_flat(&self, field: usize, plane: usize, offset: usize) -> u64;
    /// [`GlobalBackend::read`] by plane-linear offset.
    fn read_flat(&mut self, field: usize, plane: usize, offset: usize) -> f32;
    /// [`GlobalBackend::write`] by plane-linear offset.
    fn write_flat(&mut self, field: usize, plane: usize, offset: usize, v: f32);
    /// Charges one warp's coalesced *load* addresses. `l1` is the block's
    /// private first-level cache.
    fn charge_load(&mut self, counters: &mut Counters, l1: &mut L2Cache, addrs: &[u64]);
    /// Charges one warp's coalesced *store* addresses.
    fn charge_store(&mut self, counters: &mut Counters, addrs: &[u64]);
}

/// The sequential backend: direct access to the simulator's memory and
/// shared L2, exactly as `run_plan` has always behaved.
pub(crate) struct DirectBackend<'a> {
    pub mem: &'a mut GlobalMem,
    pub l2: &'a mut L2Cache,
}

impl GlobalBackend for DirectBackend<'_> {
    fn byte_address(&self, field: usize, plane: usize, idx: &[i64]) -> u64 {
        self.mem.byte_address(field, plane, idx)
    }

    fn read(&mut self, field: usize, plane: usize, idx: &[i64]) -> f32 {
        self.mem.read(field, plane, idx)
    }

    fn write(&mut self, field: usize, plane: usize, idx: &[i64], v: f32) {
        self.mem.write(field, plane, idx, v);
    }

    fn byte_address_flat(&self, field: usize, plane: usize, offset: usize) -> u64 {
        self.mem.byte_address_flat(field, plane, offset)
    }

    fn read_flat(&mut self, field: usize, plane: usize, offset: usize) -> f32 {
        self.mem.read_flat(field, plane, offset)
    }

    fn write_flat(&mut self, field: usize, plane: usize, offset: usize, v: f32) {
        self.mem.write_flat(field, plane, offset, v);
    }

    fn charge_load(&mut self, counters: &mut Counters, l1: &mut L2Cache, addrs: &[u64]) {
        charge_warp_load(counters, l1, self.l2, addrs);
    }

    fn charge_store(&mut self, counters: &mut Counters, addrs: &[u64]) {
        charge_warp_store(counters, self.l2, addrs);
    }
}

/// Interprets one block of `kernel` against an arbitrary global-memory
/// backend, charging `counters`. The block gets a fresh private L1 slice
/// (as on hardware, where resident blocks share the SM's L1 — modeled as
/// a fixed per-block slice), so everything except the shared-L2 state is
/// computed locally.
pub(crate) fn exec_block<B: GlobalBackend>(
    kernel: &Kernel,
    params: &[i64],
    block: i64,
    glob: &mut B,
    counters: &mut Counters,
) {
    assert_eq!(params.len(), kernel.n_params, "launch parameter arity");
    let n_threads = kernel.threads_per_block();
    let mut exec = BlockExec {
        params,
        block,
        n_threads,
        tids: (0..n_threads)
            .map(|t| {
                let x = t % kernel.block_dim[0];
                let y = (t / kernel.block_dim[0]) % kernel.block_dim[1];
                let z = t / (kernel.block_dim[0] * kernel.block_dim[1]);
                [x as i64, y as i64, z as i64]
            })
            .collect(),
        vars: vec![vec![0i64; n_threads]; kernel.n_vars],
        regs: vec![vec![0f32; n_threads]; kernel.n_regs],
        shared: SharedMem::new(&kernel.shared),
        // Fermi's 16 KB L1 configuration divided among ~8 resident
        // blocks per SM: a 2 KB effective slice per block.
        l1: L2Cache::new(2 * 1024),
        glob,
        counters,
    };
    let mask = vec![true; n_threads];
    exec.run(&kernel.body, &mask);
}

/// The simulator: device, global memory, L2 and counters.
#[derive(Clone, Debug)]
pub struct GpuSim {
    pub(crate) device: DeviceConfig,
    pub(crate) mem: GlobalMem,
    pub(crate) l2: L2Cache,
    pub(crate) counters: Counters,
}

impl GpuSim {
    /// Creates a simulator with `planes` time planes per field, seeded from
    /// `init` (one grid per field).
    pub fn new(device: DeviceConfig, init: &[Grid], planes: usize) -> GpuSim {
        GpuSim::with_global_offset(device, init, planes, 0)
    }

    /// Like [`GpuSim::new`], translating global arrays by `word_offset`
    /// words (the §4.2.3 alignment translation; see
    /// [`GlobalMem::with_word_offset`]).
    pub fn with_global_offset(
        device: DeviceConfig,
        init: &[Grid],
        planes: usize,
        word_offset: i64,
    ) -> GpuSim {
        let l2 = L2Cache::new(device.l2_bytes);
        GpuSim {
            device,
            mem: GlobalMem::with_word_offset(init, planes, word_offset),
            l2,
            counters: Counters::default(),
        }
    }

    /// Records the number of logical stencil point updates the simulated
    /// plan performs (the GStencils/s numerator; redundant recomputation
    /// does not count).
    pub fn set_point_updates(&mut self, n: u64) {
        self.counters.point_updates = n;
    }

    /// The device configuration.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Accumulated counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Resets the counters (keeps memory contents).
    pub fn reset_counters(&mut self) {
        self.counters = Counters::default();
    }

    /// Read access to one global plane.
    pub fn plane(&self, field: usize, plane: usize) -> &Grid {
        self.mem.plane(field, plane)
    }

    /// Runs every launch of the plan on every block — functionally exact.
    ///
    /// # Panics
    ///
    /// Panics if a kernel's shared-memory demand exceeds the device limit
    /// (the tile-size selection is responsible for avoiding this) or on
    /// out-of-bounds accesses (code-generation bugs).
    pub fn run_plan(&mut self, plan: &LaunchPlan) {
        for launch in &plan.launches {
            let kernel = &plan.kernels[launch.kernel];
            self.check_kernel(kernel);
            self.counters.launches += 1;
            for b in 0..launch.blocks {
                self.run_block(kernel, &launch.params, b as i64);
            }
        }
    }

    /// Runs at most `samples` blocks per launch (spread across the grid)
    /// and scales the counter deltas to the full grid. Memory contents are
    /// *not* meaningful afterwards — this mode exists to extrapolate
    /// counters for paper-scale workloads.
    ///
    /// `samples` is clamped to each launch's block count: a launch with
    /// `n <= samples` blocks runs every block exactly once and its counter
    /// deltas are scaled by `1.0` (i.e. left exact). The clamp is per
    /// launch, so one plan can mix exact small launches with sampled large
    /// ones. The per-launch L2 capacity correction still applies in the
    /// clamped case (the cache is re-sized to its full capacity and
    /// cleared), so cross-launch L2 reuse is not modeled in this mode —
    /// use [`GpuSim::run_plan`] when exact counters matter.
    pub fn run_plan_sampled(&mut self, plan: &LaunchPlan, samples: usize) {
        assert!(samples > 0, "need at least one sampled block");
        for launch in &plan.launches {
            let kernel = &plan.kernels[launch.kernel];
            self.check_kernel(kernel);
            self.counters.launches += 1;
            let n = launch.blocks;
            if n == 0 {
                continue;
            }
            let take = samples.min(n);
            // L2 capacity correction: the sampled blocks represent only
            // `take` of the ~`concurrency` blocks that would share the L2
            // at any instant, so give them the proportional slice.
            // Without this, a handful of sampled blocks fit entirely in
            // cache and DRAM traffic collapses to zero.
            let concurrency = n.min(8 * self.device.sms as usize).max(1);
            let effective =
                (self.device.l2_bytes * take / concurrency).clamp(4 * 1024, self.device.l2_bytes);
            self.l2 = L2Cache::new(effective);
            let before = self.counters;
            self.counters = Counters::default();
            for i in 0..take {
                // Spread samples across the grid to include boundary blocks
                // proportionally.
                let b = if take == 1 {
                    0
                } else {
                    i * (n - 1) / (take - 1)
                };
                self.run_block(kernel, &launch.params, b as i64);
            }
            let delta = self.counters.scaled(n as f64 / take as f64);
            self.counters = before + delta;
            // `scaled` multiplies the launch counter too; re-adjust.
            self.counters.launches = before.launches;
        }
    }

    pub(crate) fn check_kernel(&self, kernel: &Kernel) {
        assert!(
            kernel.shared_bytes() <= self.device.shared_limit,
            "kernel {} needs {} bytes of shared memory; {} allows {}",
            kernel.name,
            kernel.shared_bytes(),
            self.device.name,
            self.device.shared_limit
        );
    }

    pub(crate) fn run_block(&mut self, kernel: &Kernel, params: &[i64], block: i64) {
        let mut backend = DirectBackend {
            mem: &mut self.mem,
            l2: &mut self.l2,
        };
        exec_block(kernel, params, block, &mut backend, &mut self.counters);
    }
}

struct BlockExec<'a, B: GlobalBackend> {
    params: &'a [i64],
    block: i64,
    n_threads: usize,
    tids: Vec<[i64; 3]>,
    vars: Vec<Vec<i64>>,
    regs: Vec<Vec<f32>>,
    shared: SharedMem,
    l1: L2Cache,
    glob: &'a mut B,
    counters: &'a mut Counters,
}

impl<B: GlobalBackend> BlockExec<'_, B> {
    fn eval_i(&self, e: &IExpr, lane: usize) -> i64 {
        match e {
            IExpr::Const(c) => *c,
            IExpr::Var(v) => self.vars[*v][lane],
            IExpr::Param(p) => self.params[*p],
            IExpr::ThreadIdx(d) => self.tids[lane][*d as usize],
            IExpr::BlockIdx => self.block,
            IExpr::Add(a, b) => self.eval_i(a, lane) + self.eval_i(b, lane),
            IExpr::Sub(a, b) => self.eval_i(a, lane) - self.eval_i(b, lane),
            IExpr::Mul(a, b) => self.eval_i(a, lane) * self.eval_i(b, lane),
            IExpr::FloorDiv(a, k) => self.eval_i(a, lane).div_euclid(*k),
            IExpr::Mod(a, k) => self.eval_i(a, lane).rem_euclid(*k),
            IExpr::Min(a, b) => self.eval_i(a, lane).min(self.eval_i(b, lane)),
            IExpr::Max(a, b) => self.eval_i(a, lane).max(self.eval_i(b, lane)),
        }
    }

    fn eval_c(&self, c: &Cond, lane: usize) -> bool {
        match c {
            Cond::True => true,
            Cond::Le(a, b) => self.eval_i(a, lane) <= self.eval_i(b, lane),
            Cond::Lt(a, b) => self.eval_i(a, lane) < self.eval_i(b, lane),
            Cond::Eq(a, b) => self.eval_i(a, lane) == self.eval_i(b, lane),
            Cond::And(a, b) => self.eval_c(a, lane) && self.eval_c(b, lane),
            Cond::Or(a, b) => self.eval_c(a, lane) || self.eval_c(b, lane),
            Cond::Not(a) => !self.eval_c(a, lane),
        }
    }

    fn eval_f(&self, e: &FExpr, lane: usize) -> f32 {
        match e {
            FExpr::Reg(r) => self.regs[*r][lane],
            FExpr::Const(c) => *c,
            FExpr::Add(a, b) => self.eval_f(a, lane) + self.eval_f(b, lane),
            FExpr::Sub(a, b) => self.eval_f(a, lane) - self.eval_f(b, lane),
            FExpr::Mul(a, b) => self.eval_f(a, lane) * self.eval_f(b, lane),
            FExpr::Sqrt(a) => self.eval_f(a, lane).sqrt(),
        }
    }

    /// FLOP weight of an expression (sqrt counts 3).
    fn flop_weight(e: &FExpr) -> u64 {
        match e {
            FExpr::Reg(_) | FExpr::Const(_) => 0,
            FExpr::Add(a, b) | FExpr::Sub(a, b) | FExpr::Mul(a, b) => {
                1 + Self::flop_weight(a) + Self::flop_weight(b)
            }
            FExpr::Sqrt(a) => 3 + Self::flop_weight(a),
        }
    }

    fn active_warps(&self, mask: &[bool]) -> u64 {
        mask.chunks(32).filter(|w| w.iter().any(|&m| m)).count() as u64
    }

    fn run(&mut self, stmts: &[Stmt], mask: &[bool]) {
        for s in stmts {
            self.exec(s, mask);
        }
    }

    fn exec(&mut self, stmt: &Stmt, mask: &[bool]) {
        if !mask.iter().any(|&m| m) {
            return;
        }
        self.counters.warp_instructions += self.active_warps(mask);
        match stmt {
            Stmt::SetVar { var, value } => {
                for (lane, &m) in mask.iter().enumerate().take(self.n_threads) {
                    if m {
                        self.vars[*var][lane] = self.eval_i(value, lane);
                    }
                }
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                assert!(*step > 0, "loop step must be positive");
                let first = mask.iter().position(|&m| m).expect("non-empty mask");
                let lo_v = self.eval_i(lo, first);
                let hi_v = self.eval_i(hi, first);
                debug_assert!(
                    (0..self.n_threads)
                        .filter(|&l| mask[l])
                        .all(|l| self.eval_i(lo, l) == lo_v && self.eval_i(hi, l) == hi_v),
                    "loop bounds must be uniform across active lanes"
                );
                let mut v = lo_v;
                while v < hi_v {
                    for (lane, &m) in mask.iter().enumerate().take(self.n_threads) {
                        if m {
                            self.vars[*var][lane] = v;
                        }
                    }
                    self.run(body, mask);
                    v += step;
                }
            }
            Stmt::If { cond, then_, else_ } => {
                let mut tmask = vec![false; self.n_threads];
                let mut emask = vec![false; self.n_threads];
                for lane in 0..self.n_threads {
                    if mask[lane] {
                        if self.eval_c(cond, lane) {
                            tmask[lane] = true;
                        } else {
                            emask[lane] = true;
                        }
                    }
                }
                // Divergence: warps where both sub-masks are non-empty.
                for w in 0..mask.len().div_ceil(32) {
                    let r = w * 32..((w + 1) * 32).min(mask.len());
                    let t = tmask[r.clone()].iter().any(|&m| m);
                    let e = emask[r].iter().any(|&m| m);
                    if t && e {
                        self.counters.divergent_branches += 1;
                    }
                }
                self.run(then_, &tmask);
                if !else_.is_empty() {
                    self.run(else_, &emask);
                }
            }
            Stmt::GlobalLoad {
                dst,
                field,
                plane,
                index,
            } => {
                for warp in 0..self.n_threads.div_ceil(32) {
                    let lanes = warp * 32..((warp + 1) * 32).min(self.n_threads);
                    let mut addrs = Vec::new();
                    for lane in lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let pl = self.eval_i(plane, lane) as usize;
                        let idx: Vec<i64> = index.iter().map(|e| self.eval_i(e, lane)).collect();
                        addrs.push(self.glob.byte_address(*field, pl, &idx));
                        self.regs[*dst][lane] = self.glob.read(*field, pl, &idx);
                    }
                    self.glob.charge_load(self.counters, &mut self.l1, &addrs);
                }
            }
            Stmt::GlobalStore {
                field,
                plane,
                index,
                src,
            } => {
                let extra_flops = Self::flop_weight(src);
                for warp in 0..self.n_threads.div_ceil(32) {
                    let lanes = warp * 32..((warp + 1) * 32).min(self.n_threads);
                    let mut addrs = Vec::new();
                    for lane in lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let pl = self.eval_i(plane, lane) as usize;
                        let idx: Vec<i64> = index.iter().map(|e| self.eval_i(e, lane)).collect();
                        addrs.push(self.glob.byte_address(*field, pl, &idx));
                        let v = self.eval_f(src, lane);
                        self.counters.flops += extra_flops;
                        self.glob.write(*field, pl, &idx, v);
                    }
                    self.glob.charge_store(self.counters, &addrs);
                }
            }
            Stmt::SharedLoad { dst, buf, index } => {
                for warp in 0..self.n_threads.div_ceil(32) {
                    let lanes = warp * 32..((warp + 1) * 32).min(self.n_threads);
                    let mut words = Vec::new();
                    for lane in lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let idx: Vec<i64> = index.iter().map(|e| self.eval_i(e, lane)).collect();
                        words.push(self.shared.word_address(*buf, &idx));
                        self.regs[*dst][lane] = self.shared.read(*buf, &idx);
                    }
                    charge_shared_load(self.counters, &words);
                }
            }
            Stmt::SharedStore { buf, index, src } => {
                let extra_flops = Self::flop_weight(src);
                for warp in 0..self.n_threads.div_ceil(32) {
                    let lanes = warp * 32..((warp + 1) * 32).min(self.n_threads);
                    let mut words = Vec::new();
                    for lane in lanes {
                        if !mask[lane] {
                            continue;
                        }
                        let idx: Vec<i64> = index.iter().map(|e| self.eval_i(e, lane)).collect();
                        words.push(self.shared.word_address(*buf, &idx));
                        let v = self.eval_f(src, lane);
                        self.counters.flops += extra_flops;
                        self.shared.write(*buf, &idx, v);
                    }
                    charge_shared_store(self.counters, &words);
                }
            }
            Stmt::Compute { dst, expr } => {
                let w = Self::flop_weight(expr);
                for (lane, &m) in mask.iter().enumerate().take(self.n_threads) {
                    if m {
                        self.regs[*dst][lane] = self.eval_f(expr, lane);
                        self.counters.flops += w;
                    }
                }
            }
            Stmt::Sync => {
                self.counters.syncs += 1;
            }
        }
    }
}

/// Convenience: run a plan and return `(counters, simulator)` for result
/// inspection.
pub fn simulate(device: DeviceConfig, init: &[Grid], planes: usize, plan: &LaunchPlan) -> GpuSim {
    let mut sim = GpuSim::new(device, init, planes);
    sim.run_plan(plan);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_codegen::ir::{Kernel, Launch, SharedBuf};

    /// A hand-written "copy with +1" kernel: out[i] = in[i] + 1 for a 1-D
    /// grid of 128 elements and 4 blocks of 32 threads.
    fn copy_kernel() -> (LaunchPlan, Vec<Grid>) {
        let idx = IExpr::BlockIdx.scale(32).add(IExpr::ThreadIdx(0));
        let kernel = Kernel {
            name: "copy".into(),
            block_dim: [32, 1, 1],
            shared: vec![],
            n_vars: 0,
            n_regs: 1,
            n_params: 0,
            body: vec![
                Stmt::GlobalLoad {
                    dst: 0,
                    field: 0,
                    plane: IExpr::Const(0),
                    index: vec![idx.clone()],
                },
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(1),
                    index: vec![idx],
                    src: FExpr::Add(Box::new(FExpr::Reg(0)), Box::new(FExpr::Const(1.0))),
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![kernel],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 4,
            }],
            description: "copy test".into(),
        };
        let mut g = Grid::zeros(&[128]);
        for i in 0..128 {
            g.set(&[i], i as f32);
        }
        (plan, vec![g])
    }

    #[test]
    fn functional_copy() {
        let (plan, init) = copy_kernel();
        let sim = simulate(DeviceConfig::gtx470(), &init, 2, &plan);
        for i in 0..128 {
            assert_eq!(sim.plane(0, 1).get(&[i]), i as f32 + 1.0);
        }
    }

    #[test]
    fn copy_counters_are_exact() {
        let (plan, init) = copy_kernel();
        let sim = simulate(DeviceConfig::gtx470(), &init, 2, &plan);
        let c = sim.counters();
        assert_eq!(c.gld_inst, 128);
        assert_eq!(c.gst_inst, 128);
        // 4 warps, each perfectly coalesced.
        assert_eq!(c.gld_transactions, 4);
        assert_eq!(c.gst_transactions, 4);
        assert_eq!(c.gld_efficiency(), 1.0);
        assert_eq!(c.flops, 128);
        assert_eq!(c.launches, 1);
        assert_eq!(c.divergent_branches, 0);
    }

    #[test]
    fn divergent_if_is_counted() {
        // Half of each warp takes the branch.
        let kernel = Kernel {
            name: "div".into(),
            block_dim: [32, 1, 1],
            shared: vec![],
            n_vars: 0,
            n_regs: 1,
            n_params: 0,
            body: vec![Stmt::If {
                cond: Cond::Lt(IExpr::ThreadIdx(0), IExpr::Const(16)),
                then_: vec![Stmt::Compute {
                    dst: 0,
                    expr: FExpr::Const(1.0),
                }],
                else_: vec![],
            }],
        };
        let plan = LaunchPlan {
            kernels: vec![kernel],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 1,
            }],
            description: "divergence test".into(),
        };
        let sim = simulate(DeviceConfig::gtx470(), &[Grid::zeros(&[4])], 1, &plan);
        assert_eq!(sim.counters().divergent_branches, 1);
    }

    #[test]
    fn shared_memory_roundtrip_with_sync() {
        // Stage through shared memory: s[tx] = in[tx]; sync; out[tx] = s[31-tx].
        let tx = IExpr::ThreadIdx(0);
        let kernel = Kernel {
            name: "stage".into(),
            block_dim: [32, 1, 1],
            shared: vec![SharedBuf {
                name: "s".into(),
                dims: vec![32],
            }],
            n_vars: 0,
            n_regs: 2,
            n_params: 0,
            body: vec![
                Stmt::GlobalLoad {
                    dst: 0,
                    field: 0,
                    plane: IExpr::Const(0),
                    index: vec![tx.clone()],
                },
                Stmt::SharedStore {
                    buf: 0,
                    index: vec![tx.clone()],
                    src: FExpr::Reg(0),
                },
                Stmt::Sync,
                Stmt::SharedLoad {
                    dst: 1,
                    buf: 0,
                    index: vec![IExpr::Const(31).sub(tx.clone())],
                },
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(1),
                    index: vec![tx],
                    src: FExpr::Reg(1),
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![kernel],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 1,
            }],
            description: "shared stage".into(),
        };
        let mut g = Grid::zeros(&[32]);
        for i in 0..32 {
            g.set(&[i], i as f32);
        }
        let sim = simulate(DeviceConfig::gtx470(), &[g], 2, &plan);
        for i in 0..32 {
            assert_eq!(sim.plane(0, 1).get(&[i]), (31 - i) as f32);
        }
        let c = sim.counters();
        assert_eq!(c.shared_store_requests, 1);
        assert_eq!(c.shared_load_requests, 1);
        // Reversed unit stride is still conflict-free.
        assert_eq!(c.shared_load_transactions, 1);
        assert_eq!(c.syncs, 1);
    }

    #[test]
    fn sampled_run_scales_counters() {
        let (plan, init) = copy_kernel();
        let mut full = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
        full.run_plan(&plan);
        let mut sampled = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
        sampled.run_plan_sampled(&plan, 2);
        // 2 of 4 identical blocks sampled, scaled by 2: equal totals.
        assert_eq!(sampled.counters().gld_inst, full.counters().gld_inst);
        assert_eq!(
            sampled.counters().gld_transactions,
            full.counters().gld_transactions
        );
        assert_eq!(sampled.counters().launches, 1);
    }

    #[test]
    fn sampled_run_clamps_samples_to_block_count() {
        // `samples` beyond the launch's 4 blocks: every block runs exactly
        // once, the scale factor is 1.0, and counters equal the full run
        // (the documented per-launch clamp).
        let (plan, init) = copy_kernel();
        let mut full = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
        full.run_plan(&plan);
        let mut sampled = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
        sampled.run_plan_sampled(&plan, 100);
        assert_eq!(sampled.counters(), full.counters());
    }

    #[test]
    fn loop_with_uniform_bounds() {
        // Sum 4 values per thread via a loop: out[tx] = sum_{j<4} in[4*tx+j].
        let tx = IExpr::ThreadIdx(0);
        let kernel = Kernel {
            name: "loop".into(),
            block_dim: [8, 1, 1],
            shared: vec![],
            n_vars: 1,
            n_regs: 2,
            n_params: 0,
            body: vec![
                Stmt::Compute {
                    dst: 1,
                    expr: FExpr::Const(0.0),
                },
                Stmt::For {
                    var: 0,
                    lo: IExpr::Const(0),
                    hi: IExpr::Const(4),
                    step: 1,
                    body: vec![
                        Stmt::GlobalLoad {
                            dst: 0,
                            field: 0,
                            plane: IExpr::Const(0),
                            index: vec![tx.clone().scale(4).add(IExpr::Var(0))],
                        },
                        Stmt::Compute {
                            dst: 1,
                            expr: FExpr::Add(Box::new(FExpr::Reg(1)), Box::new(FExpr::Reg(0))),
                        },
                    ],
                },
                Stmt::GlobalStore {
                    field: 0,
                    plane: IExpr::Const(1),
                    index: vec![tx],
                    src: FExpr::Reg(1),
                },
            ],
        };
        let plan = LaunchPlan {
            kernels: vec![kernel],
            launches: vec![Launch {
                kernel: 0,
                params: vec![],
                blocks: 1,
            }],
            description: "loop sum".into(),
        };
        let mut g = Grid::zeros(&[32]);
        for i in 0..32 {
            g.set(&[i], 1.0);
        }
        let sim = simulate(DeviceConfig::gtx470(), &[g], 2, &plan);
        for i in 0..8 {
            assert_eq!(sim.plane(0, 1).get(&[i]), 4.0);
        }
    }
}
