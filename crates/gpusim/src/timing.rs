//! Roofline timing model: counters + device parameters → seconds,
//! GFLOPS and GStencils/s.
//!
//! Kernel time is the maximum over the resource components (the kernel is
//! bound by whichever engine saturates first), plus launch overheads. This
//! reproduces the qualitative structure of the paper's evaluation: space
//! tiling is DRAM-bound, hybrid tiling moves kernels toward the
//! shared-memory/issue roof (§6.2's observation that the optimized heat-3d
//! kernel becomes "mostly bound by shared memory").

use crate::counters::Counters;
use crate::device::DeviceConfig;

/// Per-resource time components (seconds).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TimeBreakdown {
    /// Arithmetic throughput component.
    pub compute: f64,
    /// Warp instruction issue component.
    pub issue: f64,
    /// Shared-memory transaction component.
    pub shared: f64,
    /// L2 bandwidth component.
    pub l2: f64,
    /// DRAM bandwidth component.
    pub dram: f64,
    /// Kernel launch overhead (additive).
    pub launch: f64,
    /// Total estimated wall time.
    pub total: f64,
}

impl TimeBreakdown {
    /// Name of the dominant (binding) resource.
    pub fn bound_by(&self) -> &'static str {
        let candidates = [
            ("compute", self.compute),
            ("issue", self.issue),
            ("shared", self.shared),
            ("l2", self.l2),
            ("dram", self.dram),
        ];
        candidates
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| *n)
            .unwrap_or("compute")
    }
}

/// Estimates execution time of the counted work on `device`.
pub fn estimate_time(counters: &Counters, device: &DeviceConfig) -> TimeBreakdown {
    let compute = counters.flops as f64 / device.peak_flops();
    let issue = counters.warp_instructions as f64 / device.peak_issue();
    // The L1 and shared memory share one SRAM port on Fermi: global
    // transactions (hit or miss) and shared transactions compete for it.
    let shared = (counters.shared_load_transactions
        + counters.shared_store_transactions
        + counters.l1_transactions) as f64
        / device.peak_shared_transactions();
    let l2 = counters.l2_bytes() as f64 / (device.l2_gbps * 1e9);
    let dram = counters.dram_bytes() as f64 / (device.dram_gbps * 1e9);
    let launch = counters.launches as f64 * device.launch_overhead_s;
    let total = compute.max(issue).max(shared).max(l2).max(dram) + launch;
    TimeBreakdown {
        compute,
        issue,
        shared,
        l2,
        dram,
        launch,
        total,
    }
}

/// Stencil throughput in GStencils/s (point updates per nanosecond).
pub fn gstencils_per_s(counters: &Counters, device: &DeviceConfig) -> f64 {
    let t = estimate_time(counters, device).total;
    if t <= 0.0 {
        return 0.0;
    }
    counters.point_updates as f64 / t / 1e9
}

/// Arithmetic throughput in GFLOPS.
pub fn gflops(counters: &Counters, device: &DeviceConfig) -> f64 {
    let t = estimate_time(counters, device).total;
    if t <= 0.0 {
        return 0.0;
    }
    counters.flops as f64 / t / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_bound_kernel() {
        let c = Counters {
            flops: 1_000,
            dram_read_transactions: 1_000_000_000,
            ..Counters::default()
        };
        let t = estimate_time(&c, &DeviceConfig::gtx470());
        assert_eq!(t.bound_by(), "dram");
        // 32 GB at 133.9 GB/s ≈ 0.239 s.
        assert!((t.total - 32.0 / 133.9).abs() < 1e-3);
    }

    #[test]
    fn compute_bound_kernel() {
        let c = Counters {
            flops: 10_000_000_000,
            dram_read_transactions: 10,
            ..Counters::default()
        };
        let t = estimate_time(&c, &DeviceConfig::gtx470());
        assert_eq!(t.bound_by(), "compute");
    }

    #[test]
    fn same_work_is_slower_on_mobile_part() {
        let c = Counters {
            flops: 1_000_000,
            dram_read_transactions: 1_000_000,
            point_updates: 1_000_000,
            ..Counters::default()
        };
        let fast = gstencils_per_s(&c, &DeviceConfig::gtx470());
        let slow = gstencils_per_s(&c, &DeviceConfig::nvs5200m());
        assert!(fast > 3.0 * slow);
    }

    #[test]
    fn launch_overhead_accumulates() {
        let c = Counters {
            launches: 1000,
            ..Counters::default()
        };
        let t = estimate_time(&c, &DeviceConfig::gtx470());
        assert!((t.launch - 4e-3).abs() < 1e-9);
    }
}
