//! Global memory: field/plane-addressed `f32` storage with per-warp
//! coalescing analysis and a set-associative write-allocate L2 model.

use crate::counters::Counters;
use stencil::Grid;

/// Global device memory: per field, a ring of time planes, each a dense
/// grid. Every `(field, plane)` pair has a 128-byte-aligned base address so
/// coalescing behaves as on real hardware.
#[derive(Clone, Debug)]
pub struct GlobalMem {
    fields: Vec<Vec<Grid>>,
    /// Base byte address of each (field, plane).
    bases: Vec<Vec<u64>>,
    dims: Vec<usize>,
}

impl GlobalMem {
    /// Allocates `planes` time planes per field, all seeded from `init`
    /// (mirroring how the oracle seeds its ring buffers).
    pub fn new(init: &[Grid], planes: usize) -> GlobalMem {
        GlobalMem::with_word_offset(init, planes, 0)
    }

    /// Like [`GlobalMem::new`], but translates every plane base by
    /// `word_offset` 4-byte words — the array translation of the paper's
    /// §4.2.3, used to make tile loads cache-line aligned.
    pub fn with_word_offset(init: &[Grid], planes: usize, word_offset: i64) -> GlobalMem {
        let dims = init.first().map(|g| g.dims().to_vec()).unwrap_or_default();
        let mut bases = Vec::new();
        let mut next: u64 = 0x1000 + (word_offset.rem_euclid(32) as u64) * 4;
        let fields: Vec<Vec<Grid>> = init
            .iter()
            .map(|g| {
                let mut pb = Vec::new();
                for _ in 0..planes {
                    pb.push(next);
                    next += (g.len() as u64 * 4).div_ceil(128) * 128 + 128;
                }
                bases.push(pb);
                vec![g.clone(); planes]
            })
            .collect();
        GlobalMem {
            fields,
            bases,
            dims,
        }
    }

    /// Grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Grid extents of one specific field (fields may differ in shape;
    /// [`GlobalMem::dims`] reports only the first field's).
    pub fn field_dims(&self, field: usize) -> &[usize] {
        self.fields[field]
            .first()
            .map(|g| g.dims())
            .unwrap_or_default()
    }

    /// Number of planes per field.
    pub fn planes(&self) -> usize {
        self.fields.first().map_or(0, Vec::len)
    }

    /// Read access to one plane.
    pub fn plane(&self, field: usize, plane: usize) -> &Grid {
        &self.fields[field][plane]
    }

    /// The byte address of an element (for coalescing analysis).
    pub fn byte_address(&self, field: usize, plane: usize, idx: &[i64]) -> u64 {
        self.bases[field][plane] + self.fields[field][plane].offset(idx) as u64 * 4
    }

    /// [`GlobalMem::byte_address`] with a precomputed plane-linear offset
    /// (the compiled executor resolves indices to flat offsets once).
    pub fn byte_address_flat(&self, field: usize, plane: usize, offset: usize) -> u64 {
        self.bases[field][plane] + offset as u64 * 4
    }

    /// Reads one element.
    pub fn read(&self, field: usize, plane: usize, idx: &[i64]) -> f32 {
        self.fields[field][plane].get(idx)
    }

    /// Writes one element.
    pub fn write(&mut self, field: usize, plane: usize, idx: &[i64], v: f32) {
        self.fields[field][plane].set(idx, v);
    }

    /// Row-major linear offset of an element within its plane (the key
    /// used by the parallel executor's write logs).
    pub fn flat_offset(&self, field: usize, plane: usize, idx: &[i64]) -> usize {
        self.fields[field][plane].offset(idx)
    }

    /// Reads one element by plane-linear offset.
    pub fn read_flat(&self, field: usize, plane: usize, offset: usize) -> f32 {
        self.fields[field][plane].get_flat(offset)
    }

    /// Writes one element by plane-linear offset (replaying a block's
    /// write log during a parallel merge).
    pub fn write_flat(&mut self, field: usize, plane: usize, offset: usize, v: f32) {
        self.fields[field][plane].set_flat(offset, v);
    }
}

/// Set-associative, write-allocate, LRU L2 cache model with 128-byte lines.
#[derive(Clone, Debug)]
pub struct L2Cache {
    sets: Vec<Vec<(u64, u64)>>, // (line tag, lru stamp)
    ways: usize,
    n_sets: u64,
    stamp: u64,
}

impl L2Cache {
    /// Builds a cache of `capacity_bytes` with 16 ways and 128-byte lines.
    pub fn new(capacity_bytes: usize) -> L2Cache {
        let ways = 16;
        let n_sets = (capacity_bytes / (128 * ways)).max(1);
        L2Cache {
            sets: vec![Vec::new(); n_sets],
            ways,
            n_sets: n_sets as u64,
            stamp: 0,
        }
    }

    /// Empties the cache in place, keeping its allocation (the compiled
    /// executor reuses one pooled per-block L1 slice across blocks).
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stamp = 0;
    }

    /// Accesses the 128-byte line containing `addr`; returns `true` on hit.
    /// Misses allocate (write-allocate for stores as on Fermi).
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / 128;
        let set = (line % self.n_sets) as usize;
        self.stamp += 1;
        let entries = &mut self.sets[set];
        if let Some(e) = entries.iter_mut().find(|e| e.0 == line) {
            e.1 = self.stamp;
            return true;
        }
        if entries.len() >= self.ways {
            // Evict LRU.
            let lru = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("non-empty set");
            entries.swap_remove(lru);
        }
        entries.push((line, self.stamp));
        false
    }
}

/// One recorded access that reached the (shared) L2: the 128-byte segment
/// base address and whether it was a store. Worker threads of the parallel
/// executor log these instead of touching the shared cache; the log is
/// replayed in block order afterwards ([`replay_l2`]), so DRAM hit/miss
/// counters come out bit-exact with the sequential path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct L2Access {
    /// 128-byte-aligned segment base address.
    pub segment: u64,
    /// `true` for a store, `false` for a load.
    pub store: bool,
}

/// Deduplicated, sorted 128-byte segments of one warp's addresses,
/// written into `buf` — a warp has at most 32 lanes, so the segments fit
/// on the stack and the hot path stays allocation-free. Returns the
/// filled prefix.
fn warp_segments<'a>(addrs: &[u64], buf: &'a mut [u64; 32]) -> &'a [u64] {
    assert!(addrs.len() <= 32, "a warp has at most 32 lanes");
    for (b, a) in buf.iter_mut().zip(addrs) {
        *b = *a / 128;
    }
    let seg = &mut buf[..addrs.len()];
    seg.sort_unstable();
    let mut m = 0;
    for i in 0..addrs.len() {
        if m == 0 || buf[i] != buf[m - 1] {
            buf[m] = buf[i];
            m += 1;
        }
    }
    &buf[..m]
}

/// Coalesces one warp's worth of byte addresses into 128-byte segments and
/// charges the counters for a *load*. `l1` is the per-SM first-level cache
/// (Fermi's 16 KB configuration): L1 hits cost only the load transaction;
/// misses go through L2 and possibly DRAM. Returns the number of segments.
pub fn charge_warp_load(
    counters: &mut Counters,
    l1: &mut L2Cache,
    l2: &mut L2Cache,
    addrs: &[u64],
) -> u64 {
    if addrs.is_empty() {
        return 0;
    }
    counters.gld_inst += addrs.len() as u64;
    counters.gld_requested_bytes += addrs.len() as u64 * 4;
    let mut buf = [0u64; 32];
    let segments = warp_segments(addrs, &mut buf);
    counters.gld_transactions += segments.len() as u64;
    counters.l1_transactions += segments.len() as u64;
    for seg in segments {
        if l1.access(seg * 128) {
            continue;
        }
        // Each 128-byte segment is 4 L2 sectors of 32 bytes.
        counters.l2_read_transactions += 4;
        if !l2.access(seg * 128) {
            counters.dram_read_transactions += 4;
        }
    }
    segments.len() as u64
}

/// Coalesces and charges a warp *store*.
pub fn charge_warp_store(counters: &mut Counters, l2: &mut L2Cache, addrs: &[u64]) -> u64 {
    if addrs.is_empty() {
        return 0;
    }
    counters.gst_inst += addrs.len() as u64;
    let mut buf = [0u64; 32];
    let segments = warp_segments(addrs, &mut buf);
    counters.gst_transactions += segments.len() as u64;
    counters.l1_transactions += segments.len() as u64;
    for seg in segments {
        counters.l2_write_transactions += 4;
        if !l2.access(seg * 128) {
            // Write-allocate miss: the line is fetched... unless the warp
            // fully overwrites it. Stencil stores are dense, so model the
            // common case: dirty data eventually reaches DRAM.
            counters.dram_write_transactions += 4;
        }
    }
    segments.len() as u64
}

/// [`charge_warp_load`] for the parallel executor: identical accounting
/// except that the shared L2 is not consulted — L1-missing segments are
/// appended to `log` for a later in-order [`replay_l2`]. Everything
/// except the DRAM counters is already exact here, because
/// `l2_read_transactions` increments on every L1 miss regardless of L2
/// state and the L1 is private to the block.
pub fn charge_warp_load_logged(
    counters: &mut Counters,
    l1: &mut L2Cache,
    log: &mut Vec<L2Access>,
    addrs: &[u64],
) -> u64 {
    if addrs.is_empty() {
        return 0;
    }
    counters.gld_inst += addrs.len() as u64;
    counters.gld_requested_bytes += addrs.len() as u64 * 4;
    let mut buf = [0u64; 32];
    let segments = warp_segments(addrs, &mut buf);
    counters.gld_transactions += segments.len() as u64;
    counters.l1_transactions += segments.len() as u64;
    for seg in segments {
        if l1.access(seg * 128) {
            continue;
        }
        counters.l2_read_transactions += 4;
        log.push(L2Access {
            segment: seg * 128,
            store: false,
        });
    }
    segments.len() as u64
}

/// [`charge_warp_store`] for the parallel executor; see
/// [`charge_warp_load_logged`].
pub fn charge_warp_store_logged(
    counters: &mut Counters,
    log: &mut Vec<L2Access>,
    addrs: &[u64],
) -> u64 {
    if addrs.is_empty() {
        return 0;
    }
    counters.gst_inst += addrs.len() as u64;
    let mut buf = [0u64; 32];
    let segments = warp_segments(addrs, &mut buf);
    counters.gst_transactions += segments.len() as u64;
    counters.l1_transactions += segments.len() as u64;
    for seg in segments {
        counters.l2_write_transactions += 4;
        log.push(L2Access {
            segment: seg * 128,
            store: true,
        });
    }
    segments.len() as u64
}

/// Replays a block's L2 access log through the shared cache, charging the
/// DRAM counters for misses. Called with blocks in ascending index order,
/// this reproduces the exact access sequence — and therefore the exact
/// hit/miss outcome — of the sequential executor.
pub fn replay_l2(counters: &mut Counters, l2: &mut L2Cache, log: &[L2Access]) {
    for acc in log {
        if !l2.access(acc.segment) {
            if acc.store {
                counters.dram_write_transactions += 4;
            } else {
                counters.dram_read_transactions += 4;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Grid {
        Grid::zeros(&[n])
    }

    #[test]
    fn plane_bases_are_aligned_and_disjoint() {
        let m = GlobalMem::new(&[grid(100), grid(100)], 2);
        let a = m.byte_address(0, 0, &[0]);
        let b = m.byte_address(0, 1, &[0]);
        let c = m.byte_address(1, 0, &[0]);
        assert_eq!(a % 128, 0);
        assert_eq!(b % 128, 0);
        assert!(b >= a + 400);
        assert!(c > b);
    }

    #[test]
    fn contiguous_warp_load_is_one_segment() {
        let m = GlobalMem::new(&[grid(1024)], 1);
        let mut c = Counters::default();
        let mut l2 = L2Cache::new(64 * 1024);
        let addrs: Vec<u64> = (0..32).map(|i| m.byte_address(0, 0, &[i])).collect();
        let mut l1 = L2Cache::new(4 * 1024);
        let segs = charge_warp_load(&mut c, &mut l1, &mut l2, &addrs);
        assert_eq!(segs, 1);
        assert_eq!(c.gld_transactions, 1);
        assert_eq!(c.gld_inst, 32);
        assert_eq!(c.gld_efficiency(), 1.0);
    }

    #[test]
    fn strided_warp_load_fans_out() {
        let m = GlobalMem::new(&[grid(32 * 64)], 1);
        let mut c = Counters::default();
        let mut l2 = L2Cache::new(64 * 1024);
        // Stride 64 floats = 256 bytes: every lane its own segment.
        let addrs: Vec<u64> = (0..32).map(|i| m.byte_address(0, 0, &[i * 64])).collect();
        let mut l1 = L2Cache::new(1024);
        let segs = charge_warp_load(&mut c, &mut l1, &mut l2, &addrs);
        assert_eq!(segs, 32);
        assert!(c.gld_efficiency() < 0.04);
    }

    #[test]
    fn l2_hits_avoid_dram() {
        let m = GlobalMem::new(&[grid(1024)], 1);
        let mut c = Counters::default();
        let mut l2 = L2Cache::new(64 * 1024);
        let addrs: Vec<u64> = (0..32).map(|i| m.byte_address(0, 0, &[i])).collect();
        let mut l1 = L2Cache::new(4 * 1024);
        charge_warp_load(&mut c, &mut l1, &mut l2, &addrs);
        let dram_first = c.dram_read_transactions;
        assert_eq!(c.l2_read_transactions, 4, "first access reaches L2");
        charge_warp_load(&mut c, &mut l1, &mut l2, &addrs);
        assert_eq!(
            c.dram_read_transactions, dram_first,
            "second access hits L1"
        );
        assert_eq!(c.l2_read_transactions, 4, "L1 absorbs the repeat");
    }

    #[test]
    fn l2_capacity_eviction() {
        let mut l2 = L2Cache::new(2 * 1024); // 16 lines
        for i in 0..64u64 {
            l2.access(i * 128);
        }
        // The first line has long been evicted.
        assert!(!l2.access(0));
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = GlobalMem::new(&[grid(16)], 2);
        m.write(0, 1, &[3], 7.5);
        assert_eq!(m.read(0, 1, &[3]), 7.5);
        assert_eq!(m.read(0, 0, &[3]), 0.0);
    }

    #[test]
    fn flat_access_matches_indexed() {
        let mut m = GlobalMem::new(&[Grid::zeros(&[4, 8])], 2);
        let off = m.flat_offset(0, 1, &[2, 5]);
        m.write_flat(0, 1, off, 9.25);
        assert_eq!(m.read(0, 1, &[2, 5]), 9.25);
        assert_eq!(m.read_flat(0, 1, off), 9.25);
    }

    #[test]
    fn logged_charges_replay_to_sequential_counters() {
        // The same access stream, charged directly vs. logged-then-replayed,
        // must produce identical counters (the parallel executor's
        // bit-exactness hinges on this).
        let m = GlobalMem::new(&[grid(4096)], 1);
        let warps: Vec<Vec<u64>> = (0..8)
            .map(|w| {
                (0..32)
                    .map(|i| m.byte_address(0, 0, &[(w * 67 + i * 3) % 4096]))
                    .collect()
            })
            .collect();

        let mut seq = Counters::default();
        let mut seq_l1 = L2Cache::new(2 * 1024);
        let mut seq_l2 = L2Cache::new(8 * 1024);
        for (i, addrs) in warps.iter().enumerate() {
            if i % 2 == 0 {
                charge_warp_load(&mut seq, &mut seq_l1, &mut seq_l2, addrs);
            } else {
                charge_warp_store(&mut seq, &mut seq_l2, addrs);
            }
        }

        let mut par = Counters::default();
        let mut par_l1 = L2Cache::new(2 * 1024);
        let mut par_l2 = L2Cache::new(8 * 1024);
        let mut log = Vec::new();
        for (i, addrs) in warps.iter().enumerate() {
            if i % 2 == 0 {
                charge_warp_load_logged(&mut par, &mut par_l1, &mut log, addrs);
            } else {
                charge_warp_store_logged(&mut par, &mut log, addrs);
            }
        }
        replay_l2(&mut par, &mut par_l2, &log);
        assert_eq!(seq, par);
    }
}
