//! Device configurations for the two GPUs of the paper's evaluation.

/// Architectural parameters of a simulated device.
///
/// Numbers follow the public specifications of the respective boards; the
/// L2 bandwidth is the usual ~4x DRAM rule of thumb for Fermi-class parts.
#[derive(Clone, PartialEq, Debug)]
pub struct DeviceConfig {
    /// Marketing name.
    pub name: String,
    /// Hardware vendor (`"nvidia"`, `"amd"`, `"cpu"`, ...). Routing and
    /// autotuning-plan transfer treat a vendor mismatch as a different
    /// architecture family: cross-vendor devices never share warm-start
    /// plans even when their numeric parameters happen to be close.
    pub vendor: String,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// L2 bandwidth in GB/s.
    pub l2_gbps: f64,
    /// L2 capacity in bytes.
    pub l2_bytes: usize,
    /// Shared memory per block limit in bytes.
    pub shared_limit: usize,
    /// Kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
}

impl DeviceConfig {
    /// NVIDIA GeForce GTX 470 (Fermi GF100): 14 SMs x 32 cores, 1.215 GHz
    /// shader clock, 133.9 GB/s GDDR5, 640 KB L2.
    pub fn gtx470() -> DeviceConfig {
        DeviceConfig {
            name: "GTX 470".into(),
            vendor: "nvidia".into(),
            sms: 14,
            cores_per_sm: 32,
            clock_ghz: 1.215,
            dram_gbps: 133.9,
            l2_gbps: 500.0,
            l2_bytes: 640 * 1024,
            shared_limit: 48 * 1024,
            launch_overhead_s: 4e-6,
        }
    }

    /// NVIDIA NVS 5200M (Fermi GF108, mobile): 2 SMs x 48 cores, 1.344 GHz,
    /// 64-bit DDR3 at 14.3 GB/s, 128 KB L2.
    pub fn nvs5200m() -> DeviceConfig {
        DeviceConfig {
            name: "NVS 5200M".into(),
            vendor: "nvidia".into(),
            sms: 2,
            cores_per_sm: 48,
            clock_ghz: 1.344,
            dram_gbps: 14.3,
            l2_gbps: 60.0,
            l2_bytes: 128 * 1024,
            shared_limit: 48 * 1024,
            launch_overhead_s: 6e-6,
        }
    }

    /// Peak single-precision throughput in FLOP/s (1 FLOP/core/cycle; no
    /// FMA fusion credit, matching how stencil FLOPs are counted).
    pub fn peak_flops(&self) -> f64 {
        self.sms as f64 * self.cores_per_sm as f64 * self.clock_ghz * 1e9
    }

    /// Peak warp-instruction issue rate (1 per SM per cycle).
    pub fn peak_issue(&self) -> f64 {
        self.sms as f64 * self.clock_ghz * 1e9
    }

    /// Peak shared-memory transactions per second (one 128-byte
    /// bank-parallel transaction per SM per cycle).
    pub fn peak_shared_transactions(&self) -> f64 {
        self.sms as f64 * self.clock_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx470_outmuscles_nvs5200m() {
        let big = DeviceConfig::gtx470();
        let small = DeviceConfig::nvs5200m();
        assert!(big.peak_flops() > 4.0 * small.peak_flops());
        assert!(big.dram_gbps > 8.0 * small.dram_gbps);
    }

    #[test]
    fn peak_flops_magnitude() {
        // 14 * 32 * 1.215e9 ≈ 0.54 TFLOP/s.
        let f = DeviceConfig::gtx470().peak_flops();
        assert!((5.4e11..5.5e11).contains(&f));
    }
}
