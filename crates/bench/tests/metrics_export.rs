//! Contract tests for `bench::metrics` — the Prometheus text-exposition
//! surface scraped by CI and ops dashboards.
//!
//! Four properties, per the serving-layer contract:
//!
//! 1. Label values are escaped per the exposition format (backslash,
//!    quote, newline) and the escaped output round-trips through the
//!    scrape-side parser.
//! 2. Counters never decrease across successive renders of a live
//!    service — a scraper computing rates must never see a reset
//!    mid-process.
//! 3. The fleet-level exposition is exactly the sum of its members:
//!    per-device series summed over the fleet equal the sums over each
//!    member's own status payload.
//! 4. A golden-file snapshot pins the full render of a fixed snapshot,
//!    so accidental format drift (renames, reordering, spacing) fails
//!    loudly instead of silently breaking dashboards.

use std::collections::HashMap;

use hybrid_bench::driver::DriverConfig;
use hybrid_bench::fleet::{FleetOptions, FleetRouter};
use hybrid_bench::json::Json;
use hybrid_bench::metrics::{
    escape_label, parse_exposition, render, render_state, DeviceMetrics, MetricsSnapshot,
};
use hybrid_bench::serve::ServeState;

const JACOBI_1D: &str =
    "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = 0.33f * (A[t][i-1] + A[t][i] + A[t][i+1]);\n";

fn cheap_cfg(tag: &str) -> DriverConfig {
    let dir = std::env::temp_dir().join(format!("metrics_export_{}_{}", std::process::id(), tag));
    DriverConfig {
        smoke: true,
        verify: false,
        cache_dir: None,
        ..DriverConfig::new(dir)
    }
}

fn compile_req(id: &str, device: Option<&str>) -> String {
    let mut pairs = vec![
        ("op".to_string(), Json::Str("compile".to_string())),
        ("id".to_string(), Json::Str(id.to_string())),
        ("program".to_string(), Json::Str(JACOBI_1D.to_string())),
        ("tune".to_string(), Json::Str("static".to_string())),
    ];
    if let Some(d) = device {
        pairs.push(("device".to_string(), Json::Str(d.to_string())));
    }
    Json::Obj(pairs).render_compact()
}

/// Parsed samples keyed by full series name (metric + label set).
fn samples_by_series(text: &str) -> HashMap<String, f64> {
    parse_exposition(text)
        .expect("render output must parse as text exposition format")
        .into_iter()
        .collect()
}

#[test]
fn label_values_are_escaped_and_round_trip() {
    assert_eq!(escape_label("plain"), "plain");
    assert_eq!(escape_label("back\\slash"), "back\\\\slash");
    assert_eq!(escape_label("quo\"te"), "quo\\\"te");
    assert_eq!(escape_label("new\nline"), "new\\nline");
    assert_eq!(
        escape_label("all\\three\"at\nonce"),
        "all\\\\three\\\"at\\nonce"
    );

    // End to end: a hostile device label renders into output the
    // scrape-side parser still accepts, on one line per sample.
    let snap = MetricsSnapshot {
        devices: vec![DeviceMetrics {
            device: "gtx\"480\\rev\nb".to_string(),
            requests: 3,
            ..DeviceMetrics::default()
        }],
        ..MetricsSnapshot::default()
    };
    let text = render(&snap);
    let samples = samples_by_series(&text);
    let series = "hybrid_requests_total{device=\"gtx\\\"480\\\\rev\\nb\"}";
    assert_eq!(samples.get(series), Some(&3.0), "in:\n{text}");
}

#[test]
fn counters_never_decrease_across_successive_renders() {
    let state = ServeState::new(cheap_cfg("monotonic"));
    let _ = state.handle_line(1, &compile_req("a", None)).unwrap();
    let _ = state.handle_line(2, "{\"op\":\"status\"}").unwrap();
    let first = samples_by_series(&render_state(&state));

    // More traffic of every flavor: a cache hit, an error, a status.
    let _ = state.handle_line(3, &compile_req("b", None)).unwrap();
    let _ = state.handle_line(4, "{\"op\":\"nope\"}").unwrap();
    let _ = state.handle_line(5, "{\"op\":\"status\"}").unwrap();
    let second = samples_by_series(&render_state(&state));

    let mut compared = 0;
    for (series, before) in &first {
        if !series.starts_with("hybrid_") || !series.contains("_total") {
            continue;
        }
        let after = second
            .get(series)
            .unwrap_or_else(|| panic!("counter series {series} vanished between renders"));
        assert!(after >= before, "{series} decreased: {before} -> {after}");
        compared += 1;
    }
    assert!(
        compared >= 5,
        "expected several counter families, saw {compared}"
    );
    // And the traffic demonstrably moved at least one of them.
    let requests = first
        .keys()
        .find(|s| s.starts_with("hybrid_requests_total{"))
        .unwrap();
    assert!(second[requests] > first[requests]);
}

#[test]
fn fleet_aggregate_equals_sum_over_member_payloads() {
    let dir = std::env::temp_dir().join(format!("metrics_export_{}_fleet", std::process::id()));
    let cfg = DriverConfig {
        smoke: true,
        verify: false,
        cache_dir: None,
        ..DriverConfig::new(dir)
    };
    let router = FleetRouter::new(cfg, FleetOptions::default());
    let _ = router.handle_line(1, &compile_req("a", None)).unwrap();
    let _ = router
        .handle_line(2, &compile_req("b", Some("nvs5200m")))
        .unwrap();
    let _ = router.handle_line(3, &compile_req("c", None)).unwrap();

    let text = render(&router.metrics_snapshot());
    let samples = parse_exposition(&text).unwrap();
    let fleet_sum = |metric: &str| -> u64 {
        samples
            .iter()
            .filter(|(s, _)| s.starts_with(&format!("{metric}{{")))
            .map(|(_, v)| *v as u64)
            .sum()
    };
    let member_sum = |key: &str| -> u64 {
        router
            .members()
            .iter()
            .map(|(_, m)| {
                m.status_payload()
                    .get(key)
                    .and_then(Json::as_u64)
                    .unwrap_or_else(|| panic!("member payload missing {key}"))
            })
            .sum()
    };

    assert_eq!(router.members().len(), 2, "two devices, two members");
    for (metric, key) in [
        ("hybrid_requests_total", "requests"),
        ("hybrid_ok_total", "ok"),
        ("hybrid_errors_total", "errors"),
        ("hybrid_contained_panics_total", "contained_panics"),
        ("hybrid_mem_cache_evictions_total", "mem_evictions"),
        ("hybrid_mem_cache_rebalances_total", "mem_rebalances"),
    ] {
        assert_eq!(
            fleet_sum(metric),
            member_sum(key),
            "fleet {metric} must equal the sum of member {key}"
        );
    }
    // Lookup outcomes are labeled {device, outcome}; hits + misses +
    // coalesced + bypasses must also reconcile against the members.
    let lookups = fleet_sum("hybrid_mem_cache_lookups_total");
    let member_lookups = member_sum("mem_hits")
        + member_sum("mem_misses")
        + member_sum("mem_coalesced")
        + member_sum("mem_bypasses");
    assert_eq!(lookups, member_lookups);
    // The fleet saw three requests in total across its members.
    assert_eq!(fleet_sum("hybrid_requests_total"), 3);
}

/// A fully-populated fixed snapshot: every family present, every
/// optional field set, one label needing escaping.
fn golden_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        uptime_ms: 123_456,
        sched_policy: "edf".to_string(),
        queue_depth: 2,
        queue_depth_peak: 17,
        deadline_misses: 4,
        edf_promotions: 9,
        auth_ok: 3,
        auth_failures: 1,
        auth_rejected: 2,
        max_devices: Some(8),
        devices: vec![
            DeviceMetrics {
                device: "gtx480".to_string(),
                requests: 100,
                ok: 90,
                errors: 10,
                contained_panics: 1,
                warm_starts: 6,
                warm_start_hits: 4,
                tune_simulations: 38,
                proxy_simulations: 21,
                tune_wall_ms: 950,
                backend_compiles: [80, 5, 3, 2],
                mem_entries: 12,
                mem_bytes: 4096,
                mem_cap_bytes: Some(65536),
                mem_hits: 70,
                mem_misses: 30,
                mem_coalesced: 5,
                mem_bypasses: 2,
                mem_cancelled_waits: 1,
                mem_evictions: 3,
                mem_rebalances: 2,
                hit_age_ms: Some((10, 50, 200)),
            },
            DeviceMetrics {
                device: "nvs\"5200m\\b".to_string(),
                requests: 7,
                ok: 7,
                errors: 0,
                contained_panics: 0,
                warm_starts: 0,
                warm_start_hits: 0,
                tune_simulations: 8,
                proxy_simulations: 0,
                tune_wall_ms: 12,
                backend_compiles: [7, 0, 0, 0],
                mem_entries: 3,
                mem_bytes: 512,
                mem_cap_bytes: Some(65536),
                mem_hits: 4,
                mem_misses: 3,
                mem_coalesced: 0,
                mem_bypasses: 0,
                mem_cancelled_waits: 0,
                mem_evictions: 0,
                mem_rebalances: 0,
                hit_age_ms: None,
            },
        ],
    }
}

#[test]
fn golden_file_pins_the_full_render() {
    let rendered = render(&golden_snapshot());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &rendered).unwrap();
    }
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        rendered, golden,
        "exposition format drifted from tests/golden/metrics.prom; \
         if the change is intentional, regenerate the golden file"
    );
    // The golden output itself must stay parseable.
    assert!(parse_exposition(golden).unwrap().len() >= 30);
}

#[test]
fn parser_rejects_malformed_exposition() {
    for bad in [
        "hybrid_requests_total{device=\"a\" 1\n", // unterminated label set
        "hybrid requests 1\n",                    // space in metric name
        "hybrid_requests_total notanumber\n",     // non-numeric value
        "hybrid_requests_total{device=a} 1\n",    // unquoted label value
    ] {
        assert!(parse_exposition(bad).is_err(), "accepted: {bad:?}");
    }
    // Comments and blank lines are fine.
    assert_eq!(
        parse_exposition("# HELP x y\n# TYPE x counter\n\nx 1\n").unwrap(),
        vec![("x".to_string(), 1.0)]
    );
}
