//! Property suite for the size-capped, device-sharded LRU behind the
//! `hybridd` in-memory plan cache ([`hybrid_bench::driver::MemCache`]).
//!
//! Random sequences of inserts (random-sized entries) and hits under a
//! small byte cap must preserve three invariants:
//!
//! 1. **cap** — total ready bytes ≤ cap after *every* operation;
//! 2. **recency** — the surviving entries are exactly the
//!    most-recently-used ones (checked against a reference LRU model on
//!    a single-shard cache, where the eviction order is total);
//! 3. **accounting** — the lookup counters stay disjoint and complete:
//!    `hits + misses + coalesced (+ bypasses + cancelled) == lookups`.
//!
//! The proptest stand-in generates deterministic inputs, so a failure
//! here reproduces with plain `cargo test`.

use hybrid_bench::driver::{mem_entry_bytes, MemCache, MemLookup};
use hybrid_tiling::cancel::CancelToken;
use hybrid_tiling::TileParams;
use proptest::prelude::*;

const DEVICE: &str = "dev|sms=14|test";

/// Inserts (or re-inserts after eviction) `key` with a program text of
/// `text_len` bytes. Returns the entry's byte cost.
fn insert(cache: &MemCache, key: &str, text_len: usize) -> u64 {
    let program = "p".repeat(text_len);
    let params = TileParams::new(1, &[3]);
    match cache.lookup_or_begin(key, DEVICE, &program, &CancelToken::never()) {
        MemLookup::Miss(guard) => guard.fulfill(&program, &params),
        MemLookup::Hit(_) => {}
        _ => panic!("unexpected lookup outcome for {key}"),
    }
    mem_entry_bytes(key, DEVICE, &program, &params)
}

/// Touches `key` (LRU recency bump) if present; returns whether it hit.
fn touch(cache: &MemCache, key: &str, text_len: usize) -> bool {
    let program = "p".repeat(text_len);
    match cache.lookup_or_begin(key, DEVICE, &program, &CancelToken::never()) {
        MemLookup::Hit(_) => true,
        MemLookup::Miss(guard) => {
            // The entry was evicted earlier: re-publishing keeps the
            // model and the cache in step.
            guard.fulfill(&program, &TileParams::new(1, &[3]));
            false
        }
        _ => panic!("unexpected lookup outcome for {key}"),
    }
}

/// Reference model of one shard: `(key, bytes)` in LRU→MRU order.
struct ModelLru {
    cap: u64,
    entries: Vec<(String, u64)>,
}

impl ModelLru {
    fn bytes(&self) -> u64 {
        self.entries.iter().map(|(_, b)| b).sum()
    }

    /// Mirrors `MemCacheGuard::fulfill` + eviction: append as MRU, then
    /// evict from the LRU end until the shard fits.
    fn insert(&mut self, key: &str, bytes: u64) {
        self.entries.retain(|(k, _)| k != key);
        self.entries.push((key.to_string(), bytes));
        while self.bytes() > self.cap {
            self.entries.remove(0);
        }
    }

    /// Mirrors a hit: move to the MRU end (if present).
    fn touch(&mut self, key: &str) -> bool {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(i) => {
                let e = self.entries.remove(i);
                self.entries.push(e);
                true
            }
            None => false,
        }
    }

    fn contains(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants 1 + 3 on the production shape (16 shards): the cap
    /// holds after every insert — including across adaptive budget
    /// rebalances forced mid-workload — and the counters always balance.
    #[test]
    fn cap_and_counter_invariants_hold_under_random_workloads(
        cap_kb in 1usize..4,
        ops in proptest::collection::vec((0usize..24, 0usize..3), 1..60),
    ) {
        let cap = cap_kb as u64 * 1024;
        let cache = MemCache::with_config(16, Some(cap));
        for (key_pick, op_kind) in ops {
            let key = format!("fp{key_pick:02}");
            // Entry sizes vary per key but are stable across re-inserts
            // of the same key (a changed program under one fingerprint
            // would be a collision bypass, a different code path).
            let text_len = 20 + key_pick * 17;
            match op_kind {
                0 => {
                    insert(&cache, &key, text_len);
                }
                1 => {
                    touch(&cache, &key, text_len);
                }
                // Forced rebalance: the demand-weighted budgets reshape
                // mid-workload, exactly like the production cadence.
                _ => cache.rebalance(),
            }
            // (1) the byte cap is a hard invariant after every op.
            prop_assert!(
                cache.bytes() <= cap,
                "cache holds {} bytes over the {} cap",
                cache.bytes(),
                cap
            );
            // Adaptive budgets always partition the cap exactly.
            prop_assert_eq!(cache.shard_caps().iter().sum::<u64>(), cap);
            // (3) disjoint, complete accounting.
            prop_assert_eq!(
                cache.lookups(),
                cache.hits()
                    + cache.misses()
                    + cache.coalesced()
                    + cache.bypasses()
                    + cache.cancelled_waits()
            );
        }
        // No eviction may lose byte accounting: an empty cache reports
        // zero bytes after evicting everything.
        prop_assert_eq!(cache.len() as u64 > 0, cache.bytes() > 0);
    }

    /// Invariant 2 on a single shard (total eviction order): after any
    /// op sequence the cache holds exactly the reference LRU's survivors
    /// — the most recently used entries — and nothing else.
    #[test]
    fn surviving_entries_match_a_reference_lru_exactly(
        cap in 600usize..2000,
        ops in proptest::collection::vec((0usize..12, 0usize..2), 1..50),
    ) {
        let cap = cap as u64;
        let cache = MemCache::with_config(1, Some(cap));
        let mut model = ModelLru { cap, entries: Vec::new() };
        for (key_pick, is_touch) in ops {
            let is_touch = is_touch == 1;
            let key = format!("fp{key_pick:02}");
            let text_len = 20 + key_pick * 29;
            if is_touch && model.contains(&key) {
                let hit = touch(&cache, &key, text_len);
                prop_assert!(hit, "model has {key} but the cache evicted it");
                model.touch(&key);
            } else {
                let bytes = insert(&cache, &key, text_len);
                model.insert(&key, bytes);
            }
            // The cache and the reference LRU agree on every key.
            for i in 0..12 {
                let k = format!("fp{i:02}");
                prop_assert_eq!(
                    cache.contains(DEVICE, &k),
                    model.contains(&k),
                    "presence of {} diverged from the reference LRU",
                    k
                );
            }
            prop_assert_eq!(cache.bytes(), model.bytes());
            prop_assert_eq!(cache.len(), model.entries.len());
        }
    }
}

/// Demand-weighted rebalancing: a shard that serves nearly all of the
/// hit traffic must end up with more than its even-split share of the
/// byte budget, while every shard keeps at least the floor and the caps
/// still partition the total exactly.
#[test]
fn hot_shard_earns_budget_after_rebalance() {
    let shards = 4usize;
    let cap = 4096u64;
    let cache = MemCache::with_config(shards, Some(cap));
    let even = cap / shards as u64;
    assert_eq!(cache.shard_caps(), vec![even; shards], "initial even split");

    // Seed a handful of keys, then hammer one of them: its shard
    // accumulates nearly all the demand mass.
    for i in 0..6 {
        insert(&cache, &format!("fp{i:02}"), 40 + i * 13);
    }
    // A miss re-publishes the entry, and both hits and fulfills count
    // as demand, so the loop accrues demand either way.
    for _ in 0..100 {
        touch(&cache, "fp00", 40);
    }

    let before = cache.rebalances();
    cache.rebalance();
    cache.rebalance();
    assert!(cache.rebalances() >= before + 2);

    let caps = cache.shard_caps();
    assert_eq!(caps.iter().sum::<u64>(), cap, "caps partition the total");
    let floor = MemCache::shard_floor(cap, shards);
    assert!(
        caps.iter().all(|&c| c >= floor),
        "every shard keeps the floor: {caps:?} (floor {floor})"
    );
    assert!(
        caps.iter().copied().max().unwrap() > even,
        "the hot shard outgrew the even split: {caps:?}"
    );
    assert!(cache.bytes() <= cap);
}

/// The counter identity from the issue, verbatim, on a workload with no
/// collisions and no cancellation: `hits + misses + coalesced ==
/// lookups`.
#[test]
fn issue_counter_identity_holds_without_collisions() {
    let cache = MemCache::with_config(16, Some(4096));
    for i in 0..20 {
        insert(&cache, &format!("fp{:02}", i % 7), 64 + i % 7);
    }
    for i in 0..20 {
        touch(&cache, &format!("fp{:02}", i % 7), 64 + i % 7);
    }
    assert_eq!(cache.bypasses(), 0);
    assert_eq!(cache.cancelled_waits(), 0);
    assert_eq!(
        cache.hits() + cache.misses() + cache.coalesced(),
        cache.lookups()
    );
}
