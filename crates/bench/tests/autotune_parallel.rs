//! Property: the racing autotune sweep is bit-identical to the
//! sequential one.
//!
//! Across random gallery stencils, random sub-spaces of the §6 tile
//! space, random shortlist widths, and a scorer that rejects a random
//! slice of candidates, [`autotune_parallel_cancellable`] at 1, 2, and 8
//! workers must reproduce the sequential [`autotune`] report exactly —
//! the same ranking (parameters AND bit-equal scores), the same
//! counters — because results are collected by static rank, never by
//! completion order. With the ladder disabled every scoring is full
//! fidelity (`full_simulated == simulated`); with it enabled the report
//! is still identical across worker counts and the two rungs partition
//! `simulated`.

use hybrid_tiling::cancel::CancelToken;
use hybrid_tiling::tilesize::autotune::{
    autotune, autotune_parallel_cancellable, AutotuneConfig, AutotuneReport,
};
use hybrid_tiling::tilesize::TileSizeModel;
use hybrid_tiling::SearchSpace;
use proptest::prelude::*;
use stencil::{gallery, StencilProgram};

fn stencil_pool() -> Vec<StencilProgram> {
    vec![
        gallery::jacobi2d(),
        gallery::laplacian2d(),
        gallery::heat2d(),
        gallery::contrived1d(),
        gallery::laplacian3d(),
    ]
}

/// A deterministic pure-function scorer: a fixed figure of merit per
/// model (so every sweep ranks identically), rejecting the candidates
/// whose static footprint lands on `reject_mod` (so the `rejected_scorer`
/// path is exercised too).
fn det_score(m: &TileSizeModel, reject_mod: u64) -> Option<f64> {
    if (m.iterations + m.smem_bytes).is_multiple_of(reject_mod) {
        return None;
    }
    Some(-m.ratio() + 0.001 * m.params.h as f64)
}

/// Full structural equality: ranking (params + bit-equal scores) and
/// every counter.
fn assert_reports_identical(tag: &str, a: &AutotuneReport, b: &AutotuneReport) {
    assert_eq!(a.ranked.len(), b.ranked.len(), "{tag}: ranked length");
    for (i, (x, y)) in a.ranked.iter().zip(&b.ranked).enumerate() {
        assert_eq!(x.model.params, y.model.params, "{tag}: rank {i} params");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{tag}: rank {i} score bits"
        );
    }
    assert_eq!(a.examined, b.examined, "{tag}: examined");
    assert_eq!(
        a.rejected_schedule, b.rejected_schedule,
        "{tag}: rejected_schedule"
    );
    assert_eq!(a.rejected_smem, b.rejected_smem, "{tag}: rejected_smem");
    assert_eq!(a.rejected_regs, b.rejected_regs, "{tag}: rejected_regs");
    assert_eq!(a.pruned, b.pruned, "{tag}: pruned");
    assert_eq!(a.shortlisted, b.shortlisted, "{tag}: shortlisted");
    assert_eq!(a.simulated, b.simulated, "{tag}: simulated");
    assert_eq!(
        a.proxy_simulated, b.proxy_simulated,
        "{tag}: proxy_simulated"
    );
    assert_eq!(a.full_simulated, b.full_simulated, "{tag}: full_simulated");
    assert_eq!(
        a.rejected_scorer, b.rejected_scorer,
        "{tag}: rejected_scorer"
    );
}

/// A random sub-space of the §6 sweep space, never empty in any axis.
fn subspace(h_pick: usize, w0_pick: usize, inner_pick: usize, n: usize) -> SearchSpace {
    let h_all = [vec![1], vec![1, 2], vec![0, 1, 2, 3]];
    let w0_all = [vec![1], vec![1, 3], vec![1, 3, 5]];
    let inner_all = [vec![32], vec![32, 64]];
    SearchSpace::for_dims(
        n,
        h_all[h_pick].clone(),
        w0_all[w0_pick].clone(),
        &[4],
        &inner_all[inner_pick],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ladder off: 1, 2, and 8 workers all reproduce the sequential
    /// report, and every scoring is full fidelity.
    #[test]
    fn parallel_sweep_matches_sequential_at_any_worker_count(
        pick in 0usize..5,
        h_pick in 0usize..3,
        w0_pick in 0usize..3,
        inner_pick in 0usize..2,
        top_k in 0usize..=4,
        reject_mod in 2usize..=9,
    ) {
        let program = stencil_pool().swap_remove(pick);
        let space = subspace(h_pick, w0_pick, inner_pick, program.spatial_dims());
        let cfg = AutotuneConfig {
            top_k,
            ..AutotuneConfig::fermi()
        };
        let seq = autotune(&program, &space, &cfg, |m| det_score(m, reject_mod as u64));
        prop_assert_eq!(seq.proxy_simulated, 0);
        prop_assert_eq!(seq.full_simulated, seq.simulated);
        for workers in [1usize, 2, 8] {
            let par = autotune_parallel_cancellable(
                &program,
                &space,
                &cfg,
                &CancelToken::never(),
                workers,
                |m: &TileSizeModel, _| det_score(m, reject_mod as u64),
            )
            .expect("a never-token cannot cancel the sweep");
            assert_reports_identical(
                &format!("{} @ {workers} workers", program.name()),
                &seq,
                &par,
            );
        }
    }

    /// Ladder on: the report is still bit-identical across worker
    /// counts, and the rungs partition the scoring counter.
    #[test]
    fn ladder_report_is_worker_count_invariant(
        pick in 0usize..5,
        h_pick in 0usize..3,
        w0_pick in 0usize..3,
        keep_bump in 0usize..3,
        reject_mod in 2usize..=9,
    ) {
        let program = stencil_pool().swap_remove(pick);
        let space = subspace(h_pick, w0_pick, 1, program.spatial_dims());
        let cfg = AutotuneConfig {
            proxy_frac: 0.5,
            keep_frac: 0.3 + 0.2 * keep_bump as f64,
            ..AutotuneConfig::fermi()
        };
        let one = autotune_parallel_cancellable(
            &program,
            &space,
            &cfg,
            &CancelToken::never(),
            1,
            |m: &TileSizeModel, _| det_score(m, reject_mod as u64),
        )
        .expect("a never-token cannot cancel the sweep");
        prop_assert_eq!(one.simulated, one.proxy_simulated + one.full_simulated);
        // More than one survivor scored => the ladder actually dropped
        // someone (keep_frac < 1 keeps a strict subset of 2+).
        if one.proxy_simulated > 1 {
            prop_assert!(one.full_simulated <= one.proxy_simulated);
        }
        for workers in [2usize, 8] {
            let par = autotune_parallel_cancellable(
                &program,
                &space,
                &cfg,
                &CancelToken::never(),
                workers,
                |m: &TileSizeModel, _| det_score(m, reject_mod as u64),
            )
            .expect("a never-token cannot cancel the sweep");
            assert_reports_identical(
                &format!("{} ladder @ {workers} workers", program.name()),
                &one,
                &par,
            );
        }
    }
}
