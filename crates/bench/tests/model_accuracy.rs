//! Accuracy of the analytical figure of merit behind model-guided
//! autotuning, end to end.
//!
//! Two properties keep the `top_k` shortlist honest:
//!
//! 1. **Retention** — over the full §6 sweep space, the analytical
//!    shortlist must retain the plan the exhaustive simulator sweep
//!    would have picked, for every gallery dimensionality. The model is
//!    allowed to reorder the also-rans; it is not allowed to drop the
//!    winner.
//!
//! 2. **Warm-start bit-identity** — a compile seeded with cross-device
//!    warm hints must emit the same plan as a cold model-guided sweep of
//!    the same program on the same device: hints are extra candidates
//!    under the same scorer, never a shortcut past it.

use gpusim::DeviceConfig;
use hybrid_bench::autotune::{default_top_k, model_gate_sample};
use hybrid_bench::driver::{compile_source_with, DriverConfig, TuneMode};
use stencil::gallery;

/// Over the full sweep space, the shortlist's winner matches the
/// exhaustive sweep's winner — one stencil per dimensionality so the
/// debug-mode test stays affordable (the 2-D gallery is swept
/// exhaustively every CI run by `autotune --model-gate`).
#[test]
fn shortlist_retains_the_exhaustive_simulator_best() {
    let device = DeviceConfig::gtx470();
    for program in [gallery::jacobi2d(), gallery::contrived1d()] {
        let s = model_gate_sample(&program, &device, 1);
        assert!(
            s.shortlist_simulations < s.exhaustive_simulations,
            "{}: shortlist must pay fewer scorings ({} vs {})",
            s.stencil,
            s.shortlist_simulations,
            s.exhaustive_simulations,
        );
        assert!(
            s.shortlist_simulations <= default_top_k(program.spatial_dims()),
            "{}: shortlist paid {} scorings for top_k {}",
            s.stencil,
            s.shortlist_simulations,
            default_top_k(program.spatial_dims()),
        );
        // Retention is bit-level: same winning score, not merely close.
        assert_eq!(
            s.shortlist_best.to_bits(),
            s.exhaustive_best.to_bits(),
            "{}: shortlist best {} dropped the exhaustive best {}",
            s.stencil,
            s.shortlist_best,
            s.exhaustive_best,
        );
    }
}

/// A warm-started compile (hints seeded from a *different* device's
/// plan) emits a plan bit-identical to a cold model-guided sweep on the
/// same device: re-verification scores hints under this device's model,
/// so a transferred plan can only win by actually being better here too.
#[test]
fn warm_started_compiles_match_cold_sweeps_bit_exactly() {
    let scratch = std::env::temp_dir().join(format!("model_accuracy_warm_{}", std::process::id()));
    let program = gallery::jacobi2d();
    let source = program.to_c_like();
    let base = DriverConfig {
        smoke: true,
        verify: false,
        cache_dir: None,
        tune: TuneMode::Simulated,
        top_k: 2,
        ..DriverConfig::new(scratch)
    };

    // The donor device sweeps on its own; its winning plan becomes the
    // hint a near-identical device receives when it joins cold.
    let donor_cfg = DriverConfig {
        device: DeviceConfig::gtx470(),
        ..base.clone()
    };
    let label = std::path::PathBuf::from("<model_accuracy>");
    let donor =
        compile_source_with("jacobi2d", &source, &label, &donor_cfg, None).expect("donor compile");

    let mut near = DeviceConfig::gtx470();
    near.clock_ghz *= 1.05;
    let cold_cfg = DriverConfig {
        device: near.clone(),
        ..base.clone()
    };
    let warm_cfg = DriverConfig {
        device: near,
        warm_hints: vec![(source.clone(), donor.params.clone())],
        ..base
    };
    let cold =
        compile_source_with("jacobi2d", &source, &label, &cold_cfg, None).expect("cold compile");
    let warm =
        compile_source_with("jacobi2d", &source, &label, &warm_cfg, None).expect("warm compile");

    assert!(warm.warm_start, "the hint matched this program");
    assert_eq!(
        warm.params, cold.params,
        "warm-started plan diverged from the cold sweep"
    );
    assert_eq!(
        (warm.kernels, warm.launches, warm.smem_bytes),
        (cold.kernels, cold.launches, cold.smem_bytes),
        "warm-started plan geometry diverged"
    );
    // The hint rides along with the shortlist; it may add at most one
    // extra scoring beyond the cold sweep's.
    assert!(
        warm.simulated <= cold.simulated + 1,
        "warm sweep paid {} scorings vs cold {}",
        warm.simulated,
        cold.simulated,
    );
}
