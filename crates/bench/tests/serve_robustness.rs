//! Abort-freedom and determinism of the compile pipeline and the
//! `hybridd` serve surface.
//!
//! Property 1: `compile_source_with` on *mutated* DSL sources always
//! returns a structured [`DriverError`] or a verified outcome — it never
//! panics, whatever the mutation produced.
//!
//! Property 2: `ServeState::handle_line` on *malformed or mutated JSON
//! request lines* always answers with a structured response object — the
//! service never dies mid-protocol.
//!
//! Property 3 (determinism): N concurrent clients issuing the same
//! requests against one service receive reports bit-identical to the
//! one-shot `hybridc` driver's `--report` entries for the same inputs.
//!
//! The proptest stand-in generates deterministic inputs, so a failure
//! here reproduces with plain `cargo test`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use hybrid_bench::driver::{compile_file, compile_source_with, outcome_json, DriverConfig};
use hybrid_bench::json::Json;
use hybrid_bench::serve::ServeState;
use proptest::prelude::*;

/// Valid seed programs the mutators start from (1-D and 2-D, constants,
/// multi-statement).
fn seeds() -> Vec<&'static str> {
    vec![
        "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    for (j = 1; j < N-1; j++)\n      A[t+1][i][j] = 0.25f * (A[t][i+1][j] + A[t][i-1][j] + A[t][i][j+1] + A[t][i][j-1]);\n",
        "const float w = 0.5f;\nfor (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = w * (A[t][i-1] + A[t][i+1]);\n",
        "for (t = 0; t < T; t++) {\n  for (i = 1; i < N-1; i++)\n    ey[t+1][i] = ey[t][i] - 0.5f * (hz[t][i] - hz[t][i-1]);\n  for (i = 1; i < N-1; i++)\n    hz[t+1][i] = hz[t][i] - 0.7f * (ey[t+1][i+1] - ey[t+1][i]);\n}\n",
    ]
}

const POOL: &[u8] = b"()[]{}=+-*/;<>,#._ \n\t0123456789abtizANw\"@$%&?";

/// A scratch config that keeps property cases cheap: smoke sweep, no
/// oracle run, no disk cache (mutations would pollute one directory).
fn cheap_cfg(tag: &str) -> DriverConfig {
    let dir = std::env::temp_dir().join(format!("serve_robustness_{}_{}", std::process::id(), tag));
    DriverConfig {
        smoke: true,
        verify: false,
        cache_dir: None,
        ..DriverConfig::new(dir)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mutated DSL through the full compile pipeline: typed error or
    /// outcome, never a panic, never a process abort.
    #[test]
    fn compile_of_mutated_sources_never_panics(
        seed in 0usize..3,
        kind in 0u8..3,
        pos_pick in 0usize..10_000,
        chr_pick in 0usize..POOL.len(),
    ) {
        let mut chars: Vec<char> = seeds()[seed].chars().collect();
        let pos = pos_pick % chars.len();
        let c = POOL[chr_pick] as char;
        match kind {
            0 => chars[pos] = c,
            1 => chars.insert(pos, c),
            _ => { chars.remove(pos); }
        }
        let mutated: String = chars.into_iter().collect();
        let cfg = cheap_cfg("mutated_dsl");
        let label = PathBuf::from("<prop>");
        let out = catch_unwind(AssertUnwindSafe(|| {
            compile_source_with("mutated", &mutated, &label, &cfg, None)
        }));
        // The property: the pipeline returned *some* Result. Both Ok and
        // every DriverError variant are legal; unwinding is not.
        prop_assert!(out.is_ok(), "compile panicked on mutation of seed {}", seed);
    }

    /// Mutated request lines against a live service: every non-blank line
    /// gets a response object with a seq and a status, and the state
    /// keeps serving afterwards.
    #[test]
    fn mutated_request_lines_always_get_structured_responses(
        kind in 0u8..3,
        pos_pick in 0usize..10_000,
        chr_pick in 0usize..POOL.len(),
    ) {
        let base = "{\"op\": \"compile\", \"name\": \"p\", \"program\": \"for (t = 0; t < T; t++)\\n  for (i = 1; i < N-1; i++)\\n    A[t+1][i] = A[t][i];\\n\", \"size\": [64], \"steps\": 4}";
        let mut chars: Vec<char> = base.chars().collect();
        let pos = pos_pick % chars.len();
        let c = POOL[chr_pick] as char;
        match kind {
            0 => chars[pos] = c,
            1 => chars.insert(pos, c),
            _ => { chars.remove(pos); }
        }
        let mutated: String = chars.into_iter().collect();
        let state = ServeState::new(cheap_cfg("mutated_req"));
        let resp = catch_unwind(AssertUnwindSafe(|| state.handle_line(1, &mutated)));
        prop_assert!(resp.is_ok(), "handle_line panicked on {mutated:?}");
        if let Ok(Some(resp)) = resp {
            prop_assert_eq!(resp.get("seq").and_then(Json::as_u64), Some(1));
            let status = resp.get("status").and_then(Json::as_str);
            prop_assert!(
                matches!(status, Some("ok" | "error" | "alive" | "stopping")),
                "unexpected status in {:?}", resp
            );
        }
        // The service survived: a well-formed status request still works.
        let status = state.handle_line(2, "{\"op\": \"status\"}").unwrap();
        prop_assert_eq!(status.get("status").and_then(Json::as_str), Some("alive"));
    }

    /// Extreme client deadlines — `u64::MAX` downwards — must saturate
    /// instead of overflowing `Instant + Duration` and panicking the
    /// worker behind the containment barrier.
    #[test]
    fn extreme_deadlines_saturate_instead_of_panicking(
        shift in 0u32..24,
        sub in 0u32..4,
    ) {
        let ms = (u64::MAX >> shift).saturating_sub(u64::from(sub));
        let req = format!(
            "{{\"op\": \"compile\", \"name\": \"p\", \"program\": \"for (t = 0; t < T; t++)\\n  for (i = 1; i < N-1; i++)\\n    A[t+1][i] = A[t][i];\\n\", \"size\": [64], \"steps\": 4, \"deadline_ms\": {ms}}}"
        );
        let state = ServeState::new(cheap_cfg("extreme_deadline"));
        let resp = state.handle_line(1, &req).unwrap();
        prop_assert_eq!(
            resp.get("status").and_then(Json::as_str),
            Some("ok"),
            "deadline_ms {} should be treated as far-future: {:?}", ms, resp
        );
        prop_assert_eq!(state.panic_count(), 0, "deadline_ms {} tripped the panic barrier", ms);
    }
}

/// N concurrent clients get bit-exact identical reports to the one-shot
/// driver: same per-stencil object (modulo the serve envelope and the
/// source label), across every client and against `compile_file`.
#[test]
fn concurrent_clients_match_one_shot_reports_bit_exactly() {
    let dir = std::env::temp_dir().join(format!("serve_concurrency_{}", std::process::id()));
    let stencil_dir = dir.join("stencils");
    std::fs::create_dir_all(&stencil_dir).unwrap();
    let jacobi = stencil_dir.join("jacobi.stencil");
    let heat = stencil_dir.join("heat1d.stencil");
    std::fs::write(&jacobi, seeds()[0]).unwrap();
    std::fs::write(&heat, seeds()[1]).unwrap();

    // Verification ON here: the equality claim covers the full pipeline.
    let cfg = DriverConfig {
        smoke: true,
        cache_dir: None,
        ..DriverConfig::new(dir.join("out"))
    };

    // One-shot reference entries, compiled through the plain driver (its
    // own fresh config, no shared state).
    let reference: Vec<Json> = [&jacobi, &heat]
        .iter()
        .map(|p| {
            let r = compile_file(p, &cfg);
            assert!(r.is_ok(), "{:?}", r.err().map(|e| e.to_string()));
            outcome_json(&p.display().to_string(), &r)
        })
        .collect();

    // Three clients fire the same path requests at one shared service.
    let state = ServeState::new(cfg);
    let request = |path: &Path| {
        Json::obj(vec![
            ("op", Json::str("compile")),
            ("path", Json::str(path.display().to_string())),
        ])
        .render_compact()
    };
    let responses: Vec<Vec<Json>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|client| {
                let state = &state;
                let jacobi = &jacobi;
                let heat = &heat;
                s.spawn(move || {
                    [jacobi.as_path(), heat.as_path()]
                        .iter()
                        .enumerate()
                        .map(|(i, p)| {
                            state
                                .handle_line((client * 2 + i + 1) as u64, &request(p))
                                .unwrap()
                        })
                        .collect::<Vec<Json>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Strip the serve envelope and cache provenance: `v`/`seq` frame the
    // wire, and which client won the single-flight race (and therefore
    // ran the sweep, `examined > 0`) is the only thing legitimately
    // differing between clients and the one-shot run.
    let strip = |v: &Json| -> Json {
        match v {
            Json::Obj(pairs) => Json::Obj(
                pairs
                    .iter()
                    .filter(|(k, _)| {
                        !matches!(
                            k.as_str(),
                            "v" | "seq"
                                | "id"
                                | "cache"
                                | "cache_hit"
                                | "examined"
                                | "shortlisted"
                                | "simulated"
                                | "proxy_simulated"
                                | "full_simulated"
                                | "tune_wall_ms"
                                | "warm_start"
                                | "warm_start_hit"
                        )
                    })
                    .cloned()
                    .collect(),
            ),
            other => other.clone(),
        }
    };

    for (c, client) in responses.iter().enumerate() {
        for (i, resp) in client.iter().enumerate() {
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("ok"),
                "client {c} request {i}: {resp:?}"
            );
            assert_eq!(
                strip(resp).render(),
                strip(&reference[i]).render(),
                "client {c} request {i} diverged from the one-shot report"
            );
        }
    }
    // The shared cache did its job: 2 distinct stencils, 6 requests —
    // the 4 non-tuners were immediate hits or coalesced single-flight
    // waits, depending on scheduling.
    assert_eq!(state.mem().misses(), 2);
    assert_eq!(state.mem().hits() + state.mem().coalesced(), 4);
    assert_eq!(state.mem().lookups(), 6);
}
