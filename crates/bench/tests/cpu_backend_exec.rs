//! The vectorized-CPU backend is *executable*, not just printable.
//!
//! Every stencil in the example gallery compiles under
//! `--backend cpu` with bit-exact verification on: the driver runs the
//! chosen plan through the `run_plan` interpreter and compares every
//! output cell against the reference oracle. A plan that merely
//! pretty-prints but mis-executes fails here, for all six examples.
//!
//! The emitted `.cpu.c` artifact is additionally fed to the system C
//! compiler (when one is installed) as a syntax/type check — the
//! whole-block lane-loop lowering must be valid C99, not pseudo-code.

use std::path::{Path, PathBuf};

use gpu_codegen::BackendKind;
use hybrid_bench::driver::{compile_file, DriverConfig};

fn example_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .join("examples/stencils")
}

fn cpu_cfg(tag: &str) -> DriverConfig {
    let dir = std::env::temp_dir().join(format!("cpu_backend_{}_{}", std::process::id(), tag));
    let mut cfg = DriverConfig::new(dir);
    cfg.smoke = true;
    cfg.cache_dir = None;
    cfg.backend = BackendKind::Cpu;
    cfg.opts = BackendKind::Cpu.backend().default_options();
    cfg
}

/// `cc -c` over an emitted artifact, if a C compiler is installed.
/// Returns `None` when there is no compiler to try (the bit-exactness
/// assertion above it has already run either way).
fn c_compiles(path: &Path) -> Option<bool> {
    let obj = path.with_extension("o");
    let out = std::process::Command::new("cc")
        .args(["-std=c99", "-Wall", "-c"])
        .arg(path)
        .arg("-o")
        .arg(&obj)
        .output()
        .ok()?;
    if !out.status.success() {
        eprintln!(
            "cc rejected {}:\n{}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
    Some(out.status.success())
}

/// All six gallery stencils execute bit-exact against the oracle under
/// the CPU backend, and their artifacts are well-formed C.
#[test]
fn cpu_backend_executes_the_whole_example_gallery_bit_exact() {
    let dir = example_dir();
    let names = [
        "blur2d",
        "fdtd2d",
        "gradient2d",
        "jacobi2d",
        "laplacian3d",
        "wave1d",
    ];
    for name in names {
        let cfg = cpu_cfg(name);
        let path = dir.join(format!("{name}.stencil"));
        let o = compile_file(&path, &cfg)
            .unwrap_or_else(|e| panic!("{name}: cpu backend compile failed: {e}"));
        assert!(
            o.verified,
            "{name}: cpu backend output must be bit-exact against the oracle"
        );
        assert_eq!(o.backend, BackendKind::Cpu, "{name}");
        let artifact = o.source_path.to_string_lossy().to_string();
        assert!(artifact.ends_with(".cpu.c"), "{name}: {artifact}");
        assert!(o.aux_path.is_none(), "{name}: cpu backend has no aux");
        let text = std::fs::read_to_string(&o.source_path).unwrap();
        assert!(
            text.contains("lane"),
            "{name}: artifact must carry the lane-loop lowering"
        );
        if let Some(ok) = c_compiles(&o.source_path) {
            assert!(ok, "{name}: emitted C must compile");
        }
    }
}
