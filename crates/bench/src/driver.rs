//! The `hybridc` compiler driver: compile user-supplied `.stencil` DSL
//! files through the full pipeline, end to end.
//!
//! For each input file the driver runs the ladder the gallery binaries
//! hard-code:
//!
//! 1. **parse** — [`stencil::parse::parse_stencil`] (the documented DSL
//!    grammar: comments, named constants, multi-statement time loops);
//! 2. **validate** — canonical-form checks (done by the parser) plus the
//!    driver's own supportability checks (1–3 spatial dimensions);
//! 3. **plan** — tile-size selection under the device's shared-memory and
//!    register budgets via [`hybrid_tiling::tilesize::autotune`], scored
//!    either statically (load-to-compute ratio, the default) or on the
//!    block-parallel simulator ([`TuneMode::Simulated`]);
//! 4. **codegen** — hybrid hexagonal/classical kernels emitted as CUDA-C
//!    (`<name>.cu`) and pseudo-PTX (`<name>.ptx`) into the output
//!    directory;
//! 5. **execute + verify** — the plan runs on [`gpusim::GpuSim`] and the
//!    result is compared *bit-for-bit* against the sequential
//!    [`stencil::ReferenceExecutor`] oracle.
//!
//! Tile-size selection is the expensive step, so chosen plans are kept in
//! a **content-addressed plan cache**: the key is a fingerprint of the
//! program's canonical rendering plus the device parameters, codegen
//! options and tuning mode; the value is a hand-rolled JSON entry (see
//! [`crate::json`]) holding the chosen tile sizes and a schedule summary.
//! Repeated compiles and batch runs skip re-tuning; a stale or colliding
//! entry (the stored program text is compared on load) degrades to a
//! cache miss, never to a wrong plan.
//!
//! Batch compiles fan out over a thread pool ([`compile_batch`]), and
//! [`report_json`] renders the machine-readable per-stencil result table
//! behind `hybridc --report`.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gpu_codegen::hybrid_gen::alignment_offset_words;
use gpu_codegen::{generate_hybrid, BackendKind, CodegenOptions};
use gpusim::{timing, DeviceConfig, GpuSim};
use hybrid_tiling::cancel::{CancelKind, CancelToken};
use hybrid_tiling::tilesize::autotune::{
    autotune_parallel_cancellable, estimated_regs_per_block, split_thread_budget, AutotuneConfig,
    AutotuneEntry, AutotuneError, Fidelity,
};
use hybrid_tiling::tilesize::{evaluate_tile, TileSizeModel};
use hybrid_tiling::TileParams;
use stencil::characteristics::{flop_count, load_count};
use stencil::parse::{parse_stencil, ParseError};
use stencil::{Grid, ReferenceExecutor, StencilProgram};

use crate::autotune::{autotune_workload, proxy_workload, simulate_score_with, sweep_space};
use crate::json::Json;
use crate::point_updates;

/// How tile sizes are scored during planning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TuneMode {
    /// Rank candidates by the §3.7 static load-to-compute ratio (fast;
    /// the default).
    Static,
    /// Score the shortlisted candidates on the block-parallel simulator
    /// (the §6 measurement pass; slower, workload-aware).
    Simulated,
}

impl TuneMode {
    /// Stable name used in fingerprints and reports.
    pub fn name(self) -> &'static str {
        match self {
            TuneMode::Static => "static",
            TuneMode::Simulated => "simulated",
        }
    }
}

/// Driver configuration shared by every file of one invocation.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Simulated device (budgets, timing model).
    pub device: DeviceConfig,
    /// Code-generation options (defaults to the full Table 4 ladder top).
    pub opts: CodegenOptions,
    /// Emission backend for artifacts (defaults to CUDA). Joins the
    /// plan fingerprint — a WGSL plan never aliases a CUDA one — and
    /// options the backend cannot lower are rejected up front with
    /// [`DriverError::Unsupported`].
    pub backend: BackendKind,
    /// Worker threads for one simulation ([`gpusim::parallel`]).
    pub sim_threads: usize,
    /// Concurrent file compiles in [`compile_batch`].
    pub jobs: usize,
    /// Tile-size scoring mode.
    pub tune: TuneMode,
    /// Shrink the sweep space (CI smoke mode).
    pub smoke: bool,
    /// Run the simulated plan and require bit-exact agreement with the
    /// reference executor.
    pub verify: bool,
    /// Where source artifacts are written (extension per backend:
    /// `.cu`+`.ptx`, `.wgsl`, `.hip.cpp`, `.cpu.c`).
    pub out_dir: PathBuf,
    /// Plan-cache directory; `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
    /// Override the execution workload (`dims`, `steps`); defaults to a
    /// small per-arity workload.
    pub workload: Option<(Vec<usize>, usize)>,
    /// Test/extension hook: replaces the tile-size scorer of both tune
    /// modes. The function pointer's address participates in the
    /// fingerprint, so plans chosen by a custom scorer never leak into
    /// caches keyed for the built-in scorers.
    pub scorer: Option<fn(&TileSizeModel) -> Option<f64>>,
    /// Cooperative cancellation for this compile: the tuning sweep (and
    /// the simulation/verification stages) check the token at stage and
    /// candidate boundaries and return
    /// [`DriverError::DeadlineExceeded`] / [`DriverError::Cancelled`]
    /// instead of running to completion. Defaults to
    /// [`CancelToken::never`].
    pub cancel: CancelToken,
    /// Age after which another process's tuning lock file (the
    /// cross-process single-flight marker next to the disk cache) is
    /// considered abandoned and stolen. The holder heartbeats the lock
    /// mtime between scored candidates, so a live sweep of any length
    /// keeps its lock; a premature steal only costs a redundant sweep,
    /// never a wrong plan (entries are stored atomically).
    pub lock_stale: Duration,
    /// Model-guided shortlist size: when > 0, only the `top_k`
    /// candidates ranked best by the analytical figure of merit
    /// ([`hybrid_tiling::tilesize::autotune::analytical_merit`]) reach
    /// the scorer. `0` (the default) scores every candidate surviving
    /// the budgets — the exhaustive oracle. Participates in the plan
    /// fingerprint, so shortlist and exhaustive plans never share a
    /// cache entry.
    pub top_k: usize,
    /// Candidate-level tuning workers: how many shortlist candidates are
    /// scored concurrently (each on `sim_threads` simulator threads).
    /// `0` (the default) auto-splits the host's thread budget between
    /// candidate workers and per-candidate simulator threads via
    /// [`hybrid_tiling::tilesize::autotune::split_thread_budget`] so
    /// `workers × sim_threads` never exceeds
    /// [`gpusim::resolve_sim_threads`]`(0)`. Deliberately **not** part of
    /// the plan fingerprint: the parallel sweep's ranking is bit-identical
    /// to the sequential one, so any worker count may share a cache entry.
    pub tune_workers: usize,
    /// Successive-halving fidelity ladder: when in `(0, 1)`, a proxy
    /// round first scores every shortlisted candidate on a workload
    /// scaled down by this fraction, and only the best
    /// `ceil(PROXY_KEEP_FRAC × scored)` survivors pay a full-fidelity
    /// simulation. `1.0` (the default) disables the ladder. Participates
    /// in the plan fingerprint — the ladder can change which plan wins,
    /// so proxy-tuned and exhaustively-tuned plans never share an entry.
    pub proxy: f64,
    /// Warm-start hints: `(canonical program text, tile params)` pairs
    /// seeded from a near device's cached plans (the fleet router fills
    /// this for cold members). Hints whose program text matches the
    /// compile are **re-verified** — scored through the same scorer as
    /// swept candidates, never copied blindly — and merged into the
    /// ranked table, so a transferred plan wins only if it actually
    /// scores best on *this* device. Not part of the fingerprint: hints
    /// can only add scored candidates, so the chosen plan is never worse
    /// than the unhinted sweep's.
    pub warm_hints: Vec<(String, TileParams)>,
}

impl DriverConfig {
    /// Defaults: GTX 470, best codegen options, static tuning, cache
    /// enabled under `out_dir/cache`, verification on.
    pub fn new(out_dir: impl Into<PathBuf>) -> DriverConfig {
        let out_dir = out_dir.into();
        let cache_dir = out_dir.join("cache");
        DriverConfig {
            device: DeviceConfig::gtx470(),
            opts: CodegenOptions::best(),
            backend: BackendKind::Cuda,
            sim_threads: 1,
            jobs: 1,
            tune: TuneMode::Static,
            smoke: false,
            verify: true,
            out_dir,
            cache_dir: Some(cache_dir),
            workload: None,
            scorer: None,
            cancel: CancelToken::never(),
            lock_stale: Duration::from_secs(120),
            top_k: 0,
            tune_workers: 0,
            proxy: 1.0,
            warm_hints: Vec::new(),
        }
    }
}

/// Fraction of proxy-scored candidates that survive the fidelity ladder
/// into the full-fidelity round (`ceil(0.4 × scored)`, at least one).
/// 0.4 rather than 0.5 so that odd survivor counts still clear a 2×
/// full-simulation reduction — `ceil(0.5 × 21) = 11` would only be 1.9×.
pub const PROXY_KEEP_FRAC: f64 = 0.4;

/// A failure compiling one stencil file.
#[derive(Clone, Debug)]
pub enum DriverError {
    /// Filesystem failure (path and cause).
    Io(String),
    /// The DSL did not parse or validate.
    Parse(ParseError),
    /// The program parsed but the pipeline cannot compile it.
    Unsupported(String),
    /// No tile-size candidate survived the budgets and feasibility checks.
    NoFeasibleTiling(String),
    /// The simulated result diverged from the reference executor, or the
    /// simulated schedule violated concurrent-tile independence.
    Verify(String),
    /// A pipeline stage panicked and the panic was contained at the
    /// worker/request boundary. Always a bug worth reporting — but a
    /// per-file error entry, never a dead service.
    Internal(String),
    /// The request's deadline passed before the pipeline finished; the
    /// worker stopped cooperatively at a stage/candidate boundary.
    DeadlineExceeded(String),
    /// The request was explicitly cancelled (the serve protocol's
    /// `cancel` op) before the pipeline finished.
    Cancelled(String),
}

impl DriverError {
    /// Stable machine-readable discriminant for reports and the serve
    /// protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            DriverError::Io(_) => "io",
            DriverError::Parse(_) => "parse",
            DriverError::Unsupported(_) => "unsupported",
            DriverError::NoFeasibleTiling(_) => "no_feasible_tiling",
            DriverError::Verify(_) => "verify",
            DriverError::Internal(_) => "internal",
            DriverError::DeadlineExceeded(_) => "deadline_exceeded",
            DriverError::Cancelled(_) => "cancelled",
        }
    }
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Io(m) => write!(f, "io error: {m}"),
            DriverError::Parse(e) => write!(f, "{e}"),
            DriverError::Unsupported(m) => write!(f, "unsupported stencil: {m}"),
            DriverError::NoFeasibleTiling(m) => write!(f, "no feasible tiling: {m}"),
            DriverError::Verify(m) => write!(f, "verification failed: {m}"),
            DriverError::Internal(m) => write!(f, "internal error: {m}"),
            DriverError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            DriverError::Cancelled(m) => write!(f, "cancelled: {m}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// Where a compile's tile plan came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheSource {
    /// Served by the shared in-memory plan cache (a `hybridd` hit, or a
    /// single-flight wait on a concurrent identical request).
    Memory,
    /// Loaded from the on-disk content-addressed cache.
    Disk,
    /// Freshly tuned this compile.
    Fresh,
}

impl CacheSource {
    /// Stable name used in reports (`"mem"` / `"disk"` / `"miss"`).
    pub fn name(self) -> &'static str {
        match self {
            CacheSource::Memory => "mem",
            CacheSource::Disk => "disk",
            CacheSource::Fresh => "miss",
        }
    }

    /// True when no tuning sweep ran.
    pub fn is_hit(self) -> bool {
        self != CacheSource::Fresh
    }
}

/// The result of compiling one stencil file end to end.
#[derive(Clone, Debug)]
pub struct CompileOutcome {
    /// Program name (sanitized file stem).
    pub name: String,
    /// Input path.
    pub source: PathBuf,
    /// Content-addressed plan-cache key.
    pub fingerprint: String,
    /// Chosen tile parameters.
    pub params: TileParams,
    /// True if the plan came from a cache (no tuning sweep ran).
    pub cache_hit: bool,
    /// Which cache layer (if any) served the plan.
    pub cache: CacheSource,
    /// Candidates examined by the tuning sweep (0 on a cache hit).
    pub examined: usize,
    /// Candidates surviving the model shortlist (0 on a cache hit; the
    /// whole feasible set when `top_k == 0`).
    pub shortlisted: usize,
    /// Scorer invocations, including warm-hint re-verifications and both
    /// fidelity-ladder rounds (0 on a cache hit).
    pub simulated: usize,
    /// Proxy-fidelity scorer invocations (0 with the ladder disabled or
    /// on a cache hit).
    pub proxy_simulated: usize,
    /// Full-fidelity scorer invocations; equals `simulated` minus the
    /// proxy round (0 on a cache hit).
    pub full_simulated: usize,
    /// Wall-clock milliseconds the tuning sweep took (0 on a cache hit
    /// — which is exactly why it is reported: cache-hit vs cold-tune
    /// cost becomes visible per request).
    pub tune_wall_ms: u64,
    /// True when a cross-device warm hint matched this program and was
    /// re-verified during tuning.
    pub warm_start: bool,
    /// True when the chosen plan's parameters came from a warm hint.
    pub warm_start_hit: bool,
    /// True if the bit-exact check against the oracle ran and passed
    /// (false only when `cfg.verify` is off).
    pub verified: bool,
    /// Simulated throughput.
    pub gstencils: f64,
    /// Estimated device seconds for the workload.
    pub seconds: f64,
    /// Thread-block launches executed.
    pub launches: u64,
    /// Kernels in the launch plan.
    pub kernels: usize,
    /// Largest per-kernel shared-memory footprint in bytes.
    pub smem_bytes: u64,
    /// Distinct loads per statement (Table 3 "Loads").
    pub loads: Vec<usize>,
    /// FLOPs per statement (Table 3 "FLOPs/Stencil").
    pub flops: Vec<usize>,
    /// Workload the plan was executed on.
    pub dims: Vec<usize>,
    /// Time steps executed.
    pub steps: usize,
    /// Backend that emitted the artifacts.
    pub backend: BackendKind,
    /// Emitted source artifact (extension per backend).
    pub source_path: PathBuf,
    /// Emitted secondary artifact, if the backend has one (the CUDA
    /// backend's pseudo-PTX).
    pub aux_path: Option<PathBuf>,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The **canonical device fingerprint**: every architectural parameter
/// of the [`DeviceConfig`], rendered in a fixed field order. Two
/// logically identical device descriptions — a named preset, or an
/// inline device object with its JSON keys in any order — always
/// resolve to the same fingerprint, so they share one cache shard and
/// one fleet member; two devices differing in *any* parameter (even
/// just the clock, which changes simulated tuning scores) key apart.
pub fn device_fingerprint(device: &DeviceConfig) -> String {
    format!(
        "{}|vendor={}|sms={}|cores={}|clock={}|dram={}|l2={}|l2b={}|smem={}|launch={}",
        device.name,
        device.vendor,
        device.sms,
        device.cores_per_sm,
        device.clock_ghz,
        device.dram_gbps,
        device.l2_gbps,
        device.l2_bytes,
        device.shared_limit,
        device.launch_overhead_s,
    )
}

/// The content-addressed cache key of `program` under `cfg`: everything
/// that influences tile-size selection is hashed — the canonical program
/// rendering, the full canonical device fingerprint (all architectural
/// parameters, not just the budgets: simulated scores depend on clocks
/// and bandwidths too), the codegen options, the tuning mode (smoke
/// sweeps search a smaller space, so they key separately), any workload
/// override (tuning scores candidates on the workload), and the fidelity
/// ladder's `proxy` fraction (the ladder can change which plan wins).
/// `tune_workers` is deliberately absent: the parallel sweep ranks
/// bit-identically to the sequential one, so every worker count shares
/// one cache entry.
pub fn fingerprint(program: &StencilProgram, cfg: &DriverConfig) -> String {
    let ident = format!(
        "{}|{}|{:?}|backend={}|{}|{}|{:?}|{:?}|k={}|proxy={}",
        program.to_c_like(),
        device_fingerprint(&cfg.device),
        cfg.opts,
        cfg.backend.name(),
        cfg.tune.name(),
        cfg.smoke,
        cfg.workload,
        cfg.scorer.map(|f| f as usize),
        cfg.top_k,
        cfg.proxy,
    );
    format!("{:016x}", fnv1a64(ident.as_bytes()))
}

/// Distance between two device descriptions: the sum of relative
/// differences over every numeric architectural parameter of
/// [`device_fingerprint`] (`|a−b| / max(|a|,|b|)`, so each parameter
/// contributes 0 for equal values and at most 1 for wildly different
/// ones). The name is deliberately excluded — a renamed but otherwise
/// identical device is distance 0. A **vendor** mismatch, by contrast,
/// adds a penalty far above any numeric distance: tuning plans do not
/// transfer across architecture families, so the fleet router must
/// never pick a cross-vendor member as "nearest" while a same-vendor
/// one exists. Used by the fleet router to pick the *nearest* warm
/// member when seeding a cold one's tuning shortlist.
pub fn device_distance(a: &DeviceConfig, b: &DeviceConfig) -> f64 {
    let vendor_penalty = if a.vendor == b.vendor { 0.0 } else { 1000.0 };
    fn rel(x: f64, y: f64) -> f64 {
        let denom = x.abs().max(y.abs());
        if denom == 0.0 {
            0.0
        } else {
            (x - y).abs() / denom
        }
    }
    vendor_penalty
        + rel(a.sms as f64, b.sms as f64)
        + rel(a.cores_per_sm as f64, b.cores_per_sm as f64)
        + rel(a.clock_ghz, b.clock_ghz)
        + rel(a.dram_gbps, b.dram_gbps)
        + rel(a.l2_gbps, b.l2_gbps)
        + rel(a.l2_bytes as f64, b.l2_bytes as f64)
        + rel(a.shared_limit as f64, b.shared_limit as f64)
        + rel(a.launch_overhead_s, b.launch_overhead_s)
}

/// Maps a cancellation into the driver's typed error for `what` (a
/// program name or fingerprint). Messages are deliberately free of
/// counts and timings so responses to identical cancelled requests are
/// bit-identical across runs.
fn cancel_error(kind: CancelKind, what: &str) -> DriverError {
    match kind {
        CancelKind::Deadline => {
            DriverError::DeadlineExceeded(format!("{what}: request deadline exceeded"))
        }
        CancelKind::Flag => DriverError::Cancelled(format!("{what}: cancelled by request")),
    }
}

/// Errors out if `token` has fired — the per-stage cancellation check.
fn check_cancel(token: &CancelToken, what: &str) -> Result<(), DriverError> {
    match token.cancelled() {
        Some(kind) => Err(cancel_error(kind, what)),
        None => Ok(()),
    }
}

/// Locks a possibly poisoned mutex: a panic that unwound through a
/// critical section (contained by the per-request `catch_unwind`
/// boundary) must not cascade into every later cache access.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Fixed per-entry bookkeeping overhead charged against the cache cap
/// (map key, timestamps, slot discriminant — a deliberate overestimate).
const MEM_ENTRY_OVERHEAD: u64 = 96;

/// The byte cost charged against the cache cap for one entry: the
/// retained strings (program text, fingerprints) plus the tile
/// parameters plus the fixed overhead. Public so eviction tests can
/// model the accounting exactly.
pub fn mem_entry_bytes(fp: &str, device_fp: &str, program: &str, params: &TileParams) -> u64 {
    fp.len() as u64
        + device_fp.len() as u64
        + program.len() as u64
        + 8 * (1 + params.w.len() as u64)
        + MEM_ENTRY_OVERHEAD
}

/// Splits `cap` bytes over `shards` budgets exactly: every budget gets
/// `cap / shards`, and the remainder goes one byte at a time to the
/// first budgets, so the sum is always exactly `cap`.
fn even_split(cap: u64, shards: usize) -> Vec<u64> {
    let n = shards.max(1) as u64;
    let base = cap / n;
    let rem = cap % n;
    (0..n).map(|i| base + u64::from(i < rem)).collect()
}

/// One resolved plan in the in-memory cache. The program text rides along
/// so fingerprint collisions degrade to a bypass, exactly like the
/// on-disk cache; the device fingerprint and timestamps drive the
/// per-shard LRU and the hit-age metric.
#[derive(Clone)]
struct MemEntry {
    program: String,
    device_fp: String,
    params: TileParams,
    /// Byte cost charged against the cap ([`mem_entry_bytes`]).
    bytes: u64,
    /// When the entry was published (hit age = now − inserted_at).
    inserted_at: Instant,
    /// Monotonic use tick; the per-shard LRU evicts the smallest.
    last_used: u64,
}

enum MemSlot {
    /// Some request is tuning this fingerprint right now.
    InFlight,
    /// A finished plan.
    Ready(MemEntry),
}

/// Recent hit-age samples kept per shard (the metric reads all shards,
/// so the fleet sees up to `shards x` this many samples).
const HIT_AGE_SAMPLES_PER_SHARD: usize = 64;

/// Fulfills between two budget rebalances ([`MemCache::rebalance`]): the
/// shard caps are recomputed from recent hit mass after this many plan
/// publishes. Small enough that a traffic shift re-shapes the budgets
/// within one burst, large enough that steady traffic pays nothing.
const REBALANCE_EVERY: u64 = 64;

struct ShardInner {
    map: HashMap<String, MemSlot>,
    /// Total byte cost of the Ready entries (in-flight markers are free).
    ready_bytes: u64,
    /// Bounded ring of recent hit ages (ms since insert). Kept per
    /// shard, under the shard lock already held on the hit path, so the
    /// metric never adds cross-shard contention.
    hit_ages: Vec<u64>,
    hit_age_next: usize,
    /// Recent hit mass (hits + coalesced + publishes since the last
    /// rebalance, decayed by half at each one): the demand signal that
    /// earns this shard its slice of the byte budget.
    demand: u64,
}

impl ShardInner {
    fn record_hit_age(&mut self, inserted_at: Instant) {
        let ms = inserted_at.elapsed().as_millis() as u64;
        if self.hit_ages.len() < HIT_AGE_SAMPLES_PER_SHARD {
            self.hit_ages.push(ms);
        } else {
            let next = self.hit_age_next;
            self.hit_ages[next] = ms;
        }
        self.hit_age_next = (self.hit_age_next + 1) % HIT_AGE_SAMPLES_PER_SHARD;
    }
}

struct MemShard {
    inner: Mutex<ShardInner>,
    cv: Condvar,
}

/// The shared in-memory plan cache layered above the on-disk cache by
/// the `hybridd`/`hybridfleet` compile service: a **device-sharded,
/// size-capped LRU**.
///
/// Lookups are **single-flight**: the first request for a fingerprint
/// marks it in flight and tunes; concurrent requests for the same
/// fingerprint block on a condvar until the plan is ready and then count
/// as coalesced hits, so N clients hitting the same stencil cost one
/// tuning sweep. A request that fails (or panics — the guard cleans up
/// on drop) wakes the waiters, which retune individually. Waits are
/// bounded: a waiter whose [`CancelToken`] fires stops waiting and gets
/// [`MemLookup::Cancelled`].
///
/// The map is sharded by the *device fingerprint plus plan fingerprint*,
/// so requests for different devices (and unrelated programs) never
/// contend on one lock. With a byte cap set, each shard owns an
/// **adaptive slice of the budget**: budgets start as an even split and
/// are periodically rebalanced in proportion to each shard's recent hit
/// mass (hits + coalesced hits + publishes, decayed), floor-clamped so a
/// cold shard can always admit an entry, with `Σ shard_caps == cap`
/// preserved exactly at every rebalance. Each shard evicts its
/// least-recently-used ready entries against its own slice — under the
/// same per-shard lock, so eviction never blocks other shards. In-flight
/// markers are never evicted.
///
/// Counters are disjoint: every lookup is exactly one of `hits`
/// (immediately ready), `coalesced` (ready after waiting on an in-flight
/// compile), `misses` (became the tuner), `bypasses` (fingerprint
/// collision), or `cancelled_waits`.
pub struct MemCache {
    shards: Vec<MemShard>,
    /// Total byte cap across all shards; `None` = unbounded.
    cap_bytes: Option<u64>,
    /// Current per-shard byte budgets. Starts as an even split of
    /// `cap_bytes` (exact: `Σ == cap`), reshaped by [`MemCache::rebalance`]
    /// toward the shards with the most recent hit mass. Meaningless when
    /// `cap_bytes` is `None`.
    shard_caps: Vec<AtomicU64>,
    /// Fulfills since the last rebalance (rebalance cadence clock).
    fulfills_since_rebalance: AtomicU64,
    /// One rebalance at a time; a second caller skips rather than queues.
    rebalance_gate: Mutex<()>,
    /// Monotonic LRU clock.
    tick: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    bypasses: AtomicU64,
    evictions: AtomicU64,
    cancelled_waits: AtomicU64,
    rebalances: AtomicU64,
}

/// Outcome of a memory-cache lookup.
pub enum MemLookup<'a> {
    /// Ready entry (possibly after waiting on an in-flight compile).
    Hit(TileParams),
    /// Nothing cached; the caller must tune and then
    /// [`MemCacheGuard::fulfill`] (or drop the guard, which wakes
    /// waiters to retune themselves).
    Miss(MemCacheGuard<'a>),
    /// Fingerprint collision with a different program: compile without
    /// touching the cache.
    Bypass,
    /// The caller's [`CancelToken`] fired while waiting on an in-flight
    /// compile of the same fingerprint.
    Cancelled(CancelKind),
}

/// The in-flight marker of a single-flight compile; see [`MemCache`].
pub struct MemCacheGuard<'a> {
    cache: &'a MemCache,
    fp: String,
    device_fp: String,
    done: bool,
}

impl MemCache {
    /// An unbounded cache with 16 shards (the PR-4 default).
    pub fn new() -> MemCache {
        MemCache::with_config(16, None)
    }

    /// A cache with `shards` shards capped at `cap_bytes` total bytes
    /// (`None` = unbounded). Budgets start as an exact even split
    /// (`Σ shard_caps == cap`) and adapt to demand from there; an entry
    /// larger than its shard's current slice is evicted immediately
    /// after insert (the cap is a hard invariant, not a hint).
    pub fn with_config(shards: usize, cap_bytes: Option<u64>) -> MemCache {
        let shards = shards.max(1);
        MemCache {
            shards: (0..shards)
                .map(|_| MemShard {
                    inner: Mutex::new(ShardInner {
                        map: HashMap::new(),
                        ready_bytes: 0,
                        hit_ages: Vec::new(),
                        hit_age_next: 0,
                        demand: 0,
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            shard_caps: even_split(cap_bytes.unwrap_or(0), shards)
                .into_iter()
                .map(AtomicU64::new)
                .collect(),
            fulfills_since_rebalance: AtomicU64::new(0),
            rebalance_gate: Mutex::new(()),
            cap_bytes,
            tick: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            cancelled_waits: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
        }
    }

    fn shard_idx(&self, device_fp: &str, fp: &str) -> usize {
        let mut h = fnv1a64(device_fp.as_bytes());
        h ^= fnv1a64(fp.as_bytes()).rotate_left(17);
        (h % self.shards.len() as u64) as usize
    }

    fn shard(&self, device_fp: &str, fp: &str) -> &MemShard {
        &self.shards[self.shard_idx(device_fp, fp)]
    }

    /// Evicts least-recently-used ready entries until the shard fits its
    /// current slice of the byte cap. Runs under the shard lock;
    /// in-flight markers are never touched.
    fn evict_shard_locked(&self, idx: usize, inner: &mut ShardInner) {
        if self.cap_bytes.is_none() {
            return;
        }
        let cap = self.shard_caps[idx].load(Ordering::Relaxed);
        while inner.ready_bytes > cap {
            // Select the LRU victim by reference; clone only the one
            // winning key (the scan runs under the shard lock).
            let victim = inner
                .map
                .iter()
                .filter_map(|(k, v)| match v {
                    MemSlot::Ready(e) => Some((k, e.last_used)),
                    MemSlot::InFlight => None,
                })
                .min_by_key(|&(_, tick)| tick)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else {
                break;
            };
            if let Some(MemSlot::Ready(e)) = inner.map.remove(&key) {
                inner.ready_bytes = inner.ready_bytes.saturating_sub(e.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Median age (milliseconds between insert and hit) over the most
    /// recent hits across all shards; `None` before the first hit.
    pub fn hit_age_p50_ms(&self) -> Option<u64> {
        self.hit_age_quantiles_ms().map(|(p50, _, _)| p50)
    }

    /// The (p50, p90, p99) hit-age quantiles in milliseconds over the
    /// most recent hits across all shards; `None` before the first hit.
    /// Quantile index = `q * (len - 1)` rounded to nearest, so a single
    /// sample reports itself at every quantile.
    pub fn hit_age_quantiles_ms(&self) -> Option<(u64, u64, u64)> {
        let mut ages: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| lock_ignore_poison(&s.inner).hit_ages.clone())
            .collect();
        if ages.is_empty() {
            return None;
        }
        ages.sort_unstable();
        let at = |q: f64| ages[((ages.len() - 1) as f64 * q).round() as usize];
        Some((at(0.5), at(0.9), at(0.99)))
    }

    /// Ready entries across all shards (in-flight markers not counted).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock_ignore_poison(&s.inner)
                    .map
                    .values()
                    .filter(|v| matches!(v, MemSlot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True when no ready entry exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total byte cost of the ready entries across all shards.
    pub fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| lock_ignore_poison(&s.inner).ready_bytes)
            .sum()
    }

    /// The configured byte cap (`None` = unbounded).
    pub fn cap_bytes(&self) -> Option<u64> {
        self.cap_bytes
    }

    /// Total lookups (`hits + coalesced + misses + bypasses +
    /// cancelled_waits`).
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Lookups that found a ready entry immediately.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to tune.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that waited on a concurrent identical request and then
    /// took its plan (disjoint from [`MemCache::hits`]).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Lookups that hit a fingerprint collision and bypassed the cache.
    pub fn bypasses(&self) -> u64 {
        self.bypasses.load(Ordering::Relaxed)
    }

    /// Ready entries evicted by the byte cap.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Waits on an in-flight compile abandoned because the waiter's
    /// cancel token fired.
    pub fn cancelled_waits(&self) -> u64 {
        self.cancelled_waits.load(Ordering::Relaxed)
    }

    /// Budget rebalances performed so far (see [`MemCache::rebalance`]).
    pub fn rebalances(&self) -> u64 {
        self.rebalances.load(Ordering::Relaxed)
    }

    /// The current per-shard byte budgets. With a cap set their sum is
    /// exactly [`MemCache::cap_bytes`] — the invariant every rebalance
    /// preserves; without a cap the values are meaningless zeros.
    pub fn shard_caps(&self) -> Vec<u64> {
        self.shard_caps
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// The floor any shard's budget is clamped to under a cap of `cap`:
    /// a quarter of the even split (at least one byte), so a shard going
    /// cold keeps enough budget to admit new entries and re-earn mass.
    pub fn shard_floor(cap: u64, shards: usize) -> u64 {
        (cap / (4 * shards.max(1) as u64)).max(1)
    }

    /// Recomputes the per-shard budgets from recent hit mass:
    /// `cap_i = floor + spare * demand_i / Σ demand`, where
    /// `floor` is [`MemCache::shard_floor`] and `spare = cap - shards*floor`,
    /// with the integer remainder granted to the highest-demand shard so
    /// `Σ shard_caps == cap` holds exactly. Demand decays by half at each
    /// rebalance, so budgets track *recent* traffic. Shards left over
    /// their shrunken slice are evicted down immediately — the total cap
    /// stays a hard invariant, never a hint.
    ///
    /// Runs automatically every `REBALANCE_EVERY` publishes; public so
    /// tests and operators can force a deterministic rebalance.
    pub fn rebalance(&self) {
        let Some(cap) = self.cap_bytes else {
            return;
        };
        // One rebalancer at a time; a concurrent caller's pass would
        // recompute the same budgets, so it just skips.
        let Ok(_gate) = self.rebalance_gate.try_lock() else {
            return;
        };
        let n = self.shards.len();
        let floor = MemCache::shard_floor(cap, n);
        let mut demand = Vec::with_capacity(n);
        for shard in &self.shards {
            let mut inner = lock_ignore_poison(&shard.inner);
            demand.push(inner.demand);
            inner.demand /= 2;
        }
        let total: u64 = demand.iter().sum();
        let caps = if cap < n as u64 * floor || total == 0 {
            // Degenerate cap or no signal yet: exact even split.
            even_split(cap, n)
        } else {
            let spare = cap - n as u64 * floor;
            let mut caps: Vec<u64> = demand
                .iter()
                .map(|&d| floor + (spare as u128 * d as u128 / total as u128) as u64)
                .collect();
            // Integer remainder to the hottest shard (first on ties)
            // keeps the sum exactly at cap.
            let assigned: u64 = caps.iter().sum();
            let hottest = demand
                .iter()
                .enumerate()
                .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
                .map(|(i, _)| i)
                .unwrap_or(0);
            caps[hottest] += cap - assigned;
            caps
        };
        for (slot, cap_i) in self.shard_caps.iter().zip(&caps) {
            slot.store(*cap_i, Ordering::Relaxed);
        }
        self.rebalances.fetch_add(1, Ordering::Relaxed);
        // Enforce the shrunken slices now, not at the next insert: the
        // total cap must hold the moment the budgets change.
        for (idx, shard) in self.shards.iter().enumerate() {
            let mut inner = lock_ignore_poison(&shard.inner);
            self.evict_shard_locked(idx, &mut inner);
        }
    }

    /// Ready entries whose device fingerprint equals `device_fp` — the
    /// per-device view behind cache-isolation assertions and fleet
    /// introspection.
    pub fn len_for_device(&self, device_fp: &str) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock_ignore_poison(&s.inner)
                    .map
                    .values()
                    .filter(|v| matches!(v, MemSlot::Ready(e) if e.device_fp == device_fp))
                    .count()
            })
            .sum()
    }

    /// Snapshot of the ready plans cached for `device_fp`, as
    /// `(program text, tile params)` pairs — the donor side of fleet
    /// warm-starting. No counters and no LRU touch (this is not a
    /// lookup); at most `limit` entries are returned, newest-used first,
    /// so a huge donor cache seeds a bounded hint list.
    pub fn device_plans(&self, device_fp: &str, limit: usize) -> Vec<(String, TileParams)> {
        let mut entries: Vec<(u64, String, TileParams)> = self
            .shards
            .iter()
            .flat_map(|s| {
                lock_ignore_poison(&s.inner)
                    .map
                    .values()
                    .filter_map(|v| match v {
                        MemSlot::Ready(e) if e.device_fp == device_fp => {
                            Some((e.last_used, e.program.clone(), e.params.clone()))
                        }
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.0));
        entries.truncate(limit);
        entries.into_iter().map(|(_, p, t)| (p, t)).collect()
    }

    /// Read-only presence probe (no counters, no LRU touch) — for tests
    /// and introspection only; real lookups go through
    /// [`MemCache::lookup_or_begin`].
    pub fn contains(&self, device_fp: &str, fp: &str) -> bool {
        let shard = self.shard(device_fp, fp);
        matches!(
            lock_ignore_poison(&shard.inner).map.get(fp),
            Some(MemSlot::Ready(_))
        )
    }

    /// Looks up `fp`, beginning a single-flight compile on a miss; see
    /// [`MemLookup`] for the four-way outcome. `cancel` bounds the wait
    /// on a concurrent in-flight compile of the same fingerprint.
    pub fn lookup_or_begin(
        &self,
        fp: &str,
        device_fp: &str,
        program: &str,
        cancel: &CancelToken,
    ) -> MemLookup<'_> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(device_fp, fp);
        let mut inner = lock_ignore_poison(&shard.inner);
        let mut waited = false;
        loop {
            match inner.map.get_mut(fp) {
                Some(MemSlot::Ready(e)) => {
                    if e.program != program {
                        self.bypasses.fetch_add(1, Ordering::Relaxed);
                        return MemLookup::Bypass;
                    }
                    e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                    let inserted_at = e.inserted_at;
                    let params = e.params.clone();
                    if waited {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    inner.record_hit_age(inserted_at);
                    inner.demand += 1;
                    return MemLookup::Hit(params);
                }
                Some(MemSlot::InFlight) => {
                    if let Some(kind) = cancel.cancelled() {
                        self.cancelled_waits.fetch_add(1, Ordering::Relaxed);
                        return MemLookup::Cancelled(kind);
                    }
                    waited = true;
                    // Bounded wait so a fired cancel token (deadline or
                    // flag) is observed within ~50 ms even if the tuner
                    // never finishes.
                    let wait = Duration::from_millis(50)
                        .min(cancel.remaining().unwrap_or(Duration::from_millis(50)))
                        .max(Duration::from_millis(1));
                    inner = shard
                        .cv
                        .wait_timeout(inner, wait)
                        .unwrap_or_else(|p| p.into_inner())
                        .0;
                }
                None => {
                    inner.map.insert(fp.to_string(), MemSlot::InFlight);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return MemLookup::Miss(MemCacheGuard {
                        cache: self,
                        fp: fp.to_string(),
                        device_fp: device_fp.to_string(),
                        done: false,
                    });
                }
            }
        }
    }
}

impl Default for MemCache {
    fn default() -> MemCache {
        MemCache::new()
    }
}

impl MemCacheGuard<'_> {
    /// Publishes the tuned plan, wakes every waiter, and evicts LRU
    /// entries if the shard now exceeds its slice of the byte cap. Every
    /// `REBALANCE_EVERY` publishes the per-shard budgets are reshaped
    /// toward recent demand ([`MemCache::rebalance`]).
    pub fn fulfill(mut self, program: &str, params: &TileParams) {
        let idx = self.cache.shard_idx(&self.device_fp, &self.fp);
        let shard = &self.cache.shards[idx];
        {
            let mut inner = lock_ignore_poison(&shard.inner);
            let bytes = mem_entry_bytes(&self.fp, &self.device_fp, program, params);
            inner.map.insert(
                self.fp.clone(),
                MemSlot::Ready(MemEntry {
                    program: program.to_string(),
                    device_fp: self.device_fp.clone(),
                    params: params.clone(),
                    bytes,
                    inserted_at: Instant::now(),
                    last_used: self.cache.tick.fetch_add(1, Ordering::Relaxed),
                }),
            );
            inner.ready_bytes += bytes;
            inner.demand += 1;
            self.cache.evict_shard_locked(idx, &mut inner);
        }
        self.done = true;
        shard.cv.notify_all();
        // The rebalance takes shard locks itself, so it must run after
        // this shard's lock is released.
        let published = self
            .cache
            .fulfills_since_rebalance
            .fetch_add(1, Ordering::Relaxed)
            + 1;
        if published >= REBALANCE_EVERY {
            self.cache
                .fulfills_since_rebalance
                .store(0, Ordering::Relaxed);
            self.cache.rebalance();
        }
    }
}

impl Drop for MemCacheGuard<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // The compile failed or panicked: clear the in-flight marker so
        // waiters stop blocking and tune for themselves.
        let shard = self.cache.shard(&self.device_fp, &self.fp);
        lock_ignore_poison(&shard.inner).map.remove(&self.fp);
        shard.cv.notify_all();
    }
}

/// The cross-process single-flight marker: a lock file next to the disk
/// cache entry (`<fp>.lock`). The holder tunes and stores the entry;
/// concurrent `hybridd` processes wait for the entry to appear instead
/// of tuning redundantly. A lock older than [`DriverConfig::lock_stale`]
/// (by mtime) is presumed abandoned — crashed process, dead container —
/// and stolen. A *live* holder keeps its lock by heartbeating the file's
/// mtime between scored candidates ([`DiskLock::heartbeat`]), so sweeps
/// longer than `lock_stale` are never stolen from under a live process.
/// Stealing from a crashed holder costs only a redundant sweep: entries
/// are stored by atomic rename, so the last writer wins with an
/// identical (deterministic) plan.
struct DiskLock {
    path: PathBuf,
    /// Tells the heartbeat ticker thread to exit on drop.
    stop: Arc<AtomicBool>,
    /// Dedicated heartbeat thread: refreshes the lock file's mtime at a
    /// quarter of `lock_stale` for as long as the guard lives. A ticker
    /// (rather than the old between-candidates hook) keeps the lock live
    /// even while a *single* candidate simulates for longer than
    /// `lock_stale` — and is the only sound option once candidates score
    /// concurrently, where no single thread reliably reaches a
    /// between-candidates checkpoint.
    ticker: Option<std::thread::JoinHandle<()>>,
}

/// Outcome of [`DiskLock::acquire`].
enum DiskFlight {
    /// We hold the lock; tune, store, then drop (removes the file).
    Acquired(DiskLock),
    /// Another process tuned this fingerprint while we waited; the
    /// entry is ready.
    Ready(TileParams),
    /// Lock-file machinery unavailable (exotic filesystem): tune
    /// without the cross-process guarantee rather than fail.
    Skip,
}

impl DiskLock {
    fn acquire(
        dir: &Path,
        fp: &str,
        program_text: &str,
        backend: BackendKind,
        cancel: &CancelToken,
        stale: Duration,
    ) -> Result<DiskFlight, DriverError> {
        fs::create_dir_all(dir).map_err(|e| DriverError::Io(format!("{}: {e}", dir.display())))?;
        let path = dir.join(format!("{fp}.lock"));
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    // Advisory content only; existence is the lock.
                    let _ = writeln!(f, "{}", std::process::id());
                    // Double-check: the previous holder may have stored
                    // the entry and unlocked between our disk-cache
                    // probe and this acquisition.
                    if let Some(params) = load_cached_params(dir, fp, program_text, backend) {
                        let _ = fs::remove_file(&path);
                        return Ok(DiskFlight::Ready(params));
                    }
                    return Ok(DiskFlight::Acquired(DiskLock::held(path, stale)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Another process is tuning. Its entry may already be
                    // there (it stores before unlocking).
                    if let Some(params) = load_cached_params(dir, fp, program_text, backend) {
                        return Ok(DiskFlight::Ready(params));
                    }
                    check_cancel(cancel, fp)?;
                    match fs::metadata(&path).and_then(|m| m.modified()) {
                        Ok(mtime) => {
                            if mtime.elapsed().unwrap_or(Duration::ZERO) > stale {
                                // Presumed abandoned: steal (remove + retry
                                // create_new; losing the remove race just
                                // loops).
                                let _ = fs::remove_file(&path);
                                continue;
                            }
                        }
                        // Lock vanished between open and stat: retry now.
                        Err(_) => continue,
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => return Ok(DiskFlight::Skip),
            }
        }
    }

    /// Wraps a freshly created lock file in a guard that owns a
    /// dedicated heartbeat ticker. The ticker rewrites the file (which
    /// refreshes its mtime — rewriting rather than `utime`-style touching
    /// keeps this on `std` alone) every `stale / 4`, so peers keep seeing
    /// a live holder no matter how long any single candidate simulates.
    /// Write failures are ignored: the worst case is a steal and one
    /// redundant sweep, never a wrong plan.
    fn held(path: PathBuf, stale: Duration) -> DiskLock {
        let stop = Arc::new(AtomicBool::new(false));
        let ticker = {
            let stop = Arc::clone(&stop);
            let path = path.clone();
            let period = stale / 4;
            // Sleep in short slices so dropping the guard never blocks
            // on a long heartbeat period.
            let slice = period.clamp(Duration::from_millis(1), Duration::from_millis(10));
            std::thread::spawn(move || {
                let mut last_touch = Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    if last_touch.elapsed() >= period {
                        let _ = fs::write(&path, format!("{}\n", std::process::id()));
                        last_touch = Instant::now();
                    }
                    std::thread::sleep(slice);
                }
            })
        };
        DiskLock {
            path,
            stop,
            ticker: Some(ticker),
        }
    }
}

impl Drop for DiskLock {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(ticker) = self.ticker.take() {
            let _ = ticker.join();
        }
        let _ = fs::remove_file(&self.path);
    }
}

/// Collects the `.stencil` files of `path`: a file is taken as-is, a
/// directory contributes every `*.stencil` inside it, sorted by name.
///
/// # Errors
///
/// Returns [`DriverError::Io`] when the path does not exist or a
/// directory contains no stencil files.
pub fn collect_stencil_files(path: &Path) -> Result<Vec<PathBuf>, DriverError> {
    if path.is_file() {
        return Ok(vec![path.to_path_buf()]);
    }
    if !path.is_dir() {
        return Err(DriverError::Io(format!(
            "{} does not exist",
            path.display()
        )));
    }
    let mut files: Vec<PathBuf> = fs::read_dir(path)
        .map_err(|e| DriverError::Io(format!("{}: {e}", path.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "stencil"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(DriverError::Io(format!(
            "{} contains no .stencil files",
            path.display()
        )));
    }
    Ok(files)
}

/// Maps a raw label to a legal program identifier: every
/// non-alphanumeric character becomes `_`, and a leading digit (or empty
/// input) gets an `s` prefix. Shared by file-stem naming here and the
/// serve protocol's inline `name` field, so the two paths can never
/// diverge on the same logical name.
pub fn sanitize_program_name(raw: &str) -> String {
    let mut name: String = raw
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if name.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        name.insert(0, 's');
    }
    name
}

/// Program name from a source path: the sanitized file stem.
fn program_name(path: &Path) -> String {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "stencil".to_string());
    sanitize_program_name(&stem)
}

/// Loads a cached plan for `fp`, returning the tile parameters if the
/// entry exists, parses, and was produced from the same program text
/// (fingerprint collisions degrade to a miss).
fn load_cached_params(
    dir: &Path,
    fp: &str,
    program_text: &str,
    backend: BackendKind,
) -> Option<TileParams> {
    let text = fs::read_to_string(dir.join(format!("{fp}.json"))).ok()?;
    let v = Json::parse(&text).ok()?;
    if v.get("program")?.as_str()? != program_text {
        return None;
    }
    // Legacy/corrupt entries without a backend field (or with the wrong
    // one — a hash collision would be required) degrade to a miss.
    if v.get("backend")?.as_str()? != backend.name() {
        return None;
    }
    let h = v.get("h")?.as_i64()?;
    let w: Option<Vec<i64>> = v.get("w")?.as_arr()?.iter().map(Json::as_i64).collect();
    let w = w?;
    // Guard the TileParams constructor's panics against a corrupt entry.
    if h < 0 || w.is_empty() || w[0] < 0 || w[1..].iter().any(|&x| x < 1) {
        return None;
    }
    Some(TileParams::new(h, &w))
}

/// Persists a freshly chosen plan. Written atomically (temp file +
/// rename) so concurrent batch workers can only ever observe complete
/// entries.
fn store_cached_params(
    dir: &Path,
    fp: &str,
    program: &StencilProgram,
    cfg: &DriverConfig,
    params: &TileParams,
    smem_bytes: u64,
    score: f64,
) -> Result<(), DriverError> {
    fs::create_dir_all(dir).map_err(|e| DriverError::Io(format!("{}: {e}", dir.display())))?;
    let entry = Json::obj(vec![
        ("fingerprint", Json::str(fp)),
        ("stencil", Json::str(program.name())),
        ("program", Json::str(program.to_c_like())),
        ("device", Json::str(cfg.device.name.clone())),
        ("backend", Json::str(cfg.backend.name())),
        ("tune", Json::str(cfg.tune.name())),
        ("h", Json::Int(params.h)),
        (
            "w",
            Json::Arr(params.w.iter().map(|&x| Json::Int(x)).collect()),
        ),
        (
            "schedule",
            Json::obj(vec![
                ("time_extent", Json::Int(params.time_extent())),
                ("statements", Json::UInt(program.num_statements() as u64)),
                ("smem_bytes", Json::UInt(smem_bytes)),
            ]),
        ),
        ("score", Json::Num(score)),
    ]);
    static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);
    let path = dir.join(format!("{fp}.json"));
    let tmp = dir.join(format!(
        "{fp}.json.tmp{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, entry.render())
        .map_err(|e| DriverError::Io(format!("{}: {e}", tmp.display())))?;
    fs::rename(&tmp, &path).map_err(|e| DriverError::Io(format!("{}: {e}", path.display())))?;
    Ok(())
}

/// Execution workload for one program: the explicit override, or a small
/// per-arity default (the autotune scoring workload).
fn workload(program: &StencilProgram, cfg: &DriverConfig) -> (Vec<usize>, usize) {
    cfg.workload
        .clone()
        .unwrap_or_else(|| autotune_workload(program))
}

/// Tuning-stage statistics for one fresh plan resolution (all zero /
/// false on a cache hit). `examined`/`shortlisted`/`simulated` mirror the
/// [`hybrid_tiling::tilesize::autotune::AutotuneReport`] counts (plus
/// re-verified warm hints in `simulated`); the warm flags record
/// cross-device plan transfer.
#[derive(Clone, Copy, Default, Debug)]
pub struct TuneStats {
    /// Candidates examined by the sweep.
    pub examined: usize,
    /// Candidates surviving the model shortlist (the whole feasible set
    /// when `top_k == 0`).
    pub shortlisted: usize,
    /// Scorer invocations — simulator runs in [`TuneMode::Simulated`] —
    /// including warm-hint re-verifications and both fidelity rungs.
    pub simulated: usize,
    /// Proxy-fidelity scorer invocations (the ladder's cheap round).
    pub proxy_simulated: usize,
    /// Full-fidelity scorer invocations, including warm-hint
    /// re-verifications. With the ladder disabled, equals `simulated`.
    pub full_simulated: usize,
    /// Wall-clock milliseconds of the whole tuning stage (sweep plus
    /// warm-hint re-verification), clamped to ≥ 1 so a fresh tune is
    /// always distinguishable from a cache hit's 0.
    pub tune_wall_ms: u64,
    /// At least one warm hint matched this program and entered
    /// re-verification.
    pub warm_start: bool,
    /// The winning plan's parameters came from a warm hint.
    pub warm_start_hit: bool,
}

/// Splits the host's simulator-thread budget for one tuning sweep:
/// explicit `cfg.tune_workers` wins (each worker simulating on
/// `cfg.sim_threads` threads); `0` auto-splits
/// [`gpusim::resolve_sim_threads`]`(0)` between candidate workers and
/// per-candidate simulator threads — candidate-level parallelism first —
/// so `workers × per_candidate` never exceeds the host budget.
fn tune_thread_split(cfg: &DriverConfig) -> (usize, usize) {
    if cfg.tune_workers > 0 {
        return (cfg.tune_workers, cfg.sim_threads.max(1));
    }
    let budget = gpusim::resolve_sim_threads(0);
    // The sweep's candidate count is bounded by the shortlist (or the
    // max_candidates cap), so don't spin up workers past it.
    let candidates = if cfg.top_k > 0 {
        cfg.top_k
    } else if cfg.smoke {
        4
    } else {
        12
    };
    split_thread_budget(budget, candidates)
}

/// Runs the tuning sweep and returns `(params, smem, score, stats)`.
/// The sweep observes `cfg.cancel` between candidate pickups; a fired
/// token becomes [`DriverError::DeadlineExceeded`] /
/// [`DriverError::Cancelled`]. Shortlist candidates are scored
/// concurrently on the [`tune_thread_split`] worker count, and when
/// `cfg.proxy < 1.0` a successive-halving proxy round (workload scaled
/// by `cfg.proxy`, survivors by [`PROXY_KEEP_FRAC`]) runs first — the
/// ranking still uses full-fidelity scores only.
///
/// Warm hints whose program text matches are **re-verified**: evaluated,
/// budget-checked, and scored through the same full-fidelity scorer as
/// swept candidates, then merged into the ranking. Hints are deduped
/// against the candidates that actually reached the ranking — with the
/// ladder on, the proxy round's survivors — so a hint matching a
/// non-survivor still gets its own full-fidelity chance. Hints can only
/// add candidates, so the chosen plan is never worse than the unhinted
/// sweep's — and with `top_k > 0` a transferred plan effectively costs
/// one extra simulation instead of a full sweep.
fn choose_params(
    program: &StencilProgram,
    cfg: &DriverConfig,
) -> Result<(TileParams, u64, f64, TuneStats), DriverError> {
    let tune_start = Instant::now();
    let space = sweep_space(program.spatial_dims(), cfg.smoke);
    let tune_cfg = AutotuneConfig {
        smem_limit: cfg.device.shared_limit as u64,
        verify_domain: None,
        max_candidates: if cfg.smoke { 4 } else { 12 },
        top_k: cfg.top_k,
        proxy_frac: cfg.proxy,
        keep_frac: PROXY_KEEP_FRAC,
        ..AutotuneConfig::fermi()
    };
    let (dims, steps) = workload(program, cfg);
    let (proxy_dims, proxy_steps) = proxy_workload(&dims, steps, cfg.proxy);
    let (workers, sim_threads) = tune_thread_split(cfg);
    let score_model = |model: &TileSizeModel, fidelity: Fidelity| -> Option<f64> {
        if let Some(f) = cfg.scorer {
            return f(model);
        }
        match cfg.tune {
            // Static mode still demands end-to-end feasibility: the candidate
            // must survive codegen and fit the device's shared memory. The
            // check always uses the full workload — feasibility must not
            // depend on the fidelity rung.
            TuneMode::Static => {
                let plan = generate_hybrid(program, &model.params, &dims, steps, cfg.opts).ok()?;
                if plan
                    .kernels
                    .iter()
                    .any(|k| k.shared_bytes() > cfg.device.shared_limit)
                {
                    return None;
                }
                Some(-model.ratio())
            }
            TuneMode::Simulated => {
                let (sdims, ssteps) = match fidelity {
                    Fidelity::Proxy => (&proxy_dims, proxy_steps),
                    Fidelity::Full => (&dims, steps),
                };
                simulate_score_with(
                    program,
                    &model.params,
                    &cfg.device,
                    sdims,
                    ssteps,
                    sim_threads,
                    cfg.opts,
                )
            }
        }
    };
    let sweep = autotune_parallel_cancellable(
        program,
        &space,
        &tune_cfg,
        &cfg.cancel,
        workers,
        score_model,
    );
    let mut report = match sweep {
        Ok(report) => report,
        Err(AutotuneError::Cancelled { kind, .. }) => {
            // The partial ranking is intentionally discarded: serving a
            // possibly-worse plan from a truncated sweep would make
            // responses depend on how far the sweep got before the
            // deadline — the opposite of deterministic.
            return Err(cancel_error(kind, program.name()));
        }
    };
    let mut stats = TuneStats {
        examined: report.examined,
        shortlisted: report.shortlisted,
        simulated: report.simulated,
        proxy_simulated: report.proxy_simulated,
        full_simulated: report.full_simulated,
        tune_wall_ms: 0,
        warm_start: false,
        warm_start_hit: false,
    };

    // Cross-device warm hints: dedup the ones for this program, then
    // re-verify each against this device's budgets and scorer.
    let mut hint_params: Vec<TileParams> = Vec::new();
    if !cfg.warm_hints.is_empty() {
        let program_text = program.to_c_like();
        for (text, params) in &cfg.warm_hints {
            if *text == program_text && !hint_params.contains(params) {
                hint_params.push(params.clone());
            }
        }
    }
    stats.warm_start = !hint_params.is_empty();
    for params in &hint_params {
        check_cancel(&cfg.cancel, program.name())?;
        if report.ranked.iter().any(|e| &e.model.params == params) {
            // The sweep already scored this exact candidate.
            continue;
        }
        let Ok(model) = evaluate_tile(program, params) else {
            continue;
        };
        if model.smem_bytes > tune_cfg.smem_limit
            || estimated_regs_per_block(program, params) > tune_cfg.regs_per_block
        {
            continue;
        }
        stats.simulated += 1;
        stats.full_simulated += 1;
        if let Some(score) = score_model(&model, Fidelity::Full) {
            report.ranked.push(AutotuneEntry { model, score });
        }
    }
    if stats.warm_start {
        // Same comparator as the sweep's final ranking, so a merged hint
        // wins only by strictly scoring better (ratio breaks ties).
        report.ranked.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.model.ratio().total_cmp(&b.model.ratio()))
        });
    }
    stats.tune_wall_ms = (tune_start.elapsed().as_millis() as u64).max(1);
    match report.best() {
        Some(best) => {
            stats.warm_start_hit = hint_params.contains(&best.model.params);
            Ok((
                best.model.params.clone(),
                best.model.smem_bytes,
                best.score,
                stats,
            ))
        }
        None => Err(DriverError::NoFeasibleTiling(format!(
            "{}: {} candidates examined ({} unschedulable, {} over shared memory, \
             {} over registers, {} rejected at codegen/scoring)",
            program.name(),
            report.examined,
            report.rejected_schedule,
            report.rejected_smem,
            report.rejected_regs,
            report.rejected_scorer,
        ))),
    }
}

/// Emits the source (and, if the backend has one, secondary) artifact
/// for `plan` and returns the paths. Filenames carry a fingerprint
/// prefix (`<name>-<fp8>.<ext>`) so concurrent serve requests compiling
/// *different* programs under the same name land on distinct files —
/// two writers on one path would race and a response could otherwise
/// point at the other program's code.
fn emit_artifacts(
    program: &StencilProgram,
    params: &TileParams,
    plan: &gpu_codegen::LaunchPlan,
    fp: &str,
    cfg: &DriverConfig,
) -> Result<(PathBuf, Option<PathBuf>), DriverError> {
    fs::create_dir_all(&cfg.out_dir)
        .map_err(|e| DriverError::Io(format!("{}: {e}", cfg.out_dir.display())))?;
    let backend = cfg.backend.backend();
    let mut source = format!(
        "// {} — hybrid hexagonal/classical tiling, h = {}, w = {:?}\n\
         // {} kernel(s), {} launch(es); generated by hybridc\n\n",
        program.name(),
        params.h,
        params.w,
        plan.kernels.len(),
        plan.launches.len(),
    );
    source.push_str(&backend.emit_plan(plan));
    let tag = &fp[..8.min(fp.len())];
    let source_path = cfg.out_dir.join(format!(
        "{}-{tag}.{}",
        program.name(),
        backend.source_extension()
    ));
    fs::write(&source_path, source)
        .map_err(|e| DriverError::Io(format!("{}: {e}", source_path.display())))?;
    let aux_path = match (backend.emit_aux(plan), backend.aux_extension()) {
        (Some(aux), Some(ext)) => {
            let path = cfg.out_dir.join(format!("{}-{tag}.{ext}", program.name()));
            fs::write(&path, aux)
                .map_err(|e| DriverError::Io(format!("{}: {e}", path.display())))?;
            Some(path)
        }
        _ => None,
    };
    Ok((source_path, aux_path))
}

/// Resolves the tile plan for one compile through every cache layer:
///
/// 1. the shared in-memory cache (in-process single-flight);
/// 2. the on-disk content-addressed cache;
/// 3. the cross-process lock file next to the disk cache (a concurrent
///    `hybridd` process tuning the same fingerprint is awaited, not
///    duplicated);
/// 4. a fresh tuning sweep.
///
/// Stale cached plans (entries that no longer generate) degrade to a
/// miss; every layer observes `cfg.cancel`.
#[allow(clippy::too_many_arguments)]
fn resolve_plan(
    program: &StencilProgram,
    program_text: &str,
    fp: &str,
    device_fp: &str,
    dims: &[usize],
    steps: usize,
    cfg: &DriverConfig,
    mem: Option<&MemCache>,
) -> Result<(TileParams, gpu_codegen::LaunchPlan, TuneStats, CacheSource), DriverError> {
    // Cache layer 1: the shared in-memory cache (single-flight — an
    // in-flight compile of the same fingerprint is awaited, not repeated).
    let mut guard = None;
    let mut cached: Option<(TileParams, CacheSource)> = None;
    if let Some(mem) = mem {
        match mem.lookup_or_begin(fp, device_fp, program_text, &cfg.cancel) {
            MemLookup::Hit(params) => cached = Some((params, CacheSource::Memory)),
            MemLookup::Miss(g) => guard = Some(g),
            MemLookup::Bypass => {}
            MemLookup::Cancelled(kind) => return Err(cancel_error(kind, program.name())),
        }
    }
    // Cache layer 2: the on-disk content-addressed cache.
    if cached.is_none() {
        if let Some(params) = cfg
            .cache_dir
            .as_deref()
            .and_then(|dir| load_cached_params(dir, fp, program_text, cfg.backend))
        {
            cached = Some((params, CacheSource::Disk));
        }
    }
    // A cached plan that no longer generates (stale entry from an older
    // emitter) degrades to a miss.
    let hit = cached.and_then(|(params, source)| {
        generate_hybrid(program, &params, dims, steps, cfg.opts)
            .ok()
            .map(|plan| (params, plan, source))
    });
    if let Some((params, plan, source)) = hit {
        if let Some(g) = guard.take() {
            // A disk hit under an in-flight marker: promote it to the
            // memory layer so waiters and later requests skip the disk.
            g.fulfill(program_text, &params);
        }
        return Ok((params, plan, TuneStats::default(), source));
    }

    // Cache layer 3: the cross-process single-flight. A concurrent
    // process tuning this fingerprint is awaited through its lock file;
    // its stored entry then counts as a disk hit.
    let mut disk_flight = None;
    if let Some(dir) = cfg.cache_dir.as_deref() {
        match DiskLock::acquire(
            dir,
            fp,
            program_text,
            cfg.backend,
            &cfg.cancel,
            cfg.lock_stale,
        )? {
            DiskFlight::Acquired(lock) => disk_flight = Some(lock),
            DiskFlight::Ready(params) => {
                if let Ok(plan) = generate_hybrid(program, &params, dims, steps, cfg.opts) {
                    if let Some(g) = guard.take() {
                        g.fulfill(program_text, &params);
                    }
                    return Ok((params, plan, TuneStats::default(), CacheSource::Disk));
                }
                // The other process stored a stale/incompatible entry:
                // tune for ourselves, without re-contending for the lock.
            }
            DiskFlight::Skip => {}
        }
    }

    // On any failure below, dropping `guard` clears the in-flight marker
    // and wakes single-flight waiters to tune themselves; dropping
    // `disk_flight` removes the lock file so other processes proceed.
    // While we hold the disk lock, its ticker thread heartbeats the lock
    // file's mtime so peers never mistake a long live sweep — even one
    // stuck inside a single slow candidate — for an abandoned one.
    let (params, smem, score, stats) = choose_params(program, cfg)?;
    if let Some(dir) = cfg.cache_dir.as_deref() {
        store_cached_params(dir, fp, program, cfg, &params, smem, score)?;
    }
    let plan = generate_hybrid(program, &params, dims, steps, cfg.opts)
        .map_err(|e| DriverError::NoFeasibleTiling(format!("{}: {e}", program.name())))?;
    if let Some(g) = guard.take() {
        g.fulfill(program_text, &params);
    }
    drop(disk_flight);
    Ok((params, plan, stats, CacheSource::Fresh))
}

/// Compiles one stencil file end to end: parse, validate, plan (through
/// the cache), emit source for the configured backend, execute on the
/// simulator, and verify bit-exactly against the reference oracle.
///
/// # Errors
///
/// Every pipeline stage maps its failure to a [`DriverError`] variant; no
/// stage panics on user input.
pub fn compile_file(path: &Path, cfg: &DriverConfig) -> Result<CompileOutcome, DriverError> {
    compile_file_with(path, cfg, None)
}

/// [`compile_file`] with an optional shared in-memory plan cache layered
/// above the on-disk one (the `hybridd` serve path).
pub fn compile_file_with(
    path: &Path,
    cfg: &DriverConfig,
    mem: Option<&MemCache>,
) -> Result<CompileOutcome, DriverError> {
    let src = fs::read_to_string(path)
        .map_err(|e| DriverError::Io(format!("{}: {e}", path.display())))?;
    compile_source_with(&program_name(path), &src, path, cfg, mem)
}

/// Compiles DSL source text directly (no file read): the entry point the
/// compile service uses for inline `program` requests. `label` is the
/// path recorded in the outcome/report (for inline programs, a synthetic
/// `<request>`-style label).
///
/// # Errors
///
/// Identical to [`compile_file`].
pub fn compile_source_with(
    name: &str,
    src: &str,
    label: &Path,
    cfg: &DriverConfig,
    mem: Option<&MemCache>,
) -> Result<CompileOutcome, DriverError> {
    let path = label;
    let name = name.to_string();
    let program = parse_stencil(&name, src).map_err(DriverError::Parse)?;
    if !(1..=3).contains(&program.spatial_dims()) {
        return Err(DriverError::Unsupported(format!(
            "{} has {} spatial dimensions; the planner supports 1-3",
            name,
            program.spatial_dims()
        )));
    }

    // An explicit workload override must match the program before it can
    // reach code paths that assert on it (batch directories mix arities).
    if let Some((d, _)) = &cfg.workload {
        if d.len() != program.spatial_dims() {
            return Err(DriverError::Unsupported(format!(
                "{} has {} spatial dimensions but --size gives {}",
                name,
                program.spatial_dims(),
                d.len()
            )));
        }
        let radius = program.radius();
        if d.iter().zip(&radius).any(|(&n, &r)| (n as i64) < 2 * r + 1) {
            return Err(DriverError::Unsupported(format!(
                "{name}: workload {d:?} has an empty interior for stencil radius {radius:?}"
            )));
        }
    }

    // Options the requested backend cannot lower are rejected before
    // any planning work (typed error, not an assert deep in emission).
    if let Err(e) = cfg.backend.backend().check_options(&cfg.opts) {
        return Err(DriverError::Unsupported(format!("{name}: {e}")));
    }

    // A request whose deadline already passed must not be served, not
    // even from the cache: the client has stopped waiting.
    check_cancel(&cfg.cancel, &name)?;

    let fp = fingerprint(&program, cfg);
    let device_fp = device_fingerprint(&cfg.device);
    let program_text = program.to_c_like();
    let (dims, steps) = workload(&program, cfg);

    let (params, plan, stats, cache) = resolve_plan(
        &program,
        &program_text,
        &fp,
        &device_fp,
        &dims,
        steps,
        cfg,
        mem,
    )?;
    let (source_path, aux_path) = emit_artifacts(&program, &params, &plan, &fp, cfg)?;

    // Execute the plan on the simulator (stage boundary: a fired
    // deadline stops here rather than entering a long simulation).
    check_cancel(&cfg.cancel, &name)?;
    let planes = program.max_dt() as usize + 1;
    let align = alignment_offset_words(&program, &params, &cfg.opts);
    let init: Vec<Grid> = (0..program.num_fields())
        .map(|f| Grid::random(&dims, 1234 + f as u64))
        .collect();
    let mut sim = GpuSim::with_global_offset(cfg.device.clone(), &init, planes, align);
    if cfg.sim_threads > 1 {
        // A schedule that violates concurrent-tile independence is a
        // per-stencil verification failure, never a dead batch/service.
        sim.try_run_plan_parallel_with(&plan, cfg.sim_threads)
            .map_err(|e| DriverError::Verify(format!("{name}: {e}")))?;
    } else {
        sim.run_plan(&plan);
    }
    sim.set_point_updates(point_updates(&program, &dims, steps));

    // Bit-exact verification against the sequential oracle.
    check_cancel(&cfg.cancel, &name)?;
    let verified = if cfg.verify {
        let mut oracle = ReferenceExecutor::new(&program, &init);
        oracle.run(steps);
        let out = steps % planes;
        for f in 0..program.num_fields() {
            if !sim.plane(f, out).bit_equal(oracle.field(f)) {
                return Err(DriverError::Verify(format!(
                    "{name}: field {} diverged from the reference (max abs diff {:e})",
                    program.field_names()[f],
                    sim.plane(f, out).max_abs_diff(oracle.field(f))
                )));
            }
        }
        true
    } else {
        false
    };

    let t = timing::estimate_time(sim.counters(), sim.device());
    Ok(CompileOutcome {
        name,
        source: path.to_path_buf(),
        fingerprint: fp,
        cache_hit: cache.is_hit(),
        cache,
        examined: stats.examined,
        shortlisted: stats.shortlisted,
        simulated: stats.simulated,
        proxy_simulated: stats.proxy_simulated,
        full_simulated: stats.full_simulated,
        tune_wall_ms: stats.tune_wall_ms,
        warm_start: stats.warm_start,
        warm_start_hit: stats.warm_start_hit,
        verified,
        gstencils: timing::gstencils_per_s(sim.counters(), sim.device()),
        seconds: t.total,
        launches: sim.counters().launches,
        kernels: plan.kernels.len(),
        smem_bytes: plan
            .kernels
            .iter()
            .map(|k| k.shared_bytes() as u64)
            .max()
            .unwrap_or(0),
        loads: program
            .statements()
            .iter()
            .map(|s| load_count(&s.expr))
            .collect(),
        flops: program
            .statements()
            .iter()
            .map(|s| flop_count(&s.expr))
            .collect(),
        params,
        dims,
        steps,
        backend: cfg.backend,
        source_path,
        aux_path,
    })
}

/// Renders a caught panic payload (the `&str`/`String` forms `panic!`
/// produces; anything else degrades to a fixed message).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Compiles a batch of files across `cfg.jobs` worker threads (the PR-2
/// pool pattern: an atomic work index over the sorted file list). Results
/// keep input order; one file's failure never aborts the rest.
///
/// Panic isolation: each compile runs under [`catch_unwind`], so a
/// panicking pipeline stage becomes that file's
/// [`DriverError::Internal`] entry — and if a worker thread still dies,
/// its unfilled slots surface as `Internal` errors rather than a process
/// abort or a silently missing result.
pub fn compile_batch(
    paths: &[PathBuf],
    cfg: &DriverConfig,
) -> Vec<(PathBuf, Result<CompileOutcome, DriverError>)> {
    compile_batch_with(paths, cfg, None)
}

/// [`compile_batch`] against an optional shared in-memory plan cache.
pub fn compile_batch_with(
    paths: &[PathBuf],
    cfg: &DriverConfig,
    mem: Option<&MemCache>,
) -> Vec<(PathBuf, Result<CompileOutcome, DriverError>)> {
    let jobs = cfg.jobs.clamp(1, paths.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<CompileOutcome, DriverError>>>> =
        paths.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= paths.len() {
                        break;
                    }
                    let result =
                        catch_unwind(AssertUnwindSafe(|| compile_file_with(&paths[i], cfg, mem)))
                            .unwrap_or_else(|payload| {
                                Err(DriverError::Internal(format!(
                                    "compile of {} panicked: {}",
                                    paths[i].display(),
                                    panic_message(payload)
                                )))
                            });
                    *lock_ignore_poison(&slots[i]) = Some(result);
                })
            })
            .collect();
        // Join explicitly: a worker that dies despite the catch_unwind
        // boundary (e.g. a panic while panicking) must not take the
        // process down — its slots are reported as Internal below.
        for h in handles {
            let _ = h.join();
        }
    });
    paths
        .iter()
        .cloned()
        .zip(slots.into_iter().map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or_else(|| {
                    Err(DriverError::Internal(
                        "worker thread died before filling this result slot".to_string(),
                    ))
                })
        }))
        .collect()
}

/// Renders the machine-readable per-stencil report (the `--report`
/// artifact).
pub fn report_json(
    results: &[(PathBuf, Result<CompileOutcome, DriverError>)],
    cfg: &DriverConfig,
) -> Json {
    let compiled = results.iter().filter(|(_, r)| r.is_ok()).count();
    let cache_hits = results
        .iter()
        .filter(|(_, r)| r.as_ref().is_ok_and(|o| o.cache_hit))
        .count();
    Json::obj(vec![
        (
            "meta",
            Json::obj(vec![
                ("device", Json::str(cfg.device.name.clone())),
                ("backend", Json::str(cfg.backend.name())),
                ("tune", Json::str(cfg.tune.name())),
                ("smoke", Json::Bool(cfg.smoke)),
                ("verify", Json::Bool(cfg.verify)),
                ("sim_threads", Json::UInt(cfg.sim_threads as u64)),
                ("jobs", Json::UInt(cfg.jobs as u64)),
            ]),
        ),
        (
            "summary",
            Json::obj(vec![
                ("total", Json::UInt(results.len() as u64)),
                ("compiled", Json::UInt(compiled as u64)),
                ("failed", Json::UInt((results.len() - compiled) as u64)),
                ("cache_hits", Json::UInt(cache_hits as u64)),
            ]),
        ),
        (
            "stencils",
            Json::Arr(
                results
                    .iter()
                    .map(|(path, r)| outcome_json(&path.display().to_string(), r))
                    .collect(),
            ),
        ),
    ])
}

/// The per-stencil report object for one compile result — the unit both
/// `hybridc --report` (inside [`report_json`]) and the `hybridd` serve
/// protocol emit, so a service response is bit-identical to the one-shot
/// report entry.
pub fn outcome_json(source: &str, result: &Result<CompileOutcome, DriverError>) -> Json {
    match result {
        Ok(o) => Json::obj(vec![
            ("name", Json::str(o.name.clone())),
            ("source", Json::str(source)),
            ("status", Json::str("ok")),
            ("fingerprint", Json::str(o.fingerprint.clone())),
            ("cache_hit", Json::Bool(o.cache_hit)),
            ("cache", Json::str(o.cache.name())),
            ("examined", Json::UInt(o.examined as u64)),
            ("shortlisted", Json::UInt(o.shortlisted as u64)),
            ("simulated", Json::UInt(o.simulated as u64)),
            ("proxy_simulated", Json::UInt(o.proxy_simulated as u64)),
            ("full_simulated", Json::UInt(o.full_simulated as u64)),
            ("tune_wall_ms", Json::UInt(o.tune_wall_ms)),
            ("warm_start", Json::Bool(o.warm_start)),
            ("warm_start_hit", Json::Bool(o.warm_start_hit)),
            ("h", Json::Int(o.params.h)),
            (
                "w",
                Json::Arr(o.params.w.iter().map(|&x| Json::Int(x)).collect()),
            ),
            (
                "dims",
                Json::Arr(o.dims.iter().map(|&d| Json::UInt(d as u64)).collect()),
            ),
            ("steps", Json::UInt(o.steps as u64)),
            ("verified", Json::Bool(o.verified)),
            ("gstencils_per_s", Json::Num(o.gstencils)),
            ("est_seconds", Json::Num(o.seconds)),
            ("launches", Json::UInt(o.launches)),
            ("kernels", Json::UInt(o.kernels as u64)),
            ("smem_bytes", Json::UInt(o.smem_bytes)),
            (
                "loads",
                Json::Arr(o.loads.iter().map(|&x| Json::UInt(x as u64)).collect()),
            ),
            (
                "flops",
                Json::Arr(o.flops.iter().map(|&x| Json::UInt(x as u64)).collect()),
            ),
            ("backend", Json::str(o.backend.name())),
            ("artifact", Json::str(o.source_path.display().to_string())),
            (
                "aux_artifact",
                match &o.aux_path {
                    Some(p) => Json::str(p.display().to_string()),
                    None => Json::Null,
                },
            ),
        ]),
        Err(e) => Json::obj(vec![
            ("source", Json::str(source)),
            ("status", Json::str("error")),
            ("error_kind", Json::str(e.kind())),
            ("error", Json::str(e.to_string())),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A fresh scratch directory per test invocation.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hybridc_test_{}_{}_{}",
            std::process::id(),
            tag,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_stencil(dir: &Path, name: &str, body: &str) -> PathBuf {
        let p = dir.join(name);
        fs::write(&p, body).unwrap();
        p
    }

    const JACOBI: &str = "\
// five-point Jacobi
const float w = 0.2f;
for (t = 0; t < T; t++)
  for (i = 1; i < N-1; i++)
    for (j = 1; j < N-1; j++)
      A[t+1][i][j] = w * (A[t][i][j] + A[t][i+1][j] + A[t][i-1][j]
                        + A[t][i][j+1] + A[t][i][j-1]);
";

    fn smoke_cfg(out: PathBuf) -> DriverConfig {
        DriverConfig {
            smoke: true,
            ..DriverConfig::new(out)
        }
    }

    #[test]
    fn compiles_verifies_and_caches_a_user_stencil() {
        let dir = scratch("single");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));

        let first = compile_file(&file, &cfg).unwrap();
        assert_eq!(first.name, "jacobi");
        assert!(!first.cache_hit);
        assert!(first.examined > 0);
        assert!(first.verified);
        assert!(first.gstencils > 0.0);
        assert_eq!(first.backend, BackendKind::Cuda);
        assert!(first.source_path.is_file());
        assert!(first.source_path.extension().is_some_and(|e| e == "cu"));
        let ptx = first.aux_path.as_ref().expect("CUDA emits a PTX artifact");
        assert!(ptx.is_file());
        let cuda = fs::read_to_string(&first.source_path).unwrap();
        assert!(cuda.contains("__global__ void"), "{cuda}");

        // Second compile: same fingerprint, served from the cache.
        let second = compile_file(&file, &cfg).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.examined, 0);
        assert_eq!(second.params, first.params);
        assert_eq!(second.fingerprint, first.fingerprint);
    }

    #[test]
    fn corrupt_cache_entries_degrade_to_a_miss() {
        let dir = scratch("corrupt");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));
        let first = compile_file(&file, &cfg).unwrap();
        let entry = cfg
            .cache_dir
            .as_ref()
            .unwrap()
            .join(format!("{}.json", first.fingerprint));
        fs::write(&entry, "{ not json").unwrap();
        let second = compile_file(&file, &cfg).unwrap();
        assert!(!second.cache_hit, "corrupt entry must not be trusted");
        assert_eq!(second.params, first.params, "retuning is deterministic");
    }

    #[test]
    fn batch_compiles_across_workers_and_reports() {
        let dir = scratch("batch");
        write_stencil(&dir, "a_jacobi.stencil", JACOBI);
        write_stencil(
            &dir,
            "b_heat1d.stencil",
            "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    \
             A[t+1][i] = 0.25f * A[t][i-1] + 0.5f * A[t][i] + 0.25f * A[t][i+1];\n",
        );
        write_stencil(&dir, "c_broken.stencil", "for (t = 0; t < T; t++) oops\n");
        let files = collect_stencil_files(&dir).unwrap();
        assert_eq!(files.len(), 3);

        let cfg = DriverConfig {
            jobs: 2,
            ..smoke_cfg(dir.join("out"))
        };
        let results = compile_batch(&files, &cfg);
        assert_eq!(results.len(), 3);
        assert!(results[0].1.is_ok());
        assert!(results[1].1.is_ok());
        assert!(matches!(results[2].1, Err(DriverError::Parse(_))));

        let report = report_json(&results, &cfg);
        let summary = report.get("summary").unwrap();
        assert_eq!(summary.get("total").and_then(Json::as_u64), Some(3));
        assert_eq!(summary.get("compiled").and_then(Json::as_u64), Some(2));
        assert_eq!(summary.get("failed").and_then(Json::as_u64), Some(1));
        // The parser reads unsigned literals as UInt where the report used
        // Int, so round-trip equality holds at the text level.
        let text = report.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.render(), text, "report JSON round-trips");
    }

    #[test]
    fn batch_surfaces_worker_panics_as_per_file_errors() {
        // A scorer that panics on every candidate: the compile thread
        // unwinds inside the pool, and the batch must report it as that
        // file's Internal error — not abort, not drop the slot.
        let dir = scratch("panic_scorer");
        write_stencil(&dir, "a_jacobi.stencil", JACOBI);
        write_stencil(
            &dir,
            "b_broken.stencil",
            "for (t = 0; t < T; t++) nonsense\n",
        );
        let files = collect_stencil_files(&dir).unwrap();
        let cfg = DriverConfig {
            jobs: 2,
            scorer: Some(|_| panic!("injected scorer panic")),
            ..smoke_cfg(dir.join("out"))
        };
        let results = compile_batch(&files, &cfg);
        assert_eq!(results.len(), 2);
        match &results[0].1 {
            Err(DriverError::Internal(m)) => {
                assert!(m.contains("injected scorer panic"), "{m}");
                assert!(m.contains("a_jacobi"), "{m}");
            }
            other => panic!("expected Internal error, got {other:?}"),
        }
        // The other file still gets its own (parse) verdict.
        assert!(matches!(results[1].1, Err(DriverError::Parse(_))));
        let report = report_json(&results, &cfg);
        assert_eq!(
            report
                .get("summary")
                .and_then(|s| s.get("failed"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let entry = &report.get("stencils").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            entry.get("error_kind").and_then(Json::as_str),
            Some("internal")
        );
    }

    #[test]
    fn mem_cache_layers_above_the_disk_cache() {
        let dir = scratch("mem_cache");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));
        let mem = MemCache::new();

        let first = compile_file_with(&file, &cfg, Some(&mem)).unwrap();
        assert_eq!(first.cache, CacheSource::Fresh);
        assert_eq!(mem.len(), 1);
        assert_eq!((mem.hits(), mem.misses()), (0, 1));

        // Identical request: served from memory, not the disk.
        let second = compile_file_with(&file, &cfg, Some(&mem)).unwrap();
        assert_eq!(second.cache, CacheSource::Memory);
        assert_eq!(second.examined, 0);
        assert_eq!(second.params, first.params);
        assert_eq!((mem.hits(), mem.misses()), (1, 1));

        // A fresh memory cache falls back to the disk layer and promotes
        // the entry into memory.
        let mem2 = MemCache::new();
        let third = compile_file_with(&file, &cfg, Some(&mem2)).unwrap();
        assert_eq!(third.cache, CacheSource::Disk);
        assert_eq!(mem2.len(), 1);
        let fourth = compile_file_with(&file, &cfg, Some(&mem2)).unwrap();
        assert_eq!(fourth.cache, CacheSource::Memory);
    }

    #[test]
    fn mem_cache_single_flight_coalesces_concurrent_identical_requests() {
        let dir = scratch("single_flight");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        // No disk cache: every plan must come from tuning or memory.
        let cfg = DriverConfig {
            cache_dir: None,
            ..smoke_cfg(dir.join("out"))
        };
        let mem = MemCache::new();
        let outcomes: Vec<CompileOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| compile_file_with(&file, &cfg, Some(&mem)).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one request tuned; everyone agreed on the plan. The
        // other three were immediate hits or coalesced waits, depending
        // on scheduling.
        assert_eq!(mem.misses(), 1);
        assert_eq!(mem.hits() + mem.coalesced(), 3);
        assert_eq!(mem.lookups(), 4);
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| o.cache == CacheSource::Fresh)
                .count(),
            1
        );
        let params = &outcomes[0].params;
        assert!(outcomes.iter().all(|o| o.params == *params));
        assert!(outcomes
            .iter()
            .filter(|o| o.cache != CacheSource::Fresh)
            .all(|o| o.cache == CacheSource::Memory && o.examined == 0));
    }

    #[test]
    fn mem_cache_guard_drop_wakes_waiters_after_failure() {
        // A failing compile (no feasible tiling via a scorer that rejects
        // everything) must clear its in-flight marker so concurrent
        // identical requests fail on their own instead of hanging.
        let dir = scratch("guard_drop");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = DriverConfig {
            cache_dir: None,
            scorer: Some(|_| None),
            ..smoke_cfg(dir.join("out"))
        };
        let mem = MemCache::new();
        let results: Vec<Result<CompileOutcome, DriverError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| s.spawn(|| compile_file_with(&file, &cfg, Some(&mem))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(DriverError::NoFeasibleTiling(_)))));
        assert!(mem.is_empty(), "failed compiles must not leave markers");
    }

    #[test]
    fn mem_cache_guard_survives_a_panicking_scorer_under_the_lru() {
        // Satellite regression: a MemCacheGuard dropped *via panic*
        // during single-flight must wake waiters AND leave no permanent
        // in-flight marker — under the new size-capped LRU. The scorer
        // panics exactly once (the single-flight leader); the woken
        // waiters retune with the now-sane scorer and succeed.
        use std::sync::atomic::AtomicBool;
        static PANICKED_ONCE: AtomicBool = AtomicBool::new(false);
        fn panic_once_scorer(m: &TileSizeModel) -> Option<f64> {
            if !PANICKED_ONCE.swap(true, Ordering::SeqCst) {
                panic!("injected scorer panic under single-flight");
            }
            Some(-m.ratio())
        }
        PANICKED_ONCE.store(false, Ordering::SeqCst);
        let dir = scratch("panic_guard");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = DriverConfig {
            cache_dir: None,
            scorer: Some(panic_once_scorer),
            ..smoke_cfg(dir.join("out"))
        };
        // A small cap makes this the LRU path, not the legacy unbounded
        // one.
        let mem = MemCache::with_config(16, Some(64 * 1024));
        let results: Vec<Result<CompileOutcome, DriverError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    s.spawn(|| {
                        catch_unwind(AssertUnwindSafe(|| {
                            compile_file_with(&file, &cfg, Some(&mem))
                        }))
                        .unwrap_or_else(|_| Err(DriverError::Internal("panicked".into())))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one thread panicked (contained); at least one waiter
        // woke up, retuned, and succeeded.
        let panicked = results
            .iter()
            .filter(|r| matches!(r, Err(DriverError::Internal(_))))
            .count();
        assert_eq!(panicked, 1, "{results:?}");
        assert!(
            results.iter().any(|r| r.is_ok()),
            "waiters must wake and retune after the leader panics: {results:?}"
        );
        // No permanent in-flight marker: a fresh lookup for the same
        // fingerprint must be a hit (an entry exists) — never a hang.
        let program = parse_stencil("jacobi", JACOBI).unwrap();
        let fp = fingerprint(&program, &cfg);
        let dfp = device_fingerprint(&cfg.device);
        assert!(mem.contains(&dfp, &fp), "successful retune must publish");
        assert_eq!(mem.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_entries_per_shard() {
        let mem = MemCache::with_config(1, Some(600));
        let dfp = "dev";
        let params = TileParams::new(1, &[3]);
        let insert = |key: &str, text_len: usize| {
            let program = "x".repeat(text_len);
            match mem.lookup_or_begin(key, dfp, &program, &CancelToken::never()) {
                MemLookup::Miss(g) => g.fulfill(&program, &params),
                _ => panic!("expected miss for {key}"),
            }
        };
        // Each entry costs text_len + key/device/overhead bytes; with a
        // 600-byte cap, the third insert must evict the least recently
        // used of the first two.
        insert("a", 100);
        insert("b", 100);
        assert!(mem.bytes() <= 600);
        assert_eq!(mem.len(), 2);
        // Touch "a": it becomes most recently used.
        match mem.lookup_or_begin("a", dfp, &"x".repeat(100), &CancelToken::never()) {
            MemLookup::Hit(_) => {}
            _ => panic!("expected hit on a"),
        }
        insert("c", 100);
        assert!(mem.bytes() <= 600, "cap is a hard invariant");
        assert!(mem.contains(dfp, "a"), "recently hit entry must survive");
        assert!(!mem.contains(dfp, "b"), "LRU entry must be evicted");
        assert!(mem.contains(dfp, "c"));
        assert_eq!(mem.evictions(), 1);
        // Counters stay disjoint and complete.
        assert_eq!(
            mem.lookups(),
            mem.hits() + mem.misses() + mem.coalesced() + mem.bypasses() + mem.cancelled_waits()
        );
        assert!(mem.hit_age_p50_ms().is_some());
    }

    #[test]
    fn oversized_entry_is_evicted_rather_than_breaking_the_cap() {
        let mem = MemCache::with_config(1, Some(200));
        let params = TileParams::new(1, &[3]);
        let big = "y".repeat(1000);
        match mem.lookup_or_begin("huge", "dev", &big, &CancelToken::never()) {
            MemLookup::Miss(g) => g.fulfill(&big, &params),
            _ => panic!("expected miss"),
        }
        assert_eq!(mem.bytes(), 0, "an entry larger than the cap cannot stay");
        assert_eq!(mem.evictions(), 1);
    }

    #[test]
    fn cross_process_lock_coalesces_concurrent_tuning() {
        // Two "processes" (no shared MemCache) compiling the same
        // program against one disk cache directory: the lock file must
        // make exactly one of them tune; the other waits and loads the
        // stored entry as a disk hit.
        let dir = scratch("xproc");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));
        let outcomes: Vec<CompileOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| s.spawn(|| compile_file(&file, &cfg).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let fresh = outcomes
            .iter()
            .filter(|o| o.cache == CacheSource::Fresh)
            .count();
        let disk = outcomes
            .iter()
            .filter(|o| o.cache == CacheSource::Disk)
            .count();
        assert_eq!((fresh, disk), (1, 1), "{outcomes:?}");
        assert_eq!(outcomes[0].params, outcomes[1].params);
        // The lock file is gone after both compiles.
        let lock = cfg
            .cache_dir
            .as_ref()
            .unwrap()
            .join(format!("{}.lock", outcomes[0].fingerprint));
        assert!(!lock.exists(), "lock must be removed on completion");
    }

    #[test]
    fn stale_lock_files_are_stolen_by_mtime() {
        let dir = scratch("stale_lock");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = DriverConfig {
            // Any existing lock is immediately stale.
            lock_stale: Duration::ZERO,
            ..smoke_cfg(dir.join("out"))
        };
        // Plant an abandoned lock (as if a prior process crashed
        // mid-tune).
        let program = parse_stencil("jacobi", JACOBI).unwrap();
        let fp = fingerprint(&program, &cfg);
        let cache_dir = cfg.cache_dir.clone().unwrap();
        fs::create_dir_all(&cache_dir).unwrap();
        let lock = cache_dir.join(format!("{fp}.lock"));
        fs::write(&lock, "dead-process\n").unwrap();
        // A tiny sleep so the lock's mtime is strictly in the past.
        std::thread::sleep(Duration::from_millis(5));
        let out = compile_file(&file, &cfg).unwrap();
        assert_eq!(out.cache, CacheSource::Fresh, "stale lock must be stolen");
        assert!(!lock.exists());
    }

    #[test]
    fn live_slow_tuner_keeps_its_disk_lock() {
        // Starvation regression: the old heartbeat refreshed the lock
        // mtime *between* candidates, so ONE candidate slower than
        // `lock_stale` starved the refresh and peers stole the lock,
        // retuning redundantly. The ticker thread owned by the lock
        // guard refreshes on wall-clock instead: a single scorer call
        // sleeping well past `lock_stale` (shortlist of 1, ~300 ms under
        // a 120 ms stale bound) must still coalesce — one fresh tune,
        // one disk hit, never two fresh tunes.
        fn slow_scorer(m: &TileSizeModel) -> Option<f64> {
            std::thread::sleep(Duration::from_millis(300));
            Some(-m.ratio())
        }
        let dir = scratch("hb_lock");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = DriverConfig {
            lock_stale: Duration::from_millis(120),
            scorer: Some(slow_scorer),
            top_k: 1,
            ..smoke_cfg(dir.join("out"))
        };
        let outcomes: Vec<CompileOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| s.spawn(|| compile_file(&file, &cfg).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let fresh = outcomes
            .iter()
            .filter(|o| o.cache == CacheSource::Fresh)
            .count();
        let disk = outcomes
            .iter()
            .filter(|o| o.cache == CacheSource::Disk)
            .count();
        assert_eq!(
            (fresh, disk),
            (1, 1),
            "a live holder's lock must not be stolen: {outcomes:?}"
        );
    }

    #[test]
    fn fidelity_ladder_counters_flow_into_the_outcome() {
        let dir = scratch("ladder_outcome");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        // Ladder off: every scoring is full fidelity, and the wall-clock
        // counter is clamped to at least 1 ms so a fresh tune is never
        // mistaken for a cache hit.
        let flat = compile_file(&file, &smoke_cfg(dir.join("flat"))).unwrap();
        assert_eq!(flat.proxy_simulated, 0);
        assert_eq!(flat.full_simulated, flat.simulated);
        assert!(flat.tune_wall_ms >= 1, "{flat:?}");

        // Ladder on: every shortlisted candidate pays a proxy scoring,
        // only survivors pay full fidelity, and both rungs are counted.
        let cfg = DriverConfig {
            proxy: 0.5,
            cache_dir: None,
            ..smoke_cfg(dir.join("ladder"))
        };
        let out = compile_file(&file, &cfg).unwrap();
        assert!(out.proxy_simulated > 0, "{out:?}");
        assert!(out.full_simulated < out.proxy_simulated, "{out:?}");
        assert_eq!(out.simulated, out.proxy_simulated + out.full_simulated);
        assert!(out.tune_wall_ms >= 1);
        // A memory-cache hit reports a zero wall clock: nothing was tuned.
        let mem = MemCache::new();
        let miss = compile_file_with(&file, &cfg, Some(&mem)).unwrap();
        assert!(miss.tune_wall_ms >= 1);
        let hit = compile_file_with(&file, &cfg, Some(&mem)).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.tune_wall_ms, 0, "{hit:?}");
    }

    #[test]
    fn warm_hints_are_reverified_and_counted() {
        let dir = scratch("warm");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        // Cold sweep: learn the smoke-space best without hints.
        let cold_cfg = DriverConfig {
            cache_dir: None,
            ..smoke_cfg(dir.join("cold"))
        };
        let cold = compile_file(&file, &cold_cfg).unwrap();
        assert!(!cold.warm_start && !cold.warm_start_hit);
        assert!(cold.shortlisted > 0 && cold.simulated > 0);

        // Warm compile on a shortlist of 1, hinted with the cold plan:
        // the transfer is re-verified (scored), wins, and the plan is
        // bit-identical to the cold sweep's at ~top_k + 1 scorings.
        let program = parse_stencil("jacobi", JACOBI).unwrap();
        let warm_cfg = DriverConfig {
            cache_dir: None,
            top_k: 1,
            warm_hints: vec![(program.to_c_like(), cold.params.clone())],
            ..smoke_cfg(dir.join("warm"))
        };
        let warm = compile_file(&file, &warm_cfg).unwrap();
        assert!(warm.warm_start);
        assert!(warm.warm_start_hit);
        assert_eq!(warm.params, cold.params, "transfer must be bit-identical");
        assert_eq!(warm.shortlisted, 1);
        assert!(warm.simulated <= 2, "≈ top_k + 1 scorings, got {warm:?}");

        // Hints for a different program are ignored entirely.
        let stranger_cfg = DriverConfig {
            cache_dir: None,
            warm_hints: vec![("other program".to_string(), cold.params.clone())],
            ..smoke_cfg(dir.join("stranger"))
        };
        let out = compile_file(&file, &stranger_cfg).unwrap();
        assert!(!out.warm_start && !out.warm_start_hit);
        assert_eq!(out.params, cold.params);
    }

    #[test]
    fn device_distance_ranks_near_devices_below_far_ones() {
        let a = DeviceConfig::gtx470();
        assert_eq!(device_distance(&a, &a), 0.0);
        // The name is cosmetic: a renamed identical device is distance 0.
        let mut renamed = a.clone();
        renamed.name = "GTX 470 (relabelled)".to_string();
        assert_eq!(device_distance(&a, &renamed), 0.0);
        let mut near = a.clone();
        near.clock_ghz *= 1.05;
        let far = DeviceConfig::nvs5200m();
        let d_near = device_distance(&a, &near);
        let d_far = device_distance(&a, &far);
        assert!(d_near > 0.0);
        assert!(d_near < d_far, "{d_near} vs {d_far}");
        assert_eq!(d_far, device_distance(&far, &a), "distance is symmetric");
    }

    #[test]
    fn mem_cache_exports_per_device_plans_for_warm_seeding() {
        let mem = MemCache::new();
        let params = TileParams::new(2, &[3, 32]);
        for (fp, dev) in [("f1", "devA"), ("f2", "devA"), ("f3", "devB")] {
            match mem.lookup_or_begin(fp, dev, fp, &CancelToken::never()) {
                MemLookup::Miss(g) => g.fulfill(fp, &params),
                _ => panic!("expected miss for {fp}"),
            }
        }
        let plans = mem.device_plans("devA", 16);
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|(_, p)| *p == params));
        assert_eq!(mem.device_plans("devB", 16).len(), 1);
        assert_eq!(mem.device_plans("devA", 1).len(), 1, "limit is honored");
        assert!(mem.device_plans("devC", 16).is_empty());
        // Exports are not lookups: counters untouched.
        assert_eq!(mem.lookups(), 3);
    }

    #[test]
    fn expired_deadline_is_a_typed_error_not_a_compile() {
        let dir = scratch("deadline");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = DriverConfig {
            cancel: CancelToken::with_timeout(Duration::ZERO),
            ..smoke_cfg(dir.join("out"))
        };
        match compile_file(&file, &cfg) {
            Err(DriverError::DeadlineExceeded(m)) => {
                assert!(m.contains("deadline"), "{m}");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // And the error kind is the protocol's name.
        assert_eq!(
            DriverError::DeadlineExceeded(String::new()).kind(),
            "deadline_exceeded"
        );
        assert_eq!(DriverError::Cancelled(String::new()).kind(), "cancelled");
    }

    #[test]
    fn device_fingerprint_covers_every_architectural_parameter() {
        let base = DeviceConfig::gtx470();
        let base_fp = device_fingerprint(&base);
        assert_ne!(base_fp, device_fingerprint(&DeviceConfig::nvs5200m()));
        // A clock-only change (which only affects simulated scores, not
        // budgets) still keys apart.
        let mut clocked = base.clone();
        clocked.clock_ghz += 0.1;
        assert_ne!(base_fp, device_fingerprint(&clocked));
        // And the compile fingerprint inherits that separation.
        let program = parse_stencil("j", JACOBI).unwrap();
        let cfg = smoke_cfg(std::env::temp_dir());
        let clocked_cfg = DriverConfig {
            device: clocked,
            ..cfg.clone()
        };
        assert_ne!(
            fingerprint(&program, &cfg),
            fingerprint(&program, &clocked_cfg)
        );
    }

    #[test]
    fn fingerprint_separates_devices_and_modes() {
        let dir = scratch("fp");
        let file = write_stencil(&dir, "j.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));
        let program = parse_stencil("j", &fs::read_to_string(&file).unwrap()).unwrap();
        let base = fingerprint(&program, &cfg);
        let other_device = DriverConfig {
            device: DeviceConfig::nvs5200m(),
            ..cfg.clone()
        };
        let other_tune = DriverConfig {
            tune: TuneMode::Simulated,
            ..cfg.clone()
        };
        assert_ne!(base, fingerprint(&program, &other_device));
        assert_ne!(base, fingerprint(&program, &other_tune));
        assert_eq!(base, fingerprint(&program, &cfg.clone()));
        // The shortlist size changes which candidates get scored, so it
        // keys separately; warm hints only add re-verified candidates
        // and deliberately share the key.
        let other_topk = DriverConfig {
            top_k: 3,
            ..cfg.clone()
        };
        assert_ne!(base, fingerprint(&program, &other_topk));
        let hinted = DriverConfig {
            warm_hints: vec![(program.to_c_like(), TileParams::new(1, &[3, 32]))],
            ..cfg.clone()
        };
        assert_eq!(base, fingerprint(&program, &hinted));
        // The workload feeds tuning scores, so an override keys separately
        // — a plan tuned for one workload must not serve another.
        let other_workload = DriverConfig {
            workload: Some((vec![64, 64], 8)),
            ..cfg.clone()
        };
        assert_ne!(base, fingerprint(&program, &other_workload));
        // The fidelity ladder can change which candidate wins, so the
        // proxy fraction keys separately; the worker count cannot (the
        // parallel ranking is bit-identical to the sequential one), so
        // plans tuned at any parallelism share the cache entry.
        let laddered = DriverConfig {
            proxy: 0.5,
            ..cfg.clone()
        };
        assert_ne!(base, fingerprint(&program, &laddered));
        let more_workers = DriverConfig {
            tune_workers: 8,
            ..cfg.clone()
        };
        assert_eq!(base, fingerprint(&program, &more_workers));
    }

    #[test]
    fn fingerprint_separates_backends_and_vendors() {
        let dir = scratch("fp_backend");
        let file = write_stencil(&dir, "j.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));
        let program = parse_stencil("j", &fs::read_to_string(&file).unwrap()).unwrap();
        let base = fingerprint(&program, &cfg);
        // Every backend keys apart from every other: a WGSL plan can
        // never alias a CUDA one.
        let mut fps = vec![base.clone()];
        for kind in BackendKind::ALL.into_iter().skip(1) {
            let other = DriverConfig {
                backend: kind,
                ..cfg.clone()
            };
            fps.push(fingerprint(&program, &other));
        }
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // A vendor change is a device change even with identical
        // numeric parameters.
        let mut amd = cfg.device.clone();
        amd.vendor = "amd".to_string();
        let other_vendor = DriverConfig {
            device: amd,
            ..cfg.clone()
        };
        assert_ne!(base, fingerprint(&program, &other_vendor));
    }

    #[test]
    fn device_distance_penalizes_vendor_mismatch_above_any_numeric_gap() {
        let a = DeviceConfig::gtx470();
        let mut rebadged = DeviceConfig::gtx470();
        rebadged.vendor = "amd".to_string();
        // Same silicon numbers, different vendor: farther than the most
        // different same-vendor device in the fleet.
        let far_same_vendor = DeviceConfig::nvs5200m();
        assert!(device_distance(&a, &rebadged) > device_distance(&a, &far_same_vendor));
    }

    #[test]
    fn unsupported_backend_strategy_is_a_typed_error() {
        let dir = scratch("backend_caps");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        // WGSL cannot lower ladder step (f); best() requests it.
        let cfg = DriverConfig {
            backend: BackendKind::Wgsl,
            ..smoke_cfg(dir.join("out"))
        };
        match compile_file(&file, &cfg) {
            Err(DriverError::Unsupported(msg)) => {
                assert!(msg.contains("does not support"), "{msg}");
                assert!(msg.contains("ReuseDynamic"), "{msg}");
            }
            other => panic!("expected a typed Unsupported error, got {other:?}"),
        }
        // The backend's own default options compile and verify.
        let cfg = DriverConfig {
            opts: BackendKind::Wgsl.backend().default_options(),
            ..cfg
        };
        let outcome = compile_file(&file, &cfg).unwrap();
        assert!(outcome.verified);
    }

    #[test]
    fn each_backend_emits_its_own_artifact_and_caches_round_trip() {
        let dir = scratch("backends");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        for kind in BackendKind::ALL {
            let backend = kind.backend();
            let cfg = DriverConfig {
                backend: kind,
                opts: backend.default_options(),
                ..smoke_cfg(dir.join(format!("out_{kind}")))
            };
            let first = compile_file(&file, &cfg).unwrap();
            assert_eq!(first.backend, kind);
            assert!(first.verified, "{kind}");
            let name = first
                .source_path
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned();
            assert!(
                name.ends_with(&format!(".{}", backend.source_extension())),
                "{kind}: {name}"
            );
            assert_eq!(first.aux_path.is_some(), backend.aux_extension().is_some());
            let emitted = fs::read_to_string(&first.source_path).unwrap();
            // Cache round-trip: the stored entry carries the backend and
            // serves the second compile; re-emission is byte-identical.
            let second = compile_file(&file, &cfg).unwrap();
            assert!(second.cache_hit, "{kind}");
            assert_eq!(emitted, fs::read_to_string(&second.source_path).unwrap());
        }
    }

    #[test]
    fn legacy_cache_entries_without_a_backend_degrade_to_a_miss() {
        let dir = scratch("legacy_backend");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));
        let first = compile_file(&file, &cfg).unwrap();
        let entry = cfg
            .cache_dir
            .as_ref()
            .unwrap()
            .join(format!("{}.json", first.fingerprint));
        // Strip the backend field, simulating an entry written before
        // the backend split.
        let text = fs::read_to_string(&entry).unwrap();
        let legacy: String = text
            .lines()
            .filter(|l| !l.contains("\"backend\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert_ne!(text, legacy, "entry should have carried a backend field");
        fs::write(&entry, legacy).unwrap();
        let second = compile_file(&file, &cfg).unwrap();
        assert!(!second.cache_hit, "legacy entry must miss, not panic");
        assert_eq!(second.params, first.params);
        // The miss re-tuned and rewrote a complete entry: third hits.
        let third = compile_file(&file, &cfg).unwrap();
        assert!(third.cache_hit);
    }

    #[test]
    fn workload_overrides_are_validated_not_asserted() {
        let dir = scratch("workload");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        // Wrong arity: 1D size for a 2D stencil.
        let cfg = DriverConfig {
            workload: Some((vec![64], 4)),
            ..smoke_cfg(dir.join("out"))
        };
        assert!(matches!(
            compile_file(&file, &cfg),
            Err(DriverError::Unsupported(_))
        ));
        // Empty interior: grid smaller than the stencil halo.
        let cfg = DriverConfig {
            workload: Some((vec![2, 2], 4)),
            ..smoke_cfg(dir.join("out"))
        };
        assert!(matches!(
            compile_file(&file, &cfg),
            Err(DriverError::Unsupported(_))
        ));
        // A legal override compiles and verifies on the requested grid.
        let cfg = DriverConfig {
            workload: Some((vec![48, 64], 8)),
            ..smoke_cfg(dir.join("out"))
        };
        let out = compile_file(&file, &cfg).unwrap();
        assert_eq!(out.dims, vec![48, 64]);
        assert_eq!(out.steps, 8);
        assert!(out.verified);
    }

    #[test]
    fn unsupported_and_missing_inputs_error_cleanly() {
        let dir = scratch("errs");
        assert!(matches!(
            collect_stencil_files(&dir.join("nope")),
            Err(DriverError::Io(_))
        ));
        let empty = dir.join("empty");
        fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            collect_stencil_files(&empty),
            Err(DriverError::Io(_))
        ));
        // 4D programs parse but the planner cannot tile them.
        let file = write_stencil(
            &dir,
            "hyper.stencil",
            "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n   for (j = 1; j < N-1; j++)\n    for (k = 1; k < N-1; k++)\n     for (l = 1; l < N-1; l++)\n      A[t+1][i][j][k][l] = A[t][i][j][k][l];\n",
        );
        let cfg = smoke_cfg(dir.join("out"));
        assert!(matches!(
            compile_file(&file, &cfg),
            Err(DriverError::Unsupported(_))
        ));
    }
}
