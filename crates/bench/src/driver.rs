//! The `hybridc` compiler driver: compile user-supplied `.stencil` DSL
//! files through the full pipeline, end to end.
//!
//! For each input file the driver runs the ladder the gallery binaries
//! hard-code:
//!
//! 1. **parse** — [`stencil::parse::parse_stencil`] (the documented DSL
//!    grammar: comments, named constants, multi-statement time loops);
//! 2. **validate** — canonical-form checks (done by the parser) plus the
//!    driver's own supportability checks (1–3 spatial dimensions);
//! 3. **plan** — tile-size selection under the device's shared-memory and
//!    register budgets via [`hybrid_tiling::tilesize::autotune`], scored
//!    either statically (load-to-compute ratio, the default) or on the
//!    block-parallel simulator ([`TuneMode::Simulated`]);
//! 4. **codegen** — hybrid hexagonal/classical kernels emitted as CUDA-C
//!    (`<name>.cu`) and pseudo-PTX (`<name>.ptx`) into the output
//!    directory;
//! 5. **execute + verify** — the plan runs on [`gpusim::GpuSim`] and the
//!    result is compared *bit-for-bit* against the sequential
//!    [`stencil::ReferenceExecutor`] oracle.
//!
//! Tile-size selection is the expensive step, so chosen plans are kept in
//! a **content-addressed plan cache**: the key is a fingerprint of the
//! program's canonical rendering plus the device parameters, codegen
//! options and tuning mode; the value is a hand-rolled JSON entry (see
//! [`crate::json`]) holding the chosen tile sizes and a schedule summary.
//! Repeated compiles and batch runs skip re-tuning; a stale or colliding
//! entry (the stored program text is compared on load) degrades to a
//! cache miss, never to a wrong plan.
//!
//! Batch compiles fan out over a thread pool ([`compile_batch`]), and
//! [`report_json`] renders the machine-readable per-stencil result table
//! behind `hybridc --report`.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use gpu_codegen::cuda_emit::kernel_to_cuda;
use gpu_codegen::hybrid_gen::alignment_offset_words;
use gpu_codegen::ptx_emit::core_tile_ptx;
use gpu_codegen::{generate_hybrid, CodegenOptions};
use gpusim::{timing, DeviceConfig, GpuSim};
use hybrid_tiling::tilesize::autotune::{autotune, AutotuneConfig};
use hybrid_tiling::tilesize::TileSizeModel;
use hybrid_tiling::TileParams;
use stencil::characteristics::{flop_count, load_count};
use stencil::parse::{parse_stencil, ParseError};
use stencil::{Grid, ReferenceExecutor, StencilProgram};

use crate::autotune::{autotune_workload, simulate_score_with, sweep_space};
use crate::json::Json;
use crate::point_updates;

/// How tile sizes are scored during planning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TuneMode {
    /// Rank candidates by the §3.7 static load-to-compute ratio (fast;
    /// the default).
    Static,
    /// Score the shortlisted candidates on the block-parallel simulator
    /// (the §6 measurement pass; slower, workload-aware).
    Simulated,
}

impl TuneMode {
    /// Stable name used in fingerprints and reports.
    pub fn name(self) -> &'static str {
        match self {
            TuneMode::Static => "static",
            TuneMode::Simulated => "simulated",
        }
    }
}

/// Driver configuration shared by every file of one invocation.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Simulated device (budgets, timing model).
    pub device: DeviceConfig,
    /// Code-generation options (defaults to the full Table 4 ladder top).
    pub opts: CodegenOptions,
    /// Worker threads for one simulation ([`gpusim::parallel`]).
    pub sim_threads: usize,
    /// Concurrent file compiles in [`compile_batch`].
    pub jobs: usize,
    /// Tile-size scoring mode.
    pub tune: TuneMode,
    /// Shrink the sweep space (CI smoke mode).
    pub smoke: bool,
    /// Run the simulated plan and require bit-exact agreement with the
    /// reference executor.
    pub verify: bool,
    /// Where `.cu` / `.ptx` artifacts are written.
    pub out_dir: PathBuf,
    /// Plan-cache directory; `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
    /// Override the execution workload (`dims`, `steps`); defaults to a
    /// small per-arity workload.
    pub workload: Option<(Vec<usize>, usize)>,
    /// Test/extension hook: replaces the tile-size scorer of both tune
    /// modes. The function pointer's address participates in the
    /// fingerprint, so plans chosen by a custom scorer never leak into
    /// caches keyed for the built-in scorers.
    pub scorer: Option<fn(&TileSizeModel) -> Option<f64>>,
}

impl DriverConfig {
    /// Defaults: GTX 470, best codegen options, static tuning, cache
    /// enabled under `out_dir/cache`, verification on.
    pub fn new(out_dir: impl Into<PathBuf>) -> DriverConfig {
        let out_dir = out_dir.into();
        let cache_dir = out_dir.join("cache");
        DriverConfig {
            device: DeviceConfig::gtx470(),
            opts: CodegenOptions::best(),
            sim_threads: 1,
            jobs: 1,
            tune: TuneMode::Static,
            smoke: false,
            verify: true,
            out_dir,
            cache_dir: Some(cache_dir),
            workload: None,
            scorer: None,
        }
    }
}

/// A failure compiling one stencil file.
#[derive(Clone, Debug)]
pub enum DriverError {
    /// Filesystem failure (path and cause).
    Io(String),
    /// The DSL did not parse or validate.
    Parse(ParseError),
    /// The program parsed but the pipeline cannot compile it.
    Unsupported(String),
    /// No tile-size candidate survived the budgets and feasibility checks.
    NoFeasibleTiling(String),
    /// The simulated result diverged from the reference executor, or the
    /// simulated schedule violated concurrent-tile independence.
    Verify(String),
    /// A pipeline stage panicked and the panic was contained at the
    /// worker/request boundary. Always a bug worth reporting — but a
    /// per-file error entry, never a dead service.
    Internal(String),
}

impl DriverError {
    /// Stable machine-readable discriminant for reports and the serve
    /// protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            DriverError::Io(_) => "io",
            DriverError::Parse(_) => "parse",
            DriverError::Unsupported(_) => "unsupported",
            DriverError::NoFeasibleTiling(_) => "no_feasible_tiling",
            DriverError::Verify(_) => "verify",
            DriverError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Io(m) => write!(f, "io error: {m}"),
            DriverError::Parse(e) => write!(f, "{e}"),
            DriverError::Unsupported(m) => write!(f, "unsupported stencil: {m}"),
            DriverError::NoFeasibleTiling(m) => write!(f, "no feasible tiling: {m}"),
            DriverError::Verify(m) => write!(f, "verification failed: {m}"),
            DriverError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// Where a compile's tile plan came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheSource {
    /// Served by the shared in-memory plan cache (a `hybridd` hit, or a
    /// single-flight wait on a concurrent identical request).
    Memory,
    /// Loaded from the on-disk content-addressed cache.
    Disk,
    /// Freshly tuned this compile.
    Fresh,
}

impl CacheSource {
    /// Stable name used in reports (`"mem"` / `"disk"` / `"miss"`).
    pub fn name(self) -> &'static str {
        match self {
            CacheSource::Memory => "mem",
            CacheSource::Disk => "disk",
            CacheSource::Fresh => "miss",
        }
    }

    /// True when no tuning sweep ran.
    pub fn is_hit(self) -> bool {
        self != CacheSource::Fresh
    }
}

/// The result of compiling one stencil file end to end.
#[derive(Clone, Debug)]
pub struct CompileOutcome {
    /// Program name (sanitized file stem).
    pub name: String,
    /// Input path.
    pub source: PathBuf,
    /// Content-addressed plan-cache key.
    pub fingerprint: String,
    /// Chosen tile parameters.
    pub params: TileParams,
    /// True if the plan came from a cache (no tuning sweep ran).
    pub cache_hit: bool,
    /// Which cache layer (if any) served the plan.
    pub cache: CacheSource,
    /// Candidates examined by the tuning sweep (0 on a cache hit).
    pub examined: usize,
    /// True if the bit-exact check against the oracle ran and passed
    /// (false only when `cfg.verify` is off).
    pub verified: bool,
    /// Simulated throughput.
    pub gstencils: f64,
    /// Estimated device seconds for the workload.
    pub seconds: f64,
    /// Thread-block launches executed.
    pub launches: u64,
    /// Kernels in the launch plan.
    pub kernels: usize,
    /// Largest per-kernel shared-memory footprint in bytes.
    pub smem_bytes: u64,
    /// Distinct loads per statement (Table 3 "Loads").
    pub loads: Vec<usize>,
    /// FLOPs per statement (Table 3 "FLOPs/Stencil").
    pub flops: Vec<usize>,
    /// Workload the plan was executed on.
    pub dims: Vec<usize>,
    /// Time steps executed.
    pub steps: usize,
    /// Emitted CUDA-C artifact.
    pub cuda_path: PathBuf,
    /// Emitted pseudo-PTX artifact.
    pub ptx_path: PathBuf,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The content-addressed cache key of `program` under `cfg`: everything
/// that influences tile-size selection is hashed — the canonical program
/// rendering, the device budgets, the codegen options, the tuning mode
/// (smoke sweeps search a smaller space, so they key separately), and
/// any workload override (tuning scores candidates on the workload).
pub fn fingerprint(program: &StencilProgram, cfg: &DriverConfig) -> String {
    let ident = format!(
        "{}|{}|{}|{:?}|{}|{}|{:?}|{:?}",
        program.to_c_like(),
        cfg.device.name,
        cfg.device.shared_limit,
        cfg.opts,
        cfg.tune.name(),
        cfg.smoke,
        cfg.workload,
        cfg.scorer.map(|f| f as usize),
    );
    format!("{:016x}", fnv1a64(ident.as_bytes()))
}

/// Locks a possibly poisoned mutex: a panic that unwound through a
/// critical section (contained by the per-request `catch_unwind`
/// boundary) must not cascade into every later cache access.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// One resolved plan in the in-memory cache. The program text rides along
/// so fingerprint collisions degrade to a bypass, exactly like the
/// on-disk cache.
#[derive(Clone)]
struct MemEntry {
    program: String,
    params: TileParams,
}

enum MemSlot {
    /// Some request is tuning this fingerprint right now.
    InFlight,
    /// A finished plan.
    Ready(MemEntry),
}

struct MemShard {
    map: Mutex<HashMap<String, MemSlot>>,
    cv: Condvar,
}

/// The shared in-memory plan cache layered above the on-disk cache by the
/// `hybridd` compile service.
///
/// Lookups are **single-flight**: the first request for a fingerprint
/// marks it in flight and tunes; concurrent requests for the same
/// fingerprint block on a condvar until the plan is ready and then count
/// as memory hits, so N clients hitting the same stencil cost one tuning
/// sweep. A request that fails (or panics — the guard cleans up on drop)
/// wakes the waiters, which retune individually. The map is sharded by
/// fingerprint so unrelated requests never contend on one lock.
pub struct MemCache {
    shards: Vec<MemShard>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Hits that waited on an in-flight compile instead of finding a
    /// ready entry (the coalesced requests of single-flight).
    coalesced: AtomicU64,
}

/// Outcome of a memory-cache lookup.
enum MemLookup<'a> {
    /// Ready entry (possibly after waiting on an in-flight compile).
    Hit(TileParams),
    /// Nothing cached; the caller must tune and then `fulfill` (or drop,
    /// which wakes waiters to retune themselves).
    Miss(MemCacheGuard<'a>),
    /// Fingerprint collision with a different program: compile without
    /// touching the cache.
    Bypass,
}

/// The in-flight marker of a single-flight compile; see [`MemCache`].
struct MemCacheGuard<'a> {
    cache: &'a MemCache,
    fp: String,
    done: bool,
}

impl MemCache {
    /// An empty cache with 16 shards.
    pub fn new() -> MemCache {
        MemCache {
            shards: (0..16)
                .map(|_| MemShard {
                    map: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: &str) -> &MemShard {
        let h = fnv1a64(fp.as_bytes());
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Ready entries across all shards (in-flight markers not counted).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                lock_ignore_poison(&s.map)
                    .values()
                    .filter(|v| matches!(v, MemSlot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True when no ready entry exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from memory (including single-flight waits).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to tune.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits that waited on a concurrent identical request.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    fn lookup_or_begin(&self, fp: &str, program: &str) -> MemLookup<'_> {
        let shard = self.shard(fp);
        let mut map = lock_ignore_poison(&shard.map);
        let mut waited = false;
        loop {
            match map.get(fp) {
                Some(MemSlot::Ready(e)) => {
                    if e.program != program {
                        return MemLookup::Bypass;
                    }
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if waited {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    return MemLookup::Hit(e.params.clone());
                }
                Some(MemSlot::InFlight) => {
                    waited = true;
                    map = shard.cv.wait(map).unwrap_or_else(|p| p.into_inner());
                }
                None => {
                    map.insert(fp.to_string(), MemSlot::InFlight);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return MemLookup::Miss(MemCacheGuard {
                        cache: self,
                        fp: fp.to_string(),
                        done: false,
                    });
                }
            }
        }
    }
}

impl Default for MemCache {
    fn default() -> MemCache {
        MemCache::new()
    }
}

impl MemCacheGuard<'_> {
    /// Publishes the tuned plan and wakes every waiter.
    fn fulfill(mut self, program: &str, params: &TileParams) {
        let shard = self.cache.shard(&self.fp);
        let mut map = lock_ignore_poison(&shard.map);
        map.insert(
            self.fp.clone(),
            MemSlot::Ready(MemEntry {
                program: program.to_string(),
                params: params.clone(),
            }),
        );
        self.done = true;
        shard.cv.notify_all();
    }
}

impl Drop for MemCacheGuard<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // The compile failed or panicked: clear the in-flight marker so
        // waiters stop blocking and tune for themselves.
        let shard = self.cache.shard(&self.fp);
        lock_ignore_poison(&shard.map).remove(&self.fp);
        shard.cv.notify_all();
    }
}

/// Collects the `.stencil` files of `path`: a file is taken as-is, a
/// directory contributes every `*.stencil` inside it, sorted by name.
///
/// # Errors
///
/// Returns [`DriverError::Io`] when the path does not exist or a
/// directory contains no stencil files.
pub fn collect_stencil_files(path: &Path) -> Result<Vec<PathBuf>, DriverError> {
    if path.is_file() {
        return Ok(vec![path.to_path_buf()]);
    }
    if !path.is_dir() {
        return Err(DriverError::Io(format!(
            "{} does not exist",
            path.display()
        )));
    }
    let mut files: Vec<PathBuf> = fs::read_dir(path)
        .map_err(|e| DriverError::Io(format!("{}: {e}", path.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "stencil"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(DriverError::Io(format!(
            "{} contains no .stencil files",
            path.display()
        )));
    }
    Ok(files)
}

/// Maps a raw label to a legal program identifier: every
/// non-alphanumeric character becomes `_`, and a leading digit (or empty
/// input) gets an `s` prefix. Shared by file-stem naming here and the
/// serve protocol's inline `name` field, so the two paths can never
/// diverge on the same logical name.
pub fn sanitize_program_name(raw: &str) -> String {
    let mut name: String = raw
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if name.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        name.insert(0, 's');
    }
    name
}

/// Program name from a source path: the sanitized file stem.
fn program_name(path: &Path) -> String {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "stencil".to_string());
    sanitize_program_name(&stem)
}

/// Loads a cached plan for `fp`, returning the tile parameters if the
/// entry exists, parses, and was produced from the same program text
/// (fingerprint collisions degrade to a miss).
fn load_cached_params(dir: &Path, fp: &str, program_text: &str) -> Option<TileParams> {
    let text = fs::read_to_string(dir.join(format!("{fp}.json"))).ok()?;
    let v = Json::parse(&text).ok()?;
    if v.get("program")?.as_str()? != program_text {
        return None;
    }
    let h = v.get("h")?.as_i64()?;
    let w: Option<Vec<i64>> = v.get("w")?.as_arr()?.iter().map(Json::as_i64).collect();
    let w = w?;
    // Guard the TileParams constructor's panics against a corrupt entry.
    if h < 0 || w.is_empty() || w[0] < 0 || w[1..].iter().any(|&x| x < 1) {
        return None;
    }
    Some(TileParams::new(h, &w))
}

/// Persists a freshly chosen plan. Written atomically (temp file +
/// rename) so concurrent batch workers can only ever observe complete
/// entries.
fn store_cached_params(
    dir: &Path,
    fp: &str,
    program: &StencilProgram,
    cfg: &DriverConfig,
    params: &TileParams,
    smem_bytes: u64,
    score: f64,
) -> Result<(), DriverError> {
    fs::create_dir_all(dir).map_err(|e| DriverError::Io(format!("{}: {e}", dir.display())))?;
    let entry = Json::obj(vec![
        ("fingerprint", Json::str(fp)),
        ("stencil", Json::str(program.name())),
        ("program", Json::str(program.to_c_like())),
        ("device", Json::str(cfg.device.name.clone())),
        ("tune", Json::str(cfg.tune.name())),
        ("h", Json::Int(params.h)),
        (
            "w",
            Json::Arr(params.w.iter().map(|&x| Json::Int(x)).collect()),
        ),
        (
            "schedule",
            Json::obj(vec![
                ("time_extent", Json::Int(params.time_extent())),
                ("statements", Json::UInt(program.num_statements() as u64)),
                ("smem_bytes", Json::UInt(smem_bytes)),
            ]),
        ),
        ("score", Json::Num(score)),
    ]);
    static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);
    let path = dir.join(format!("{fp}.json"));
    let tmp = dir.join(format!(
        "{fp}.json.tmp{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, entry.render())
        .map_err(|e| DriverError::Io(format!("{}: {e}", tmp.display())))?;
    fs::rename(&tmp, &path).map_err(|e| DriverError::Io(format!("{}: {e}", path.display())))?;
    Ok(())
}

/// Execution workload for one program: the explicit override, or a small
/// per-arity default (the autotune scoring workload).
fn workload(program: &StencilProgram, cfg: &DriverConfig) -> (Vec<usize>, usize) {
    cfg.workload
        .clone()
        .unwrap_or_else(|| autotune_workload(program))
}

/// Runs the tuning sweep and returns `(params, examined, smem, score)`.
fn choose_params(
    program: &StencilProgram,
    cfg: &DriverConfig,
) -> Result<(TileParams, usize, u64, f64), DriverError> {
    let space = sweep_space(program.spatial_dims(), cfg.smoke);
    let tune_cfg = AutotuneConfig {
        smem_limit: cfg.device.shared_limit as u64,
        verify_domain: None,
        max_candidates: if cfg.smoke { 4 } else { 12 },
        ..AutotuneConfig::fermi()
    };
    let (dims, steps) = workload(program, cfg);
    let report = autotune(program, &space, &tune_cfg, |model| {
        if let Some(f) = cfg.scorer {
            return f(model);
        }
        match cfg.tune {
            // Static mode still demands end-to-end feasibility: the candidate
            // must survive codegen and fit the device's shared memory.
            TuneMode::Static => {
                let plan = generate_hybrid(program, &model.params, &dims, steps, cfg.opts).ok()?;
                if plan
                    .kernels
                    .iter()
                    .any(|k| k.shared_bytes() > cfg.device.shared_limit)
                {
                    return None;
                }
                Some(-model.ratio())
            }
            TuneMode::Simulated => simulate_score_with(
                program,
                &model.params,
                &cfg.device,
                &dims,
                steps,
                cfg.sim_threads,
                cfg.opts,
            ),
        }
    });
    match report.best() {
        Some(best) => Ok((
            best.model.params.clone(),
            report.examined,
            best.model.smem_bytes,
            best.score,
        )),
        None => Err(DriverError::NoFeasibleTiling(format!(
            "{}: {} candidates examined ({} unschedulable, {} over shared memory, \
             {} over registers, {} rejected at codegen/scoring)",
            program.name(),
            report.examined,
            report.rejected_schedule,
            report.rejected_smem,
            report.rejected_regs,
            report.rejected_scorer,
        ))),
    }
}

/// Emits the CUDA-C and pseudo-PTX artifacts for `plan` and returns their
/// paths. Filenames carry a fingerprint prefix (`<name>-<fp8>.cu`) so
/// concurrent serve requests compiling *different* programs under the
/// same name land on distinct files — two writers on one path would race
/// and a response could otherwise point at the other program's code.
fn emit_artifacts(
    program: &StencilProgram,
    params: &TileParams,
    plan: &gpu_codegen::LaunchPlan,
    fp: &str,
    cfg: &DriverConfig,
) -> Result<(PathBuf, PathBuf), DriverError> {
    fs::create_dir_all(&cfg.out_dir)
        .map_err(|e| DriverError::Io(format!("{}: {e}", cfg.out_dir.display())))?;
    let mut cuda = format!(
        "// {} — hybrid hexagonal/classical tiling, h = {}, w = {:?}\n\
         // {} kernel(s), {} launch(es); generated by hybridc\n\n",
        program.name(),
        params.h,
        params.w,
        plan.kernels.len(),
        plan.launches.len(),
    );
    let mut ptx = String::new();
    for kernel in &plan.kernels {
        cuda.push_str(&kernel_to_cuda(kernel));
        cuda.push('\n');
        let (text, stats) = core_tile_ptx(kernel, 4);
        ptx.push_str(&format!(
            "// kernel {} — core tile, first 4 points: {} loads, {} stores, {} arith\n",
            kernel.name, stats.loads, stats.stores, stats.arith
        ));
        ptx.push_str(&text);
        ptx.push('\n');
    }
    let tag = &fp[..8.min(fp.len())];
    let cuda_path = cfg.out_dir.join(format!("{}-{tag}.cu", program.name()));
    let ptx_path = cfg.out_dir.join(format!("{}-{tag}.ptx", program.name()));
    fs::write(&cuda_path, cuda)
        .map_err(|e| DriverError::Io(format!("{}: {e}", cuda_path.display())))?;
    fs::write(&ptx_path, ptx)
        .map_err(|e| DriverError::Io(format!("{}: {e}", ptx_path.display())))?;
    Ok((cuda_path, ptx_path))
}

/// Compiles one stencil file end to end: parse, validate, plan (through
/// the cache), emit CUDA + PTX, execute on the simulator, and verify
/// bit-exactly against the reference oracle.
///
/// # Errors
///
/// Every pipeline stage maps its failure to a [`DriverError`] variant; no
/// stage panics on user input.
pub fn compile_file(path: &Path, cfg: &DriverConfig) -> Result<CompileOutcome, DriverError> {
    compile_file_with(path, cfg, None)
}

/// [`compile_file`] with an optional shared in-memory plan cache layered
/// above the on-disk one (the `hybridd` serve path).
pub fn compile_file_with(
    path: &Path,
    cfg: &DriverConfig,
    mem: Option<&MemCache>,
) -> Result<CompileOutcome, DriverError> {
    let src = fs::read_to_string(path)
        .map_err(|e| DriverError::Io(format!("{}: {e}", path.display())))?;
    compile_source_with(&program_name(path), &src, path, cfg, mem)
}

/// Compiles DSL source text directly (no file read): the entry point the
/// compile service uses for inline `program` requests. `label` is the
/// path recorded in the outcome/report (for inline programs, a synthetic
/// `<request>`-style label).
///
/// # Errors
///
/// Identical to [`compile_file`].
pub fn compile_source_with(
    name: &str,
    src: &str,
    label: &Path,
    cfg: &DriverConfig,
    mem: Option<&MemCache>,
) -> Result<CompileOutcome, DriverError> {
    let path = label;
    let name = name.to_string();
    let program = parse_stencil(&name, src).map_err(DriverError::Parse)?;
    if !(1..=3).contains(&program.spatial_dims()) {
        return Err(DriverError::Unsupported(format!(
            "{} has {} spatial dimensions; the planner supports 1-3",
            name,
            program.spatial_dims()
        )));
    }

    // An explicit workload override must match the program before it can
    // reach code paths that assert on it (batch directories mix arities).
    if let Some((d, _)) = &cfg.workload {
        if d.len() != program.spatial_dims() {
            return Err(DriverError::Unsupported(format!(
                "{} has {} spatial dimensions but --size gives {}",
                name,
                program.spatial_dims(),
                d.len()
            )));
        }
        let radius = program.radius();
        if d.iter().zip(&radius).any(|(&n, &r)| (n as i64) < 2 * r + 1) {
            return Err(DriverError::Unsupported(format!(
                "{name}: workload {d:?} has an empty interior for stencil radius {radius:?}"
            )));
        }
    }

    let fp = fingerprint(&program, cfg);
    let program_text = program.to_c_like();
    let (dims, steps) = workload(&program, cfg);

    // Cache layer 1: the shared in-memory cache (single-flight — an
    // in-flight compile of the same fingerprint is awaited, not repeated).
    let mut guard = None;
    let mut cached: Option<(TileParams, CacheSource)> = None;
    if let Some(mem) = mem {
        match mem.lookup_or_begin(&fp, &program_text) {
            MemLookup::Hit(params) => cached = Some((params, CacheSource::Memory)),
            MemLookup::Miss(g) => guard = Some(g),
            MemLookup::Bypass => {}
        }
    }
    // Cache layer 2: the on-disk content-addressed cache.
    if cached.is_none() {
        if let Some(params) = cfg
            .cache_dir
            .as_deref()
            .and_then(|dir| load_cached_params(dir, &fp, &program_text))
        {
            cached = Some((params, CacheSource::Disk));
        }
    }
    // A cached plan that no longer generates (stale entry from an older
    // emitter) degrades to a miss.
    let hit = cached.and_then(|(params, source)| {
        generate_hybrid(&program, &params, &dims, steps, cfg.opts)
            .ok()
            .map(|plan| (params, plan, source))
    });
    let (params, plan, examined, cache) = match hit {
        Some((params, plan, source)) => {
            if let Some(g) = guard.take() {
                // A disk hit under an in-flight marker: promote it to the
                // memory layer so waiters and later requests skip the disk.
                g.fulfill(&program_text, &params);
            }
            (params, plan, 0, source)
        }
        None => {
            // On any failure below, dropping `guard` clears the in-flight
            // marker and wakes single-flight waiters to tune themselves.
            let (params, examined, smem, score) = choose_params(&program, cfg)?;
            if let Some(dir) = cfg.cache_dir.as_deref() {
                store_cached_params(dir, &fp, &program, cfg, &params, smem, score)?;
            }
            let plan = generate_hybrid(&program, &params, &dims, steps, cfg.opts)
                .map_err(|e| DriverError::NoFeasibleTiling(format!("{name}: {e}")))?;
            if let Some(g) = guard.take() {
                g.fulfill(&program_text, &params);
            }
            (params, plan, examined, CacheSource::Fresh)
        }
    };
    let (cuda_path, ptx_path) = emit_artifacts(&program, &params, &plan, &fp, cfg)?;

    // Execute the plan on the simulator.
    let planes = program.max_dt() as usize + 1;
    let align = alignment_offset_words(&program, &params, &cfg.opts);
    let init: Vec<Grid> = (0..program.num_fields())
        .map(|f| Grid::random(&dims, 1234 + f as u64))
        .collect();
    let mut sim = GpuSim::with_global_offset(cfg.device.clone(), &init, planes, align);
    if cfg.sim_threads > 1 {
        // A schedule that violates concurrent-tile independence is a
        // per-stencil verification failure, never a dead batch/service.
        sim.try_run_plan_parallel_with(&plan, cfg.sim_threads)
            .map_err(|e| DriverError::Verify(format!("{name}: {e}")))?;
    } else {
        sim.run_plan(&plan);
    }
    sim.set_point_updates(point_updates(&program, &dims, steps));

    // Bit-exact verification against the sequential oracle.
    let verified = if cfg.verify {
        let mut oracle = ReferenceExecutor::new(&program, &init);
        oracle.run(steps);
        let out = steps % planes;
        for f in 0..program.num_fields() {
            if !sim.plane(f, out).bit_equal(oracle.field(f)) {
                return Err(DriverError::Verify(format!(
                    "{name}: field {} diverged from the reference (max abs diff {:e})",
                    program.field_names()[f],
                    sim.plane(f, out).max_abs_diff(oracle.field(f))
                )));
            }
        }
        true
    } else {
        false
    };

    let t = timing::estimate_time(sim.counters(), sim.device());
    Ok(CompileOutcome {
        name,
        source: path.to_path_buf(),
        fingerprint: fp,
        cache_hit: cache.is_hit(),
        cache,
        examined,
        verified,
        gstencils: timing::gstencils_per_s(sim.counters(), sim.device()),
        seconds: t.total,
        launches: sim.counters().launches,
        kernels: plan.kernels.len(),
        smem_bytes: plan
            .kernels
            .iter()
            .map(|k| k.shared_bytes() as u64)
            .max()
            .unwrap_or(0),
        loads: program
            .statements()
            .iter()
            .map(|s| load_count(&s.expr))
            .collect(),
        flops: program
            .statements()
            .iter()
            .map(|s| flop_count(&s.expr))
            .collect(),
        params,
        dims,
        steps,
        cuda_path,
        ptx_path,
    })
}

/// Renders a caught panic payload (the `&str`/`String` forms `panic!`
/// produces; anything else degrades to a fixed message).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Compiles a batch of files across `cfg.jobs` worker threads (the PR-2
/// pool pattern: an atomic work index over the sorted file list). Results
/// keep input order; one file's failure never aborts the rest.
///
/// Panic isolation: each compile runs under [`catch_unwind`], so a
/// panicking pipeline stage becomes that file's
/// [`DriverError::Internal`] entry — and if a worker thread still dies,
/// its unfilled slots surface as `Internal` errors rather than a process
/// abort or a silently missing result.
pub fn compile_batch(
    paths: &[PathBuf],
    cfg: &DriverConfig,
) -> Vec<(PathBuf, Result<CompileOutcome, DriverError>)> {
    compile_batch_with(paths, cfg, None)
}

/// [`compile_batch`] against an optional shared in-memory plan cache.
pub fn compile_batch_with(
    paths: &[PathBuf],
    cfg: &DriverConfig,
    mem: Option<&MemCache>,
) -> Vec<(PathBuf, Result<CompileOutcome, DriverError>)> {
    let jobs = cfg.jobs.clamp(1, paths.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<CompileOutcome, DriverError>>>> =
        paths.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= paths.len() {
                        break;
                    }
                    let result =
                        catch_unwind(AssertUnwindSafe(|| compile_file_with(&paths[i], cfg, mem)))
                            .unwrap_or_else(|payload| {
                                Err(DriverError::Internal(format!(
                                    "compile of {} panicked: {}",
                                    paths[i].display(),
                                    panic_message(payload)
                                )))
                            });
                    *lock_ignore_poison(&slots[i]) = Some(result);
                })
            })
            .collect();
        // Join explicitly: a worker that dies despite the catch_unwind
        // boundary (e.g. a panic while panicking) must not take the
        // process down — its slots are reported as Internal below.
        for h in handles {
            let _ = h.join();
        }
    });
    paths
        .iter()
        .cloned()
        .zip(slots.into_iter().map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or_else(|| {
                    Err(DriverError::Internal(
                        "worker thread died before filling this result slot".to_string(),
                    ))
                })
        }))
        .collect()
}

/// Renders the machine-readable per-stencil report (the `--report`
/// artifact).
pub fn report_json(
    results: &[(PathBuf, Result<CompileOutcome, DriverError>)],
    cfg: &DriverConfig,
) -> Json {
    let compiled = results.iter().filter(|(_, r)| r.is_ok()).count();
    let cache_hits = results
        .iter()
        .filter(|(_, r)| r.as_ref().is_ok_and(|o| o.cache_hit))
        .count();
    Json::obj(vec![
        (
            "meta",
            Json::obj(vec![
                ("device", Json::str(cfg.device.name.clone())),
                ("tune", Json::str(cfg.tune.name())),
                ("smoke", Json::Bool(cfg.smoke)),
                ("verify", Json::Bool(cfg.verify)),
                ("sim_threads", Json::UInt(cfg.sim_threads as u64)),
                ("jobs", Json::UInt(cfg.jobs as u64)),
            ]),
        ),
        (
            "summary",
            Json::obj(vec![
                ("total", Json::UInt(results.len() as u64)),
                ("compiled", Json::UInt(compiled as u64)),
                ("failed", Json::UInt((results.len() - compiled) as u64)),
                ("cache_hits", Json::UInt(cache_hits as u64)),
            ]),
        ),
        (
            "stencils",
            Json::Arr(
                results
                    .iter()
                    .map(|(path, r)| outcome_json(&path.display().to_string(), r))
                    .collect(),
            ),
        ),
    ])
}

/// The per-stencil report object for one compile result — the unit both
/// `hybridc --report` (inside [`report_json`]) and the `hybridd` serve
/// protocol emit, so a service response is bit-identical to the one-shot
/// report entry.
pub fn outcome_json(source: &str, result: &Result<CompileOutcome, DriverError>) -> Json {
    match result {
        Ok(o) => Json::obj(vec![
            ("name", Json::str(o.name.clone())),
            ("source", Json::str(source)),
            ("status", Json::str("ok")),
            ("fingerprint", Json::str(o.fingerprint.clone())),
            ("cache_hit", Json::Bool(o.cache_hit)),
            ("cache", Json::str(o.cache.name())),
            ("examined", Json::UInt(o.examined as u64)),
            ("h", Json::Int(o.params.h)),
            (
                "w",
                Json::Arr(o.params.w.iter().map(|&x| Json::Int(x)).collect()),
            ),
            (
                "dims",
                Json::Arr(o.dims.iter().map(|&d| Json::UInt(d as u64)).collect()),
            ),
            ("steps", Json::UInt(o.steps as u64)),
            ("verified", Json::Bool(o.verified)),
            ("gstencils_per_s", Json::Num(o.gstencils)),
            ("est_seconds", Json::Num(o.seconds)),
            ("launches", Json::UInt(o.launches)),
            ("kernels", Json::UInt(o.kernels as u64)),
            ("smem_bytes", Json::UInt(o.smem_bytes)),
            (
                "loads",
                Json::Arr(o.loads.iter().map(|&x| Json::UInt(x as u64)).collect()),
            ),
            (
                "flops",
                Json::Arr(o.flops.iter().map(|&x| Json::UInt(x as u64)).collect()),
            ),
            ("cuda", Json::str(o.cuda_path.display().to_string())),
            ("ptx", Json::str(o.ptx_path.display().to_string())),
        ]),
        Err(e) => Json::obj(vec![
            ("source", Json::str(source)),
            ("status", Json::str("error")),
            ("error_kind", Json::str(e.kind())),
            ("error", Json::str(e.to_string())),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A fresh scratch directory per test invocation.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hybridc_test_{}_{}_{}",
            std::process::id(),
            tag,
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_stencil(dir: &Path, name: &str, body: &str) -> PathBuf {
        let p = dir.join(name);
        fs::write(&p, body).unwrap();
        p
    }

    const JACOBI: &str = "\
// five-point Jacobi
const float w = 0.2f;
for (t = 0; t < T; t++)
  for (i = 1; i < N-1; i++)
    for (j = 1; j < N-1; j++)
      A[t+1][i][j] = w * (A[t][i][j] + A[t][i+1][j] + A[t][i-1][j]
                        + A[t][i][j+1] + A[t][i][j-1]);
";

    fn smoke_cfg(out: PathBuf) -> DriverConfig {
        DriverConfig {
            smoke: true,
            ..DriverConfig::new(out)
        }
    }

    #[test]
    fn compiles_verifies_and_caches_a_user_stencil() {
        let dir = scratch("single");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));

        let first = compile_file(&file, &cfg).unwrap();
        assert_eq!(first.name, "jacobi");
        assert!(!first.cache_hit);
        assert!(first.examined > 0);
        assert!(first.verified);
        assert!(first.gstencils > 0.0);
        assert!(first.cuda_path.is_file());
        assert!(first.ptx_path.is_file());
        let cuda = fs::read_to_string(&first.cuda_path).unwrap();
        assert!(cuda.contains("__global__ void"), "{cuda}");

        // Second compile: same fingerprint, served from the cache.
        let second = compile_file(&file, &cfg).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.examined, 0);
        assert_eq!(second.params, first.params);
        assert_eq!(second.fingerprint, first.fingerprint);
    }

    #[test]
    fn corrupt_cache_entries_degrade_to_a_miss() {
        let dir = scratch("corrupt");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));
        let first = compile_file(&file, &cfg).unwrap();
        let entry = cfg
            .cache_dir
            .as_ref()
            .unwrap()
            .join(format!("{}.json", first.fingerprint));
        fs::write(&entry, "{ not json").unwrap();
        let second = compile_file(&file, &cfg).unwrap();
        assert!(!second.cache_hit, "corrupt entry must not be trusted");
        assert_eq!(second.params, first.params, "retuning is deterministic");
    }

    #[test]
    fn batch_compiles_across_workers_and_reports() {
        let dir = scratch("batch");
        write_stencil(&dir, "a_jacobi.stencil", JACOBI);
        write_stencil(
            &dir,
            "b_heat1d.stencil",
            "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    \
             A[t+1][i] = 0.25f * A[t][i-1] + 0.5f * A[t][i] + 0.25f * A[t][i+1];\n",
        );
        write_stencil(&dir, "c_broken.stencil", "for (t = 0; t < T; t++) oops\n");
        let files = collect_stencil_files(&dir).unwrap();
        assert_eq!(files.len(), 3);

        let cfg = DriverConfig {
            jobs: 2,
            ..smoke_cfg(dir.join("out"))
        };
        let results = compile_batch(&files, &cfg);
        assert_eq!(results.len(), 3);
        assert!(results[0].1.is_ok());
        assert!(results[1].1.is_ok());
        assert!(matches!(results[2].1, Err(DriverError::Parse(_))));

        let report = report_json(&results, &cfg);
        let summary = report.get("summary").unwrap();
        assert_eq!(summary.get("total").and_then(Json::as_u64), Some(3));
        assert_eq!(summary.get("compiled").and_then(Json::as_u64), Some(2));
        assert_eq!(summary.get("failed").and_then(Json::as_u64), Some(1));
        // The parser reads unsigned literals as UInt where the report used
        // Int, so round-trip equality holds at the text level.
        let text = report.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.render(), text, "report JSON round-trips");
    }

    #[test]
    fn batch_surfaces_worker_panics_as_per_file_errors() {
        // A scorer that panics on every candidate: the compile thread
        // unwinds inside the pool, and the batch must report it as that
        // file's Internal error — not abort, not drop the slot.
        let dir = scratch("panic_scorer");
        write_stencil(&dir, "a_jacobi.stencil", JACOBI);
        write_stencil(
            &dir,
            "b_broken.stencil",
            "for (t = 0; t < T; t++) nonsense\n",
        );
        let files = collect_stencil_files(&dir).unwrap();
        let cfg = DriverConfig {
            jobs: 2,
            scorer: Some(|_| panic!("injected scorer panic")),
            ..smoke_cfg(dir.join("out"))
        };
        let results = compile_batch(&files, &cfg);
        assert_eq!(results.len(), 2);
        match &results[0].1 {
            Err(DriverError::Internal(m)) => {
                assert!(m.contains("injected scorer panic"), "{m}");
                assert!(m.contains("a_jacobi"), "{m}");
            }
            other => panic!("expected Internal error, got {other:?}"),
        }
        // The other file still gets its own (parse) verdict.
        assert!(matches!(results[1].1, Err(DriverError::Parse(_))));
        let report = report_json(&results, &cfg);
        assert_eq!(
            report
                .get("summary")
                .and_then(|s| s.get("failed"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let entry = &report.get("stencils").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            entry.get("error_kind").and_then(Json::as_str),
            Some("internal")
        );
    }

    #[test]
    fn mem_cache_layers_above_the_disk_cache() {
        let dir = scratch("mem_cache");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));
        let mem = MemCache::new();

        let first = compile_file_with(&file, &cfg, Some(&mem)).unwrap();
        assert_eq!(first.cache, CacheSource::Fresh);
        assert_eq!(mem.len(), 1);
        assert_eq!((mem.hits(), mem.misses()), (0, 1));

        // Identical request: served from memory, not the disk.
        let second = compile_file_with(&file, &cfg, Some(&mem)).unwrap();
        assert_eq!(second.cache, CacheSource::Memory);
        assert_eq!(second.examined, 0);
        assert_eq!(second.params, first.params);
        assert_eq!((mem.hits(), mem.misses()), (1, 1));

        // A fresh memory cache falls back to the disk layer and promotes
        // the entry into memory.
        let mem2 = MemCache::new();
        let third = compile_file_with(&file, &cfg, Some(&mem2)).unwrap();
        assert_eq!(third.cache, CacheSource::Disk);
        assert_eq!(mem2.len(), 1);
        let fourth = compile_file_with(&file, &cfg, Some(&mem2)).unwrap();
        assert_eq!(fourth.cache, CacheSource::Memory);
    }

    #[test]
    fn mem_cache_single_flight_coalesces_concurrent_identical_requests() {
        let dir = scratch("single_flight");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        // No disk cache: every plan must come from tuning or memory.
        let cfg = DriverConfig {
            cache_dir: None,
            ..smoke_cfg(dir.join("out"))
        };
        let mem = MemCache::new();
        let outcomes: Vec<CompileOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| compile_file_with(&file, &cfg, Some(&mem)).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Exactly one request tuned; everyone agreed on the plan.
        assert_eq!(mem.misses(), 1);
        assert_eq!(mem.hits(), 3);
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| o.cache == CacheSource::Fresh)
                .count(),
            1
        );
        let params = &outcomes[0].params;
        assert!(outcomes.iter().all(|o| o.params == *params));
        assert!(outcomes
            .iter()
            .filter(|o| o.cache != CacheSource::Fresh)
            .all(|o| o.cache == CacheSource::Memory && o.examined == 0));
    }

    #[test]
    fn mem_cache_guard_drop_wakes_waiters_after_failure() {
        // A failing compile (no feasible tiling via a scorer that rejects
        // everything) must clear its in-flight marker so concurrent
        // identical requests fail on their own instead of hanging.
        let dir = scratch("guard_drop");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        let cfg = DriverConfig {
            cache_dir: None,
            scorer: Some(|_| None),
            ..smoke_cfg(dir.join("out"))
        };
        let mem = MemCache::new();
        let results: Vec<Result<CompileOutcome, DriverError>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| s.spawn(|| compile_file_with(&file, &cfg, Some(&mem))))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(DriverError::NoFeasibleTiling(_)))));
        assert!(mem.is_empty(), "failed compiles must not leave markers");
    }

    #[test]
    fn fingerprint_separates_devices_and_modes() {
        let dir = scratch("fp");
        let file = write_stencil(&dir, "j.stencil", JACOBI);
        let cfg = smoke_cfg(dir.join("out"));
        let program = parse_stencil("j", &fs::read_to_string(&file).unwrap()).unwrap();
        let base = fingerprint(&program, &cfg);
        let other_device = DriverConfig {
            device: DeviceConfig::nvs5200m(),
            ..cfg.clone()
        };
        let other_tune = DriverConfig {
            tune: TuneMode::Simulated,
            ..cfg.clone()
        };
        assert_ne!(base, fingerprint(&program, &other_device));
        assert_ne!(base, fingerprint(&program, &other_tune));
        assert_eq!(base, fingerprint(&program, &cfg.clone()));
        // The workload feeds tuning scores, so an override keys separately
        // — a plan tuned for one workload must not serve another.
        let other_workload = DriverConfig {
            workload: Some((vec![64, 64], 8)),
            ..cfg.clone()
        };
        assert_ne!(base, fingerprint(&program, &other_workload));
    }

    #[test]
    fn workload_overrides_are_validated_not_asserted() {
        let dir = scratch("workload");
        let file = write_stencil(&dir, "jacobi.stencil", JACOBI);
        // Wrong arity: 1D size for a 2D stencil.
        let cfg = DriverConfig {
            workload: Some((vec![64], 4)),
            ..smoke_cfg(dir.join("out"))
        };
        assert!(matches!(
            compile_file(&file, &cfg),
            Err(DriverError::Unsupported(_))
        ));
        // Empty interior: grid smaller than the stencil halo.
        let cfg = DriverConfig {
            workload: Some((vec![2, 2], 4)),
            ..smoke_cfg(dir.join("out"))
        };
        assert!(matches!(
            compile_file(&file, &cfg),
            Err(DriverError::Unsupported(_))
        ));
        // A legal override compiles and verifies on the requested grid.
        let cfg = DriverConfig {
            workload: Some((vec![48, 64], 8)),
            ..smoke_cfg(dir.join("out"))
        };
        let out = compile_file(&file, &cfg).unwrap();
        assert_eq!(out.dims, vec![48, 64]);
        assert_eq!(out.steps, 8);
        assert!(out.verified);
    }

    #[test]
    fn unsupported_and_missing_inputs_error_cleanly() {
        let dir = scratch("errs");
        assert!(matches!(
            collect_stencil_files(&dir.join("nope")),
            Err(DriverError::Io(_))
        ));
        let empty = dir.join("empty");
        fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            collect_stencil_files(&empty),
            Err(DriverError::Io(_))
        ));
        // 4D programs parse but the planner cannot tile them.
        let file = write_stencil(
            &dir,
            "hyper.stencil",
            "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n   for (j = 1; j < N-1; j++)\n    for (k = 1; k < N-1; k++)\n     for (l = 1; l < N-1; l++)\n      A[t+1][i][j][k][l] = A[t][i][j][k][l];\n",
        );
        let cfg = smoke_cfg(dir.join("out"));
        assert!(matches!(
            compile_file(&file, &cfg),
            Err(DriverError::Unsupported(_))
        ));
    }
}
