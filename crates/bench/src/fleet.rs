//! `hybridfleet` — the device-sharded fleet layer above the resident
//! compile service.
//!
//! One [`ServeState`] serves one device
//! configuration; the paper's §6 sweep (and the tuning literature it
//! cites) picks tile sizes *per device*, so a fleet-facing service must
//! route each request to a per-device tuned plan rather than stretch one
//! base config. The [`FleetRouter`] does exactly that:
//!
//! * every `compile` request is routed by its `device` field — a preset
//!   name or an inline device object
//!   ([`resolve_device`]) — to the member
//!   [`ServeState`] keyed by the **canonical device fingerprint**
//!   ([`device_fingerprint`]), so
//!   logically identical device descriptions share one member (and one
//!   plan cache) no matter how their JSON was spelled;
//! * unknown devices spin a member up lazily, up to `--max-devices`;
//!   past the cap requests get a typed `fleet_full` error instead of an
//!   unbounded state explosion;
//! * `status` aggregates liveness and cache counters across every
//!   member (per-device request counts included);
//! * `shutdown` stops the router and broadcasts the stop to all members;
//! * `cancel` fans out to the member holding the in-flight request.
//!
//! Each member owns a size-capped, device-sharded LRU plan cache
//! (`--mem-cap-bytes`, per device) and applies the fleet's default
//! request deadline (`--default-deadline-ms`); per-request `deadline_ms`
//! and explicit `cancel` map onto the same cooperative
//! [`CancelToken`](hybrid_tiling::cancel::CancelToken) threaded through
//! the tuning sweep.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::driver::{device_distance, device_fingerprint, DriverConfig};
use crate::json::Json;
use crate::serve::{
    backend_compiles_json, cancel_response, check_version, error_response, metrics_response,
    resolve_device, validate_compile_request, with_envelope, RequestHandler, ServeOptions,
    ServeState, ServeStats,
};

/// Fleet-level knobs (`hybridc serve` flags).
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Byte cap for each member's in-memory plan cache
    /// (`--mem-cap-bytes`); `None` = unbounded.
    pub mem_cap_bytes: Option<u64>,
    /// Maximum number of per-device members spun up lazily
    /// (`--max-devices`).
    pub max_devices: usize,
    /// Deadline applied to requests without their own `deadline_ms`
    /// (`--default-deadline-ms`); `None` = no default.
    pub default_deadline_ms: Option<u64>,
}

/// Most warm hints a cold member inherits from its donor: enough to
/// cover a realistic working set of programs, small enough that a huge
/// donor cache never turns a cold member's first tune into a sweep of
/// its own.
const WARM_HINT_CAP: usize = 32;

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            mem_cap_bytes: None,
            max_devices: 8,
            default_deadline_ms: None,
        }
    }
}

/// The device-sharded fleet front-end: owns N per-device
/// [`ServeState`]s keyed by canonical device fingerprint and implements
/// the same line protocol, so the serving loops
/// ([`serve`](crate::serve::serve) / [`serve_tcp`](crate::serve::serve_tcp))
/// drive it unchanged.
pub struct FleetRouter {
    base: DriverConfig,
    opts: FleetOptions,
    /// Members in spin-up order (stable `status` output), keyed by
    /// canonical device fingerprint.
    members: Mutex<Vec<(String, Arc<ServeState>)>>,
    started: Instant,
    /// Lines handled at the router (including ones rejected before
    /// reaching a member).
    requests: AtomicU64,
    /// Responses produced by the router itself (version/routing errors,
    /// status, cancel, shutdown) with `"status": "error"`.
    router_errors: AtomicU64,
    /// Non-error responses produced by the router itself.
    router_ok: AtomicU64,
    stop: AtomicBool,
    /// Scheduling/auth counters of the loops driving this fleet.
    stats: ServeStats,
}

impl FleetRouter {
    /// A fleet around `base` (the per-request defaults; `base.device` is
    /// the device of requests that don't name one). The default device's
    /// member is spun up eagerly so a single-device fleet behaves
    /// exactly like PR-4 `hybridd`.
    pub fn new(base: DriverConfig, opts: FleetOptions) -> FleetRouter {
        let router = FleetRouter {
            base: base.clone(),
            opts,
            members: Mutex::new(Vec::new()),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            router_errors: AtomicU64::new(0),
            router_ok: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            stats: ServeStats::default(),
        };
        let _ = router.member_for(&base.device.clone());
        router
    }

    /// The members spun up so far, in spin-up order.
    pub fn members(&self) -> Vec<(String, Arc<ServeState>)> {
        match self.members.lock() {
            Ok(m) => m.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// Lines handled so far (including router-level rejections).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stops the fleet as a served `shutdown` would: raises the router's
    /// stop flag and broadcasts the stop to every member, so every
    /// serving loop (stdin, TCP, unix, metrics) returns.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for (_, member) in self.members() {
            member.request_stop();
        }
    }

    /// True when a member for `device` already exists.
    fn has_member(&self, device: &gpusim::DeviceConfig) -> bool {
        let fp = device_fingerprint(device);
        let members = match self.members.lock() {
            Ok(m) => m,
            Err(p) => p.into_inner(),
        };
        members.iter().any(|(k, _)| *k == fp)
    }

    /// The member serving `device`, spun up lazily. `Err` carries the
    /// typed `fleet_full` message once `max_devices` members exist.
    fn member_for(&self, device: &gpusim::DeviceConfig) -> Result<Arc<ServeState>, String> {
        let fp = device_fingerprint(device);
        let mut members = match self.members.lock() {
            Ok(m) => m,
            Err(p) => p.into_inner(),
        };
        if let Some((_, state)) = members.iter().find(|(k, _)| *k == fp) {
            return Ok(state.clone());
        }
        if members.len() >= self.opts.max_devices.max(1) {
            return Err(format!(
                "fleet already serves {} device(s) (--max-devices); not spinning up {:?}",
                members.len(),
                device.name
            ));
        }
        let mut cfg = DriverConfig {
            device: device.clone(),
            ..self.base.clone()
        };
        // Cross-device warm start: seed the cold member with the
        // *nearest* existing member's cached plans ([`device_distance`]
        // over the fingerprint parameters). The hints are re-verified on
        // the new device during its first tunes — never copied blindly —
        // so a near-identical replica pays ~top_k + 1 scorings instead
        // of a full sweep, and a far device simply re-ranks them away.
        if let Some((donor_fp, donor)) = members.iter().min_by(|(_, a), (_, b)| {
            device_distance(device, &a.cfg().device)
                .total_cmp(&device_distance(device, &b.cfg().device))
        }) {
            cfg.warm_hints = donor.mem().device_plans(donor_fp, WARM_HINT_CAP);
        }
        let state = Arc::new(ServeState::with_options(
            cfg,
            ServeOptions {
                mem_cap_bytes: self.opts.mem_cap_bytes,
                default_deadline_ms: self.opts.default_deadline_ms,
            },
        ));
        members.push((fp, state.clone()));
        Ok(state)
    }

    /// Handles one wire line, routing compiles to the per-device member
    /// and answering fleet-wide ops (`status`, `cancel`, `shutdown`)
    /// itself. Same contract as
    /// [`ServeState::handle_line`](crate::serve::ServeState::handle_line):
    /// `None` for blank lines, a response object for everything else,
    /// never a panic escape (member compiles run under the member's own
    /// `catch_unwind` boundary).
    pub fn handle_line(&self, seq: u64, line: &str) -> Option<Json> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.dispatch(seq, line)
    }

    /// Counts a response the router produced itself (member-produced
    /// responses are counted by their member) and passes it through.
    fn track(&self, resp: Json) -> Json {
        if resp.get("status").and_then(Json::as_str) == Some("error") {
            self.router_errors.fetch_add(1, Ordering::Relaxed);
        } else {
            self.router_ok.fetch_add(1, Ordering::Relaxed);
        }
        resp
    }

    fn dispatch(&self, seq: u64, line: &str) -> Option<Json> {
        // Parse once at the router to route; the member re-parses the
        // raw line (requests are one line — the double parse is noise
        // next to a compile).
        let req = match Json::parse(line) {
            // Malformed JSON cannot name a device: the default member
            // answers it so its error shape (and error counters) live
            // where single-device clients expect them.
            Err(_) => return self.route_to_default(seq, line),
            Ok(v) => v,
        };
        let id = req.get("id").cloned();
        // The version gate applies to router-handled ops exactly as it
        // does to member-handled ones: a v:9 shutdown must be rejected,
        // not executed.
        if let Some(resp) = check_version(seq, id.as_ref(), &req) {
            return Some(self.track(resp));
        }
        match req.get("op").and_then(Json::as_str) {
            Some("status") => Some(self.track(self.status_response(seq, id.as_ref()))),
            Some("metrics") => {
                Some(self.track(metrics_response(seq, id.as_ref(), self.metrics_text())))
            }
            Some("cancel") => Some(self.track(self.handle_cancel(seq, id.as_ref(), &req))),
            Some("shutdown") => {
                self.request_stop();
                Some(self.track(with_envelope(
                    seq,
                    id.as_ref(),
                    Json::obj(vec![("status", Json::str("stopping"))]),
                )))
            }
            Some("compile") => {
                let device = match req.get("device") {
                    Some(d) => match resolve_device(d, &self.base.device) {
                        Ok(device) => device,
                        Err(msg) => {
                            return Some(self.track(error_response(
                                seq,
                                id.as_ref(),
                                "bad_request",
                                &msg,
                            )))
                        }
                    },
                    None => self.base.device.clone(),
                };
                // A device slot is a bounded resource: before spinning a
                // *new* member up, the whole request must validate — a
                // stream of garbage compiles naming fresh devices must
                // not exhaust --max-devices.
                if !self.has_member(&device) {
                    if let Err(e) = validate_compile_request(&self.base, &req) {
                        return Some(self.track(error_response(
                            seq,
                            id.as_ref(),
                            e.kind(),
                            e.message(),
                        )));
                    }
                }
                match self.member_for(&device) {
                    Ok(member) => member.handle_line(seq, line),
                    Err(msg) => {
                        Some(self.track(error_response(seq, id.as_ref(), "fleet_full", &msg)))
                    }
                }
            }
            // Version errors, missing/unknown ops: the default member
            // produces the canonical error responses.
            _ => self.route_to_default(seq, line),
        }
    }

    /// Routes a line to the default device's member (the line is not a
    /// routable compile: malformed, unknown op, bad version, ...).
    fn route_to_default(&self, seq: u64, line: &str) -> Option<Json> {
        match self.member_for(&self.base.device.clone()) {
            Ok(member) => member.handle_line(seq, line),
            // max_devices = 0-ish pathology: answer at the router.
            Err(msg) => Some(self.track(error_response(seq, None, "fleet_full", &msg))),
        }
    }

    fn handle_cancel(&self, seq: u64, id: Option<&Json>, req: &Json) -> Json {
        cancel_response(seq, id, req, |key| {
            // Raise the flags on every member (no short-circuit: the
            // same id may be in flight on several devices at once).
            let mut found = false;
            for (_, member) in self.members() {
                found |= member.cancel(key);
            }
            found
        })
    }

    /// The aggregated fleet status: totals across every member plus one
    /// per-device entry (each member's full
    /// [`status_payload`](ServeState::status_payload), so per-device
    /// request counts and cache metrics are first-class).
    pub fn status_payload(&self) -> Json {
        let members = self.members();
        let sum =
            |f: &dyn Fn(&ServeState) -> u64| -> u64 { members.iter().map(|(_, m)| f(m)).sum() };
        Json::obj(vec![
            ("status", Json::str("alive")),
            (
                "uptime_ms",
                Json::UInt(self.started.elapsed().as_millis() as u64),
            ),
            (
                "requests",
                Json::UInt(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "ok",
                Json::UInt(sum(&|m| m.ok_count()) + self.router_ok.load(Ordering::Relaxed)),
            ),
            (
                "errors",
                Json::UInt(sum(&|m| m.error_count()) + self.router_errors.load(Ordering::Relaxed)),
            ),
            ("contained_panics", Json::UInt(sum(&|m| m.panic_count()))),
            ("warm_starts", Json::UInt(sum(&|m| m.warm_starts()))),
            ("warm_start_hits", Json::UInt(sum(&|m| m.warm_start_hits()))),
            (
                "tune_simulations",
                Json::UInt(sum(&|m| m.tune_simulations())),
            ),
            (
                "proxy_simulations",
                Json::UInt(sum(&|m| m.proxy_simulations())),
            ),
            ("tune_wall_ms", Json::UInt(sum(&|m| m.tune_wall_ms()))),
            ("backend_compiles", {
                let mut totals = [0u64; 4];
                for (_, m) in &members {
                    for (i, c) in m.backend_compiles().into_iter().enumerate() {
                        totals[i] += c;
                    }
                }
                backend_compiles_json(totals)
            }),
            ("device_count", Json::UInt(members.len() as u64)),
            ("max_devices", Json::UInt(self.opts.max_devices as u64)),
            (
                "mem_cap_bytes",
                match self.opts.mem_cap_bytes {
                    Some(cap) => Json::UInt(cap),
                    None => Json::Null,
                },
            ),
            (
                "default_deadline_ms",
                match self.opts.default_deadline_ms {
                    Some(ms) => Json::UInt(ms),
                    None => Json::Null,
                },
            ),
            ("sched_policy", Json::str(self.stats.policy().name())),
            ("queue_depth", Json::UInt(self.stats.queue_depth())),
            (
                "queue_depth_peak",
                Json::UInt(self.stats.queue_depth_peak()),
            ),
            ("deadline_misses", Json::UInt(self.stats.deadline_misses())),
            ("edf_promotions", Json::UInt(self.stats.edf_promotions())),
            ("auth_ok", Json::UInt(self.stats.auth_ok())),
            ("auth_failures", Json::UInt(self.stats.auth_failures())),
            ("auth_rejected", Json::UInt(self.stats.auth_rejected())),
            (
                "devices",
                Json::Arr(members.iter().map(|(_, m)| m.status_payload()).collect()),
            ),
        ])
    }

    fn status_response(&self, seq: u64, id: Option<&Json>) -> Json {
        with_envelope(seq, id, self.status_payload())
    }

    /// The scheduling/auth counters of this fleet's loops.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The fleet's full metric set as a [`MetricsSnapshot`](crate::metrics::MetricsSnapshot): one
    /// [`DeviceMetrics`](crate::metrics::DeviceMetrics) per member
    /// (labeled by its canonical device fingerprint) plus the router's
    /// scheduling and auth counters.
    pub fn metrics_snapshot(&self) -> crate::metrics::MetricsSnapshot {
        let mut snap =
            crate::metrics::snapshot_stats(&self.stats, self.started.elapsed().as_millis() as u64);
        snap.max_devices = Some(self.opts.max_devices as u64);
        snap.devices = self
            .members()
            .iter()
            .map(|(fp, m)| crate::metrics::device_metrics(fp, m))
            .collect();
        snap
    }
}

impl RequestHandler for FleetRouter {
    fn handle_line(&self, seq: u64, line: &str) -> Option<Json> {
        FleetRouter::handle_line(self, seq, line)
    }
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
    fn stats(&self) -> &ServeStats {
        FleetRouter::stats(self)
    }
    fn metrics_text(&self) -> String {
        crate::metrics::render(&self.metrics_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::serve;
    use std::io::Cursor;

    const JACOBI: &str = "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    for (j = 1; j < N-1; j++)\n      A[t+1][i][j] = 0.25f * (A[t][i+1][j] + A[t][i-1][j] + A[t][i][j+1] + A[t][i][j-1]);\n";

    fn test_router(tag: &str, opts: FleetOptions) -> FleetRouter {
        let dir = std::env::temp_dir().join(format!("fleet_test_{}_{}", std::process::id(), tag));
        let cfg = DriverConfig {
            smoke: true,
            cache_dir: None,
            ..DriverConfig::new(dir)
        };
        FleetRouter::new(cfg, opts)
    }

    fn compile_req(id: &str, device: Option<&str>) -> String {
        let mut pairs = vec![
            ("op", Json::str("compile")),
            ("id", Json::str(id)),
            ("name", Json::str("jac")),
            ("program", Json::str(JACOBI)),
        ];
        if let Some(d) = device {
            pairs.push(("device", Json::str(d)));
        }
        Json::obj(pairs).render_compact()
    }

    #[test]
    fn routes_by_device_with_per_device_cache_isolation() {
        let router = test_router("route", FleetOptions::default());
        // Same program on two devices: two members, two tuning sweeps.
        let a1 = router.handle_line(1, &compile_req("a1", None)).unwrap();
        let b1 = router
            .handle_line(2, &compile_req("b1", Some("nvs5200m")))
            .unwrap();
        assert_eq!(a1.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(b1.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(a1.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(
            b1.get("cache").and_then(Json::as_str),
            Some("miss"),
            "a second device must tune for itself, not reuse the first's plan"
        );
        assert_ne!(
            a1.get("fingerprint"),
            b1.get("fingerprint"),
            "per-device plans key apart"
        );
        // Repeats hit each device's own memory cache.
        let a2 = router.handle_line(3, &compile_req("a2", None)).unwrap();
        let b2 = router
            .handle_line(4, &compile_req("b2", Some("nvs5200m")))
            .unwrap();
        assert_eq!(a2.get("cache").and_then(Json::as_str), Some("mem"));
        assert_eq!(b2.get("cache").and_then(Json::as_str), Some("mem"));
        // Two members, each with exactly one cached plan for its own
        // device fingerprint.
        let members = router.members();
        assert_eq!(members.len(), 2);
        for (fp, member) in &members {
            assert_eq!(member.mem().len(), 1);
            assert_eq!(member.mem().len_for_device(fp), 1);
            assert_eq!(member.requests(), 2);
        }
    }

    #[test]
    fn cold_members_warm_start_from_the_nearest_device() {
        let router = test_router("warm", FleetOptions::default());
        let sim_req = |id: &str, device: Json| {
            Json::obj(vec![
                ("op", Json::str("compile")),
                ("id", Json::str(id)),
                ("name", Json::str("jac")),
                ("program", Json::str(JACOBI)),
                ("device", device),
                ("tune", Json::str("simulated")),
                ("top_k", Json::UInt(2)),
            ])
            .render_compact()
        };
        // Seed the donor: the default GTX 470 member tunes and caches.
        let donor = router
            .handle_line(1, &sim_req("d", Json::str("gtx470")))
            .unwrap();
        assert_eq!(donor.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(donor.get("warm_start"), Some(&Json::Bool(false)));
        // A near device (same GTX 470, faster clock) spins up cold and
        // inherits the donor's plan as a re-verified hint.
        let near = Json::obj(vec![
            ("base", Json::str("gtx470")),
            ("clock_ghz", Json::Num(1.4)),
        ]);
        let warm = router.handle_line(2, &sim_req("w", near)).unwrap();
        assert_eq!(
            warm.get("status").and_then(Json::as_str),
            Some("ok"),
            "{warm:?}"
        );
        assert_eq!(warm.get("warm_start"), Some(&Json::Bool(true)));
        // ≈ top_k + 1 scorings, never the full sweep.
        let simulated = warm.get("simulated").and_then(Json::as_u64).unwrap();
        assert!(simulated <= 3, "cold member must pay ~k sims: {warm:?}");
        // Counters surface on the warm member and in the fleet totals.
        let members = router.members();
        assert_eq!(members.len(), 2);
        let warm_member = members
            .iter()
            .map(|(_, m)| m)
            .find(|m| m.warm_starts() > 0)
            .expect("one member must have warm-started");
        assert!(warm_member.tune_simulations() <= 3);
        let status = router.handle_line(3, "{\"op\":\"status\"}").unwrap();
        assert_eq!(status.get("warm_starts").and_then(Json::as_u64), Some(1));
        assert!(
            status
                .get("tune_simulations")
                .and_then(Json::as_u64)
                .unwrap()
                > 0
        );
    }

    #[test]
    fn max_devices_caps_lazy_spin_up_with_a_typed_error() {
        let router = test_router(
            "cap",
            FleetOptions {
                max_devices: 1,
                ..FleetOptions::default()
            },
        );
        let ok = router.handle_line(1, &compile_req("a", None)).unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
        let full = router
            .handle_line(2, &compile_req("b", Some("nvs5200m")))
            .unwrap();
        assert_eq!(full.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            full.get("error_kind").and_then(Json::as_str),
            Some("fleet_full")
        );
        assert_eq!(full.get("id").and_then(Json::as_str), Some("b"));
        assert_eq!(router.members().len(), 1);
        // The known device keeps serving.
        let again = router
            .handle_line(3, &compile_req("c", Some("gtx470")))
            .unwrap();
        assert_eq!(again.get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn aggregated_status_reports_totals_and_per_device_counters() {
        let router = test_router("status", FleetOptions::default());
        let _ = router.handle_line(1, &compile_req("a", None)).unwrap();
        let _ = router
            .handle_line(2, &compile_req("b", Some("nvs5200m")))
            .unwrap();
        let _ = router.handle_line(3, "not json").unwrap();
        let status = router
            .handle_line(4, "{\"op\":\"status\",\"id\":\"st\"}")
            .unwrap();
        assert_eq!(status.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(status.get("status").and_then(Json::as_str), Some("alive"));
        assert_eq!(status.get("requests").and_then(Json::as_u64), Some(4));
        // The two compiles; the status request itself is counted only
        // once its response is written (same semantics as ServeState).
        assert_eq!(status.get("ok").and_then(Json::as_u64), Some(2));
        assert_eq!(status.get("errors").and_then(Json::as_u64), Some(1));
        assert_eq!(status.get("device_count").and_then(Json::as_u64), Some(2));
        let devices = status.get("devices").and_then(Json::as_arr).unwrap();
        assert_eq!(devices.len(), 2);
        // Per-device request counts: the garbage line went to the
        // default member alongside its compile.
        let by_name = |name: &str| {
            devices
                .iter()
                .find(|d| d.get("device").and_then(Json::as_str) == Some(name))
                .unwrap()
        };
        assert_eq!(
            by_name("GTX 470").get("requests").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            by_name("NVS 5200M").get("requests").and_then(Json::as_u64),
            Some(1)
        );
        for d in devices {
            assert!(d.get("device_fingerprint").is_some());
            assert!(d.get("mem_evictions").is_some());
        }
    }

    #[test]
    fn fleet_serves_through_the_generic_loop_and_shuts_down() {
        let router = test_router("loop", FleetOptions::default());
        let input = format!(
            "{}\n{}\n{}\n{}\n",
            compile_req("a", None),
            compile_req("b", Some("nvs5200m")),
            "{\"op\":\"status\"}",
            "{\"op\":\"shutdown\"}",
        );
        let mut out = Vec::new();
        let summary = serve(&router, Cursor::new(input), &mut out, 2).unwrap();
        assert_eq!(summary.responses, 4);
        assert_eq!(summary.errors, 0);
        assert!(RequestHandler::stopped(&router));
        for (_, member) in router.members() {
            assert!(member.stopped(), "shutdown must broadcast to members");
        }
    }

    #[test]
    fn deadline_and_cancel_flow_through_the_router() {
        let router = test_router("deadline", FleetOptions::default());
        let req = Json::obj(vec![
            ("op", Json::str("compile")),
            ("id", Json::str("dl")),
            ("program", Json::str(JACOBI)),
            ("device", Json::str("nvs5200m")),
            ("deadline_ms", Json::UInt(0)),
        ])
        .render_compact();
        let resp = router.handle_line(1, &req).unwrap();
        assert_eq!(
            resp.get("error_kind").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        // cancel of an unknown id sweeps every member and reports not
        // found.
        let cancel = router
            .handle_line(2, "{\"op\":\"cancel\",\"target\":\"nope\"}")
            .unwrap();
        assert_eq!(cancel.get("found"), Some(&Json::Bool(false)));
        // A default deadline set fleet-wide reaches lazily spun members.
        let strict = test_router(
            "deadline_default",
            FleetOptions {
                default_deadline_ms: Some(0),
                ..FleetOptions::default()
            },
        );
        let resp = strict
            .handle_line(1, &compile_req("x", Some("nvs5200m")))
            .unwrap();
        assert_eq!(
            resp.get("error_kind").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
    }

    #[test]
    fn unsupported_version_is_rejected_at_the_default_member() {
        let router = test_router("version", FleetOptions::default());
        let resp = router
            .handle_line(1, "{\"v\":9,\"op\":\"compile\",\"program\":\"x\"}")
            .unwrap();
        assert_eq!(
            resp.get("error_kind").and_then(Json::as_str),
            Some("unsupported_version")
        );
    }

    #[test]
    fn unsupported_version_cannot_drive_router_ops() {
        // Regression: the version gate must cover the ops the router
        // answers itself — a v:9 shutdown must be rejected, not stop the
        // fleet.
        let router = test_router("version_ops", FleetOptions::default());
        for line in [
            "{\"v\":9,\"op\":\"shutdown\"}",
            "{\"v\":9,\"op\":\"status\"}",
            "{\"v\":9,\"op\":\"cancel\",\"target\":\"x\"}",
        ] {
            let resp = router.handle_line(1, line).unwrap();
            assert_eq!(
                resp.get("error_kind").and_then(Json::as_str),
                Some("unsupported_version"),
                "{line}"
            );
        }
        assert!(
            !RequestHandler::stopped(&router),
            "v:9 shutdown must not stop the fleet"
        );
        let status = router.handle_line(2, "{\"op\":\"status\"}").unwrap();
        assert_eq!(status.get("status").and_then(Json::as_str), Some("alive"));
    }

    #[test]
    fn invalid_compiles_cannot_exhaust_device_slots() {
        // Regression: a garbage compile naming a fresh device must be
        // rejected *before* a member is created, so --max-devices cannot
        // be exhausted by invalid requests.
        let router = test_router(
            "slot_guard",
            FleetOptions {
                max_devices: 2,
                ..FleetOptions::default()
            },
        );
        for (i, bad) in [
            // Missing program/path.
            "{\"op\":\"compile\",\"device\":\"nvs5200m\"}".to_string(),
            // Bad tune mode.
            format!(
                "{{\"op\":\"compile\",\"program\":{},\"device\":\"nvs5200m\",\"tune\":\"psychic\"}}",
                Json::str(JACOBI).render_compact()
            ),
            // Bad deadline type.
            format!(
                "{{\"op\":\"compile\",\"program\":{},\"device\":\"nvs5200m\",\"deadline_ms\":\"soon\"}}",
                Json::str(JACOBI).render_compact()
            ),
        ]
        .iter()
        .enumerate()
        {
            let resp = router.handle_line(i as u64 + 1, bad).unwrap();
            assert_eq!(
                resp.get("error_kind").and_then(Json::as_str),
                Some("bad_request"),
                "{bad}"
            );
        }
        assert_eq!(
            router.members().len(),
            1,
            "invalid compiles must not spin up members"
        );
        // The slot is still free for a valid request.
        let ok = router
            .handle_line(9, &compile_req("ok", Some("nvs5200m")))
            .unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(router.members().len(), 2);
    }
}
