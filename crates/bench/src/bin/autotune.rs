//! The §6 tile-size autotuner and the parallel-executor speedup gate.
//!
//! Sweeps the `(h, w0, w1, ..)` space for the selected stencils under the
//! Fermi shared-memory/register budgets, verifies the surviving schedules,
//! scores each candidate on the block-parallel simulator, and prints a
//! ranked table. Also measures sequential-vs-parallel simulator wall
//! clock on the Table-3 gallery and writes everything to
//! `BENCH_autotune.json` (the CI artifact).
//!
//! Usage:
//!
//! ```text
//! autotune [--smoke] [--threads N] [--device gtx470|nvs5200m]
//!          [--min-speedup X] [--min-compiled-speedup X] [--model-gate]
//!          [--race-gate] [--out PATH]
//! ```
//!
//! * `--smoke` — tiny sweep and workloads (the CI `bench-smoke` mode);
//! * `--threads N` — worker-pool width (default: `HYBRID_SIM_THREADS`
//!   or the machine's available parallelism; `0` means auto);
//! * `--min-speedup X` — exit non-zero if the aggregate parallel speedup
//!   over the gallery falls below `X`. Only enforced when more than one
//!   worker is actually in use: on a single-core host the parallel path
//!   falls back to the sequential executor and a speedup gate would only
//!   measure timer noise.
//! * `--min-compiled-speedup X` — exit non-zero if the aggregate
//!   single-thread speedup of the compiled-bytecode executor over the
//!   interpreter falls below `X`. Unlike the parallel gate this one has
//!   no host-cpu escape hatch: compilation must never lose to
//!   re-interpretation, even on one core.
//! * `--model-gate` — exit non-zero unless the analytical shortlist pays
//!   at least 5x fewer simulator scorings than the exhaustive sweep over
//!   the full 2-D space while every stencil's shortlist winner scores
//!   within 10% of the exhaustive winner.
//! * `--race-gate` — exit non-zero unless the parallel racing sweep with
//!   the successive-halving fidelity ladder pays at least 2x fewer
//!   full-fidelity simulations than the sequential full-fidelity sweep,
//!   every stencil's top-1 plan scores within 10% of the sequential
//!   winner's, and the racing wall clock is no slower than sequential.
//!   The paired wall clocks land in the `race` block of the JSON as a
//!   `tune_wall_ms` trend.
//! * `--out PATH` — where to write the JSON (default `BENCH_autotune.json`).
//! * `--baseline PATH` — compare this run's per-stencil
//!   `points_per_sec_compiled` against a checked-in earlier run of the
//!   same shape (e.g. `BENCH_baseline.json`) and exit non-zero if any
//!   stencil regressed more than 30%. Because absolute throughput
//!   tracks the host, the comparison is normalized by each run's
//!   aggregate *interpreter* throughput — the interpreter is the
//!   stable code path, so the ratio isolates regressions in the
//!   compiled executor from runner-speed variance.

use gpusim::DeviceConfig;
use hybrid_bench::autotune::{
    autotune_program, measure_exec_throughput, measure_speedup, model_gate_sample, race_gate_sample,
};
use hybrid_bench::json::Json;
use stencil::gallery;

struct Args {
    smoke: bool,
    threads: usize,
    device: DeviceConfig,
    min_speedup: Option<f64>,
    min_compiled_speedup: Option<f64>,
    model_gate: bool,
    race_gate: bool,
    out: String,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: gpusim::sim_threads(),
        device: DeviceConfig::gtx470(),
        min_speedup: None,
        min_compiled_speedup: None,
        model_gate: false,
        race_gate: false,
        out: "BENCH_autotune.json".into(),
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--threads" => {
                let v = it.next().expect("--threads needs a value");
                let n: usize = v.parse().expect("--threads takes a non-negative integer");
                // 0 means auto, the same contract as HYBRID_SIM_THREADS=0
                // and `hybridc --threads 0`.
                args.threads = gpusim::resolve_sim_threads(n);
            }
            "--device" => {
                let v = it.next().expect("--device needs a value");
                args.device = match v.as_str() {
                    "gtx470" => DeviceConfig::gtx470(),
                    "nvs5200m" => DeviceConfig::nvs5200m(),
                    other => panic!("unknown device {other:?} (gtx470|nvs5200m)"),
                };
            }
            "--min-speedup" => {
                let v = it.next().expect("--min-speedup needs a value");
                args.min_speedup = Some(v.parse().expect("--min-speedup takes a number"));
            }
            "--min-compiled-speedup" => {
                let v = it.next().expect("--min-compiled-speedup needs a value");
                args.min_compiled_speedup =
                    Some(v.parse().expect("--min-compiled-speedup takes a number"));
            }
            "--model-gate" => args.model_gate = true,
            "--race-gate" => args.race_gate = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--baseline" => args.baseline = Some(it.next().expect("--baseline needs a path")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "autotune: device = {}, threads = {}, host cpus = {}, mode = {}",
        args.device.name,
        args.threads,
        host_cpus,
        if args.smoke { "smoke" } else { "full" }
    );

    // --- Sweep: 2D stencils cover the (h, w0, w1) space of §6. ---
    let sweep_stencils = if args.smoke {
        vec![gallery::jacobi2d()]
    } else {
        vec![gallery::laplacian2d(), gallery::heat2d(), gallery::heat3d()]
    };
    let mut sweep_json = Vec::new();
    for program in &sweep_stencils {
        let report = autotune_program(program, &args.device, args.threads, args.smoke);
        println!(
            "\n{}: {} candidates examined, {} infeasible schedule, {} over smem, \
             {} over regs, {} pruned, {} rejected by scorer",
            program.name(),
            report.examined,
            report.rejected_schedule,
            report.rejected_smem,
            report.rejected_regs,
            report.pruned,
            report.rejected_scorer,
        );
        println!(
            "{:>4} {:>4} {:>12} {:>10} {:>12} {:>14}",
            "h", "w", "ratio", "smem KB", "GStencils/s", ""
        );
        for (rank, e) in report.ranked.iter().enumerate() {
            println!(
                "{:>4} {:>4?} {:>12.4} {:>10.1} {:>12.3} {:>14}",
                e.model.params.h,
                e.model.params.w,
                e.model.ratio(),
                e.model.smem_bytes as f64 / 1024.0,
                e.score,
                if rank == 0 { "<- selected" } else { "" }
            );
        }
        sweep_json.push(Json::obj(vec![
            ("stencil", Json::str(program.name())),
            ("examined", Json::UInt(report.examined as u64)),
            (
                "rejected_schedule",
                Json::UInt(report.rejected_schedule as u64),
            ),
            ("rejected_smem", Json::UInt(report.rejected_smem as u64)),
            ("rejected_regs", Json::UInt(report.rejected_regs as u64)),
            ("pruned", Json::UInt(report.pruned as u64)),
            ("rejected_scorer", Json::UInt(report.rejected_scorer as u64)),
            (
                "ranked",
                Json::Arr(
                    report
                        .ranked
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("h", Json::Int(e.model.params.h)),
                                (
                                    "w",
                                    Json::Arr(
                                        e.model.params.w.iter().map(|&w| Json::Int(w)).collect(),
                                    ),
                                ),
                                ("iterations", Json::UInt(e.model.iterations)),
                                ("steady_loads", Json::UInt(e.model.steady_loads)),
                                ("load_to_compute_ratio", Json::Num(e.model.ratio())),
                                ("smem_bytes", Json::UInt(e.model.smem_bytes)),
                                ("gstencils_per_s", Json::Num(e.score)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    // --- Model gate: exhaustive vs analytical-shortlist sweeps. ---
    // Always over the *full* 2-D space so the simulation counts are
    // meaningful even in smoke mode (the smoke space has too few
    // candidates for a shortlist to save anything).
    println!("\nmodel-guided shortlist vs exhaustive sweep (full 2-D space):");
    println!(
        "{:<14} {:>5} {:>10} {:>10} {:>10} {:>9}",
        "stencil", "k", "sims full", "sims top-k", "reduction", "quality"
    );
    let gate_stencils = vec![
        gallery::laplacian2d(),
        gallery::heat2d(),
        gallery::jacobi2d(),
    ];
    let mut gate_samples = Vec::new();
    for program in &gate_stencils {
        let s = model_gate_sample(program, &args.device, args.threads);
        println!(
            "{:<14} {:>5} {:>10} {:>10} {:>9.1}x {:>8.1}%",
            s.stencil,
            s.top_k,
            s.exhaustive_simulations,
            s.shortlist_simulations,
            s.sim_reduction(),
            s.quality() * 100.0,
        );
        gate_samples.push(s);
    }
    let gate_exhaustive: usize = gate_samples.iter().map(|s| s.exhaustive_simulations).sum();
    let gate_shortlist: usize = gate_samples.iter().map(|s| s.shortlist_simulations).sum();
    let gate_reduction = if gate_shortlist > 0 {
        gate_exhaustive as f64 / gate_shortlist as f64
    } else {
        f64::INFINITY
    };
    println!(
        "{:<14} {:>5} {:>10} {:>10} {:>9.1}x",
        "total", "", gate_exhaustive, gate_shortlist, gate_reduction
    );

    // --- Race gate: sequential full-fidelity vs parallel ladder sweeps. ---
    // Same full 2-D space as the model gate so the full-simulation
    // counts are meaningful in smoke mode too.
    let budget = gpusim::resolve_sim_threads(args.threads);
    println!("\nracing ladder vs sequential full-fidelity sweep (budget {budget} threads):");
    println!(
        "{:<14} {:>7} {:>10} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "stencil", "workers", "seq full", "lad full", "lad proxy", "reduction", "quality", "wall"
    );
    let mut race_samples = Vec::new();
    for program in &gate_stencils {
        let s = race_gate_sample(program, &args.device, budget);
        println!(
            "{:<14} {:>7} {:>10} {:>10} {:>10} {:>8.1}x {:>7.1}% {:>7.2}x",
            s.stencil,
            s.workers,
            s.seq_full_simulations,
            s.ladder_full_simulations,
            s.ladder_proxy_simulations,
            s.full_sim_reduction(),
            s.quality() * 100.0,
            s.wall_speedup(),
        );
        race_samples.push(s);
    }
    let race_seq_full: usize = race_samples.iter().map(|s| s.seq_full_simulations).sum();
    let race_ladder_full: usize = race_samples.iter().map(|s| s.ladder_full_simulations).sum();
    let race_reduction = if race_ladder_full > 0 {
        race_seq_full as f64 / race_ladder_full as f64
    } else {
        f64::INFINITY
    };
    let race_seq_wall: f64 = race_samples.iter().map(|s| s.seq_wall_ms).sum();
    let race_ladder_wall: f64 = race_samples.iter().map(|s| s.ladder_wall_ms).sum();
    let race_wall_speedup = if race_ladder_wall > 0.0 {
        race_seq_wall / race_ladder_wall
    } else {
        1.0
    };
    println!(
        "{:<14} {:>7} {:>10} {:>10} {:>10} {:>8.1}x {:>8} {:>7.2}x",
        "total", "", race_seq_full, race_ladder_full, "", race_reduction, "", race_wall_speedup
    );

    // --- Speedup: sequential vs parallel executor on the Table-3 gallery. ---
    println!("\nparallel executor vs sequential (Table-3 gallery):");
    println!(
        "{:<14} {:>10} {:>10} {:>9} {:>9}",
        "stencil", "seq (s)", "par (s)", "speedup", "launches"
    );
    let mut samples = Vec::new();
    let mut total_seq = 0.0;
    let mut total_par = 0.0;
    for program in gallery::table3_stencils() {
        // Best-of-3 in smoke mode keeps the CI gate robust to runner
        // noise; full-mode workloads are long enough for a single run.
        let repeats = if args.smoke { 3 } else { 1 };
        let s = measure_speedup(&program, &args.device, args.threads, args.smoke, repeats);
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>8.2}x {:>9}",
            s.stencil,
            s.seq_seconds,
            s.par_seconds,
            s.speedup(),
            s.launches
        );
        total_seq += s.seq_seconds;
        total_par += s.par_seconds;
        samples.push(s);
    }
    let aggregate = if total_par > 0.0 {
        total_seq / total_par
    } else {
        1.0
    };
    println!(
        "{:<14} {:>10.4} {:>10.4} {:>8.2}x   ({} workers)",
        "total", total_seq, total_par, aggregate, args.threads
    );

    // --- Executor throughput: interpreted vs compiled bytecode, 1 thread. ---
    println!("\ncompiled-bytecode executor vs interpreter (single thread):");
    println!(
        "{:<14} {:>12} {:>12} {:>9} {:>16} {:>16}",
        "stencil", "interp (s)", "compiled (s)", "speedup", "pts/s interp", "pts/s compiled"
    );
    let mut exec_samples = Vec::new();
    let mut total_interp = 0.0;
    let mut total_compiled = 0.0;
    for program in gallery::table3_stencils() {
        let repeats = if args.smoke { 3 } else { 1 };
        let s = measure_exec_throughput(&program, &args.device, args.smoke, repeats);
        println!(
            "{:<14} {:>12.4} {:>12.4} {:>8.2}x {:>16.0} {:>16.0}",
            s.stencil,
            s.interpreted_seconds,
            s.compiled_seconds,
            s.speedup(),
            s.points_per_sec_interpreted(),
            s.points_per_sec_compiled(),
        );
        total_interp += s.interpreted_seconds;
        total_compiled += s.compiled_seconds;
        exec_samples.push(s);
    }
    let compiled_aggregate = if total_compiled > 0.0 {
        total_interp / total_compiled
    } else {
        1.0
    };
    println!(
        "{:<14} {:>12.4} {:>12.4} {:>8.2}x",
        "total", total_interp, total_compiled, compiled_aggregate
    );

    let doc = Json::obj(vec![
        (
            "meta",
            Json::obj(vec![
                ("device", Json::str(args.device.name.clone())),
                ("threads", Json::UInt(args.threads as u64)),
                ("host_cpus", Json::UInt(host_cpus as u64)),
                ("smoke", Json::Bool(args.smoke)),
            ]),
        ),
        ("autotune", Json::Arr(sweep_json)),
        (
            "model_guided",
            Json::obj(vec![
                ("aggregate_sim_reduction", Json::Num(gate_reduction)),
                ("exhaustive_simulations", Json::UInt(gate_exhaustive as u64)),
                ("shortlist_simulations", Json::UInt(gate_shortlist as u64)),
                (
                    "per_stencil",
                    Json::Arr(
                        gate_samples
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("stencil", Json::str(s.stencil.clone())),
                                    ("top_k", Json::UInt(s.top_k as u64)),
                                    (
                                        "exhaustive_simulations",
                                        Json::UInt(s.exhaustive_simulations as u64),
                                    ),
                                    (
                                        "shortlist_simulations",
                                        Json::UInt(s.shortlist_simulations as u64),
                                    ),
                                    ("exhaustive_best", Json::Num(s.exhaustive_best)),
                                    ("shortlist_best", Json::Num(s.shortlist_best)),
                                    ("sim_reduction", Json::Num(s.sim_reduction())),
                                    ("quality", Json::Num(s.quality())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "race",
            Json::obj(vec![
                ("aggregate_full_sim_reduction", Json::Num(race_reduction)),
                ("aggregate_wall_speedup", Json::Num(race_wall_speedup)),
                ("seq_full_simulations", Json::UInt(race_seq_full as u64)),
                (
                    "ladder_full_simulations",
                    Json::UInt(race_ladder_full as u64),
                ),
                // The wall-clock trend CI plots across runs: sequential
                // vs racing tune time per stencil, in milliseconds.
                (
                    "tune_wall_ms",
                    Json::Arr(
                        race_samples
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("stencil", Json::str(s.stencil.clone())),
                                    ("seq_wall_ms", Json::Num(s.seq_wall_ms)),
                                    ("ladder_wall_ms", Json::Num(s.ladder_wall_ms)),
                                    ("wall_speedup", Json::Num(s.wall_speedup())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "per_stencil",
                    Json::Arr(
                        race_samples
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("stencil", Json::str(s.stencil.clone())),
                                    ("workers", Json::UInt(s.workers as u64)),
                                    ("proxy_frac", Json::Num(s.proxy_frac)),
                                    (
                                        "seq_full_simulations",
                                        Json::UInt(s.seq_full_simulations as u64),
                                    ),
                                    (
                                        "ladder_full_simulations",
                                        Json::UInt(s.ladder_full_simulations as u64),
                                    ),
                                    (
                                        "ladder_proxy_simulations",
                                        Json::UInt(s.ladder_proxy_simulations as u64),
                                    ),
                                    ("seq_best", Json::Num(s.seq_best)),
                                    ("ladder_best", Json::Num(s.ladder_best)),
                                    ("full_sim_reduction", Json::Num(s.full_sim_reduction())),
                                    ("quality", Json::Num(s.quality())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "parallel_speedup",
            Json::obj(vec![
                ("aggregate", Json::Num(aggregate)),
                ("total_seq_seconds", Json::Num(total_seq)),
                ("total_par_seconds", Json::Num(total_par)),
                (
                    "per_stencil",
                    Json::Arr(
                        samples
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("stencil", Json::str(s.stencil.clone())),
                                    ("seq_seconds", Json::Num(s.seq_seconds)),
                                    ("par_seconds", Json::Num(s.par_seconds)),
                                    ("speedup", Json::Num(s.speedup())),
                                    ("launches", Json::UInt(s.launches)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "exec_throughput",
            Json::obj(vec![
                ("aggregate_speedup", Json::Num(compiled_aggregate)),
                ("total_interpreted_seconds", Json::Num(total_interp)),
                ("total_compiled_seconds", Json::Num(total_compiled)),
                (
                    "per_stencil",
                    Json::Arr(
                        exec_samples
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("stencil", Json::str(s.stencil.clone())),
                                    ("points", Json::UInt(s.points)),
                                    ("interpreted_seconds", Json::Num(s.interpreted_seconds)),
                                    ("compiled_seconds", Json::Num(s.compiled_seconds)),
                                    (
                                        "points_per_sec_interpreted",
                                        Json::Num(s.points_per_sec_interpreted()),
                                    ),
                                    (
                                        "points_per_sec_compiled",
                                        Json::Num(s.points_per_sec_compiled()),
                                    ),
                                    ("speedup", Json::Num(s.speedup())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ]);
    std::fs::write(&args.out, doc.render()).expect("write bench JSON");
    println!("\nwrote {}", args.out);

    if let Some(min) = args.min_speedup {
        let effective_workers = args.threads.min(host_cpus);
        if effective_workers <= 1 {
            println!(
                "speedup gate skipped: {effective_workers} effective worker(s) — the \
                 parallel path degenerates to the sequential executor here"
            );
        } else if aggregate < min {
            eprintln!(
                "FAIL: aggregate parallel speedup {aggregate:.2}x is below the \
                 required {min:.2}x at {} threads",
                args.threads
            );
            std::process::exit(1);
        } else {
            println!("speedup gate passed: {aggregate:.2}x >= {min:.2}x");
        }
    }

    if let Some(min) = args.min_compiled_speedup {
        if compiled_aggregate < min {
            eprintln!(
                "FAIL: aggregate compiled-executor speedup {compiled_aggregate:.2}x is \
                 below the required {min:.2}x (compilation must not lose to \
                 re-interpretation)"
            );
            std::process::exit(1);
        } else {
            println!("compiled-executor gate passed: {compiled_aggregate:.2}x >= {min:.2}x");
        }
    }

    if args.model_gate {
        let mut failures = Vec::new();
        if gate_reduction < MODEL_GATE_MIN_REDUCTION {
            failures.push(format!(
                "aggregate simulation reduction {gate_reduction:.1}x is below the \
                 required {MODEL_GATE_MIN_REDUCTION:.0}x"
            ));
        }
        for s in &gate_samples {
            if s.quality() < MODEL_GATE_MIN_QUALITY {
                failures.push(format!(
                    "{}: shortlist best {:.3} GSt/s is only {:.0}% of the exhaustive \
                     best {:.3} (floor {:.0}%)",
                    s.stencil,
                    s.shortlist_best,
                    s.quality() * 100.0,
                    s.exhaustive_best,
                    MODEL_GATE_MIN_QUALITY * 100.0,
                ));
            }
        }
        if failures.is_empty() {
            println!(
                "model gate passed: {gate_reduction:.1}x fewer simulations, every \
                 stencil within {:.0}% of the exhaustive best",
                (1.0 - MODEL_GATE_MIN_QUALITY) * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
    }

    if args.race_gate {
        let mut failures = Vec::new();
        if race_reduction < RACE_GATE_MIN_FULL_SIM_REDUCTION {
            failures.push(format!(
                "aggregate full-fidelity simulation reduction {race_reduction:.1}x is \
                 below the required {RACE_GATE_MIN_FULL_SIM_REDUCTION:.0}x"
            ));
        }
        if race_wall_speedup < RACE_GATE_MIN_WALL_SPEEDUP {
            failures.push(format!(
                "racing wall clock lost to sequential: {race_wall_speedup:.2}x speedup \
                 is below the required {RACE_GATE_MIN_WALL_SPEEDUP:.2}x"
            ));
        }
        for s in &race_samples {
            if s.quality() < RACE_GATE_MIN_QUALITY {
                failures.push(format!(
                    "{}: ladder best {:.3} GSt/s is only {:.0}% of the sequential \
                     best {:.3} (floor {:.0}%)",
                    s.stencil,
                    s.ladder_best,
                    s.quality() * 100.0,
                    s.seq_best,
                    RACE_GATE_MIN_QUALITY * 100.0,
                ));
            }
        }
        if failures.is_empty() {
            println!(
                "race gate passed: {race_reduction:.1}x fewer full-fidelity simulations \
                 at {race_wall_speedup:.2}x wall clock, every stencil within {:.0}% of \
                 the sequential best",
                (1.0 - RACE_GATE_MIN_QUALITY) * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
    }

    if let Some(path) = &args.baseline {
        let current = doc.get("exec_throughput").expect("doc has exec_throughput");
        if let Err(msg) = compare_against_baseline(path, current) {
            eprintln!("FAIL: {msg}");
            std::process::exit(1);
        }
    }
}

/// Regression window of the `--baseline` gate: a stencil may lose at
/// most 30% of its (machine-speed-normalized) compiled throughput.
const BASELINE_FLOOR: f64 = 0.70;

/// `--model-gate` floors: the analytical shortlist must pay at least 5x
/// fewer simulator scorings than the exhaustive sweep...
const MODEL_GATE_MIN_REDUCTION: f64 = 5.0;
/// ...while each stencil's shortlist winner scores within 10% of the
/// exhaustive winner.
const MODEL_GATE_MIN_QUALITY: f64 = 0.90;

/// `--race-gate` floors: the fidelity ladder must pay at least 2x fewer
/// full-fidelity simulations than the sequential sweep...
const RACE_GATE_MIN_FULL_SIM_REDUCTION: f64 = 2.0;
/// ...with each stencil's racing top-1 within 10% of the sequential
/// winner...
const RACE_GATE_MIN_QUALITY: f64 = 0.90;
/// ...and a racing wall clock no slower than the sequential sweep's.
const RACE_GATE_MIN_WALL_SPEEDUP: f64 = 1.0;

/// Compares this run's `exec_throughput` block against a checked-in
/// baseline file, normalizing for host speed via each run's aggregate
/// interpreter throughput. Fails when any stencil's normalized
/// `points_per_sec_compiled` fell below [`BASELINE_FLOOR`] of the
/// baseline's, or when a baseline stencil is missing from this run
/// (silent coverage loss would shrink the gate).
struct BaselineSample {
    stencil: String,
    pps_compiled: f64,
    points: f64,
    interpreted_seconds: f64,
}

fn compare_against_baseline(path: &str, current: &Json) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let base = Json::parse(&text).map_err(|e| format!("baseline {path} is not JSON: {e}"))?;
    let base = base
        .get("exec_throughput")
        .ok_or_else(|| format!("baseline {path} has no exec_throughput block"))?;

    let per_stencil = |doc: &Json| -> Vec<BaselineSample> {
        doc.get("per_stencil")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|s| {
                Some(BaselineSample {
                    stencil: s.get("stencil")?.as_str()?.to_string(),
                    pps_compiled: s.get("points_per_sec_compiled")?.as_f64()?,
                    points: s.get("points")?.as_f64()?,
                    interpreted_seconds: s.get("interpreted_seconds")?.as_f64()?,
                })
            })
            .collect()
    };
    // Host-speed proxy: aggregate interpreter points/sec of a run
    // (same estimator on both sides). The interpreter is the code path
    // neither the tuner nor the compiler touches, so the ratio of the
    // two runs' interpreter throughput is the machine-speed scale
    // between them.
    let machine_speed = |stencils: &[BaselineSample]| -> f64 {
        let secs: f64 = stencils.iter().map(|s| s.interpreted_seconds).sum();
        if secs > 0.0 {
            stencils.iter().map(|s| s.points).sum::<f64>() / secs
        } else {
            0.0
        }
    };
    let base_stencils = per_stencil(base);
    let cur_stencils = per_stencil(current);
    if base_stencils.is_empty() {
        return Err(format!("baseline {path} has no per-stencil samples"));
    }
    let base_speed = machine_speed(&base_stencils);
    let scale = if base_speed > 0.0 {
        machine_speed(&cur_stencils) / base_speed
    } else {
        1.0
    };
    println!(
        "\nbaseline gate ({path}): host-speed scale {scale:.2}x, floor {:.0}%:",
        BASELINE_FLOOR * 100.0
    );

    let mut failures = Vec::new();
    for b in &base_stencils {
        let name = &b.stencil;
        let Some(c) = cur_stencils.iter().find(|c| c.stencil == *name) else {
            failures.push(format!(
                "stencil {name} is in the baseline but not this run"
            ));
            continue;
        };
        let required = BASELINE_FLOOR * b.pps_compiled * scale;
        let cur_pps = c.pps_compiled;
        let verdict = if cur_pps < required { "FAIL" } else { "ok" };
        println!(
            "  {name:<14} compiled {cur_pps:>14.0} pts/s vs required {required:>14.0}  {verdict}"
        );
        if cur_pps < required {
            failures.push(format!(
                "{name}: points_per_sec_compiled {cur_pps:.0} is below {required:.0} \
                 ({:.0}% of the baseline's {:.0} at scale {scale:.2}x)",
                BASELINE_FLOOR * 100.0,
                b.pps_compiled
            ));
        }
    }
    if failures.is_empty() {
        println!("baseline gate passed: no stencil regressed more than 30%");
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}
