//! Tables 1 and 2: GStencils/second and speedup over PPCG for every
//! benchmark stencil on both simulated devices.
//!
//! Usage: `table12 [gtx470|nvs5200m]` (default: both).

use gpusim::DeviceConfig;
use hybrid_bench::{measure, scaled_workload, speedup_str, Compiler};
use stencil::gallery;

fn run_device(device: &DeviceConfig) {
    let stencils = gallery::table3_stencils();
    let compilers = [
        Compiler::Ppcg,
        Compiler::Par4all,
        Compiler::Overtile,
        Compiler::Hybrid,
    ];
    println!(
        "\nTable {}: Performance on {}: GStencils/second & Speedup",
        if device.name.contains("470") { 1 } else { 2 },
        device.name
    );
    print!("{:<10}", "");
    for p in &stencils {
        print!(" {:>16}", p.name());
    }
    println!();
    let mut baseline: Vec<f64> = vec![0.0; stencils.len()];
    for c in compilers {
        print!("{:<10}", c.name());
        for (i, p) in stencils.iter().enumerate() {
            let (dims, steps) = scaled_workload(p);
            let m = measure(c, p, device, &dims, steps, 3);
            if c == Compiler::Ppcg {
                baseline[i] = m.gstencils;
                print!(" {:>16.2}", m.gstencils);
            } else {
                print!(
                    " {:>9.2} {:>6}",
                    m.gstencils,
                    speedup_str(m.gstencils, baseline[i])
                );
            }
        }
        println!();
    }
    // Patus: the paper reports it only for laplacian3d (prose) / heat3d.
    print!("{:<10}", "Patus*");
    for (i, p) in stencils.iter().enumerate() {
        if baselines::patus::supported(p) {
            let (dims, steps) = scaled_workload(p);
            let m = measure(Compiler::Patus, p, device, &dims, steps, 3);
            print!(
                " {:>9.2} {:>6}",
                m.gstencils,
                speedup_str(m.gstencils, baseline[i])
            );
        } else {
            print!(" {:>16}", "-");
        }
    }
    println!("\n(* Patus CUDA backend covers laplacian3d/heat3d only, as in the paper)");
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("gtx470") => run_device(&DeviceConfig::gtx470()),
        Some("nvs5200m") => run_device(&DeviceConfig::nvs5200m()),
        _ => {
            run_device(&DeviceConfig::gtx470());
            run_device(&DeviceConfig::nvs5200m());
        }
    }
}
