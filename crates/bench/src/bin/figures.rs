//! Figures 1–6 of the paper, reproduced as text/ASCII artifacts, plus the
//! §5 diamond-vs-hexagon population comparison.
//!
//! Usage: `figures [fig1|fig2|fig3|fig4|fig5|fig6|diamond]` (default: all).

use baselines::diamond;
use gpu_codegen::ptx_emit::core_tile_ptx;
use gpu_codegen::{generate_hybrid, CodegenOptions};
use hybrid_tiling::phase::{self, Phase};
use hybrid_tiling::{DepCone, HexShape, HybridSchedule, TileParams};
use polylib::Rat;
use stencil::gallery;

fn fig1() {
    println!("Figure 1: Jacobi 2D stencil\n");
    println!("{}", gallery::jacobi2d().to_c_like());
}

fn fig2() {
    println!("Figure 2: Generated pseudo-PTX (unrolled core tile, jacobi2d)\n");
    let p = gallery::jacobi2d();
    let plan = generate_hybrid(
        &p,
        &TileParams::new(2, &[3, 32]),
        &[512, 512],
        16,
        CodegenOptions::best(),
    )
    .expect("jacobi hybrid plan");
    let (ptx, stats) = core_tile_ptx(&plan.kernels[1], 3);
    print!("{ptx}");
    println!(
        "\n{} shared loads, {} stores, {} arithmetic instructions for 3 unrolled points",
        stats.loads, stats.stores, stats.arith
    );
    println!("(control-flow free; neighboring loads reused from registers)");
}

fn fig3() {
    println!("Figure 3: Opposite dependence cone (contrived 1D example)\n");
    let p = gallery::contrived1d();
    let cone = DepCone::of_program(&p).expect("cone");
    println!("distance vectors: {:?}", cone.vectors());
    println!("delta0 = {}, delta1 = {}", cone.delta0(0), cone.delta1(0));
    println!(
        "cone generators: (-1, -{}) and (-1, {})\n",
        cone.delta0(0),
        cone.delta1(0)
    );
    for dt in (-4..=0).rev() {
        let mut row = String::new();
        for ds in -6..=10 {
            row.push(if cone.opposite_cone_contains(0, dt, ds) {
                '#'
            } else if ds == 0 && dt == 0 {
                '+'
            } else {
                '.'
            });
        }
        println!("dt={dt:>3} {row}");
    }
    println!("        (ds = -6..10)");
}

fn fig4() {
    println!("Figure 4: A hexagonal tile (delta0=1, delta1=2, h=2, w0=3)\n");
    let hex = HexShape::new(Rat::ONE, Rat::from(2), 2, 3).expect("hexagon");
    for a in (0..hex.box_height()).rev() {
        let mut row = format!("a={a} ");
        for b in 0..hex.box_width() {
            row.push(if hex.contains_local(a, b) { '#' } else { '.' });
        }
        println!("{row}");
    }
    println!(
        "\n{} integer points; identical for every full tile (no divergence)",
        hex.count_points()
    );
    println!(
        "constraint construction == cone-subtraction construction: {}",
        hex.points() == hex.points_by_cone_subtraction()
    );
}

fn fig5() {
    println!("Figure 5: Hexagonal tiling pattern (two phases; 0=blue, 1=green)\n");
    let hex = HexShape::new(Rat::ONE, Rat::ONE, 1, 2).expect("hexagon");
    for tau in (0..8).rev() {
        let mut row = format!("t={tau} ");
        for s0 in 0..36 {
            let c = phase::claims(&hex, tau, s0);
            row.push(match c.first() {
                Some((Phase::Zero, pc)) => {
                    if pc.s_tile.rem_euclid(2) == 0 {
                        '0'
                    } else {
                        'o'
                    }
                }
                Some((Phase::One, pc)) => {
                    if pc.s_tile.rem_euclid(2) == 0 {
                        '1'
                    } else {
                        'i'
                    }
                }
                None => '?',
            });
        }
        println!("{row}");
    }
    println!("\n(each character = one iteration; letter case/shape alternates per S0 tile)");
}

fn fig6() {
    println!("Figure 6: n-dimensional tile schedule (±1 distances, jacobi2d, h=2, w=(3,8))\n");
    let p = gallery::jacobi2d();
    let s = HybridSchedule::compute(&p, &TileParams::new(2, &[3, 8])).expect("schedule");
    for ph in [Phase::Zero, Phase::One] {
        println!("phase {}:", ph.index());
        let names = ["t", "s0", "s1"];
        for (name, e) in s.as_qexprs(ph).expect("integer slopes") {
            println!("  {name:<4} = {}", e.display(&names));
        }
    }
}

fn diamond_cmp() {
    println!("§5 claim: diamond tiles have varying integer-point counts\n");
    for p in [3i64, 5] {
        let pops = diamond::distinct_diamond_populations(p, 48);
        println!("diamond period {p}: distinct interior-tile populations {pops:?}");
    }
    let hex = HexShape::new(Rat::ONE, Rat::ONE, 2, 3).expect("hexagon");
    println!(
        "hexagon (h=2, w0=3): every full tile has exactly {} points",
        hex.count_points()
    );
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("fig1") => fig1(),
        Some("fig2") => fig2(),
        Some("fig3") => fig3(),
        Some("fig4") => fig4(),
        Some("fig5") => fig5(),
        Some("fig6") => fig6(),
        Some("diamond") => diamond_cmp(),
        _ => {
            fig1();
            println!("{}", "-".repeat(70));
            fig2();
            println!("{}", "-".repeat(70));
            fig3();
            println!("{}", "-".repeat(70));
            fig4();
            println!("{}", "-".repeat(70));
            fig5();
            println!("{}", "-".repeat(70));
            fig6();
            println!("{}", "-".repeat(70));
            diamond_cmp();
        }
    }
}
