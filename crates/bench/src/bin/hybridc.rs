//! `hybridc` — the end-to-end compiler driver for user-supplied stencils.
//!
//! Compiles `.stencil` DSL files (see the grammar rustdoc in
//! `stencil::parse`) through the full pipeline: parse → validate → tile-
//! size planning under device budgets (with a content-addressed plan
//! cache) → CUDA + pseudo-PTX emission → simulated execution with
//! bit-exact verification against the reference oracle.
//!
//! Usage:
//!
//! ```text
//! hybridc [options] <file.stencil | directory>...
//!
//!   --out DIR          artifact directory (default hybridc-out)
//!   --cache DIR        plan-cache directory (default <out>/cache)
//!   --no-cache         disable the plan cache
//!   --require-cached   exit non-zero if any plan misses the cache
//!   --autotune         score tile sizes on the simulator (default: static model)
//!   --smoke            shrink the sweep space (CI mode)
//!   --device NAME      gtx470 | nvs5200m (default gtx470)
//!   --threads N        simulator worker threads (default HYBRID_SIM_THREADS)
//!   --jobs N           concurrent file compiles (default 1)
//!   --no-verify        skip the bit-exact oracle check
//!   --size N[,N..]     override the execution grid
//!   --steps N          override the execution step count
//!   --report PATH      write the machine-readable JSON report
//! ```
//!
//! Exit status: `0` when every file compiles (and, with `--require-cached`,
//! every plan came from the cache); `1` otherwise.

use std::path::PathBuf;

use gpusim::DeviceConfig;
use hybrid_bench::driver::{
    collect_stencil_files, compile_batch, report_json, DriverConfig, TuneMode,
};

struct Args {
    cfg: DriverConfig,
    inputs: Vec<PathBuf>,
    report: Option<PathBuf>,
    require_cached: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: hybridc [--out DIR] [--cache DIR | --no-cache] [--require-cached] \
         [--autotune] [--smoke] [--device gtx470|nvs5200m] [--threads N] [--jobs N] \
         [--no-verify] [--size N[,N..]] [--steps N] [--report PATH] <file|dir>..."
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut cfg = DriverConfig::new("hybridc-out");
    cfg.sim_threads = gpusim::sim_threads();
    let mut inputs = Vec::new();
    let mut report = None;
    let mut require_cached = false;
    let mut cache_override: Option<Option<PathBuf>> = None;
    let mut size: Option<Vec<usize>> = None;
    let mut steps: Option<usize> = None;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--out" => cfg.out_dir = PathBuf::from(value("--out")),
            "--cache" => cache_override = Some(Some(PathBuf::from(value("--cache")))),
            "--no-cache" => cache_override = Some(None),
            "--require-cached" => require_cached = true,
            "--autotune" => cfg.tune = TuneMode::Simulated,
            "--smoke" => cfg.smoke = true,
            "--device" => {
                cfg.device = match value("--device").as_str() {
                    "gtx470" => DeviceConfig::gtx470(),
                    "nvs5200m" => DeviceConfig::nvs5200m(),
                    other => panic!("unknown device {other:?} (gtx470|nvs5200m)"),
                }
            }
            "--threads" => {
                cfg.sim_threads = value("--threads")
                    .parse()
                    .expect("--threads takes a positive integer");
                assert!(cfg.sim_threads >= 1, "--threads takes a positive integer");
            }
            "--jobs" => {
                cfg.jobs = value("--jobs")
                    .parse()
                    .expect("--jobs takes a positive integer");
                assert!(cfg.jobs >= 1, "--jobs takes a positive integer");
            }
            "--no-verify" => cfg.verify = false,
            "--size" => {
                size = Some(
                    value("--size")
                        .split(',')
                        .map(|d| d.parse().expect("--size takes N[,N..]"))
                        .collect(),
                )
            }
            "--steps" => steps = Some(value("--steps").parse().expect("--steps takes a number")),
            "--report" => report = Some(PathBuf::from(value("--report"))),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage();
            }
            path => inputs.push(PathBuf::from(path)),
        }
    }
    if inputs.is_empty() {
        usage();
    }
    match cache_override {
        Some(c) => cfg.cache_dir = c,
        None => cfg.cache_dir = Some(cfg.out_dir.join("cache")),
    }
    if let (Some(size), Some(steps)) = (&size, steps) {
        cfg.workload = Some((size.clone(), steps));
    } else if size.is_some() || steps.is_some() {
        panic!("--size and --steps must be given together");
    }
    Args {
        cfg,
        inputs,
        report,
        require_cached,
    }
}

fn main() {
    let args = parse_args();
    let mut files = Vec::new();
    for input in &args.inputs {
        match collect_stencil_files(input) {
            Ok(mut f) => files.append(&mut f),
            Err(e) => {
                eprintln!("hybridc: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "hybridc: {} file(s), device = {}, tune = {}, cache = {}, jobs = {}, sim threads = {}",
        files.len(),
        args.cfg.device.name,
        args.cfg.tune.name(),
        args.cfg
            .cache_dir
            .as_ref()
            .map_or("off".to_string(), |d| d.display().to_string()),
        args.cfg.jobs,
        args.cfg.sim_threads,
    );

    let results = compile_batch(&files, &args.cfg);

    println!(
        "\n{:<16} {:>5} {:>10} {:>12} {:>10} {:>9} {:>12} {:>7}",
        "stencil", "h", "w", "GStencils/s", "smem KB", "launches", "verified", "cache"
    );
    let mut failed = 0usize;
    let mut misses = 0usize;
    for (path, result) in &results {
        match result {
            Ok(o) => {
                if !o.cache_hit {
                    misses += 1;
                }
                println!(
                    "{:<16} {:>5} {:>10} {:>12.3} {:>10.1} {:>9} {:>12} {:>7}",
                    o.name,
                    o.params.h,
                    format!("{:?}", o.params.w),
                    o.gstencils,
                    o.smem_bytes as f64 / 1024.0,
                    o.launches,
                    if o.verified { "bit-exact" } else { "skipped" },
                    if o.cache_hit { "hit" } else { "miss" },
                );
            }
            Err(e) => {
                failed += 1;
                println!("{:<16} FAILED: {e}", path.display());
            }
        }
    }

    if let Some(report_path) = &args.report {
        let doc = report_json(&results, &args.cfg);
        if let Err(e) = std::fs::write(report_path, doc.render()) {
            eprintln!(
                "hybridc: cannot write report {}: {e}",
                report_path.display()
            );
            std::process::exit(1);
        }
        println!("\nwrote {}", report_path.display());
    }

    if failed > 0 {
        eprintln!("hybridc: {failed} file(s) failed");
        std::process::exit(1);
    }
    if args.require_cached && misses > 0 {
        eprintln!("hybridc: --require-cached but {misses} plan(s) missed the cache");
        std::process::exit(1);
    }
}
