//! `hybridc` — the end-to-end compiler driver for user-supplied stencils.
//!
//! Compiles `.stencil` DSL files (see the grammar rustdoc in
//! `stencil::parse`) through the full pipeline: parse → validate → tile-
//! size planning under device budgets (with a content-addressed plan
//! cache) → CUDA + pseudo-PTX emission → simulated execution with
//! bit-exact verification against the reference oracle.
//!
//! Usage:
//!
//! ```text
//! hybridc [options] <file.stencil | directory>...
//! hybridc serve [options] [--listen ADDR] [--workers N]
//!
//!   --out DIR          artifact directory (default hybridc-out)
//!   --cache DIR        plan-cache directory (default <out>/cache)
//!   --no-cache         disable the plan cache
//!   --require-cached   exit non-zero if any plan misses the cache
//!   --autotune         score tile sizes on the simulator (default: static model)
//!   --top-k K          model-guided shortlist: only the K best candidates by
//!                      the analytical merit reach the scorer (0 = exhaustive)
//!   --tune-workers N   concurrent candidate scorers in the tuning sweep;
//!                      0 = auto-split the host thread budget (default 0).
//!                      tune-workers × sim-threads never exceeds the budget
//!   --proxy F          successive-halving fidelity ladder: score everything
//!                      on a workload scaled by F in (0,1), keep the best
//!                      fraction for full fidelity; 1 disables (default 1)
//!   --smoke            shrink the sweep space (CI mode)
//!   --device NAME      gtx470 | nvs5200m (default gtx470)
//!   --backend NAME     cuda | wgsl | hip | cpu (default cuda); selects the
//!                      code-generation backend and resets the codegen
//!                      options to that backend's defaults
//!   --threads N        simulator worker threads; 0 = auto-detect, same as
//!                      HYBRID_SIM_THREADS=0 (default HYBRID_SIM_THREADS)
//!   --jobs N           concurrent file compiles (default 1)
//!   --no-verify        skip the bit-exact oracle check
//!   --size N[,N..]     override the execution grid
//!   --steps N          override the execution step count
//!   --report PATH      write the machine-readable JSON report
//!
//! serve mode (`hybridd` / `hybridfleet`):
//!   --listen ADDR            serve TCP connections on ADDR instead of stdin
//!   --listen-unix PATH       serve unix-socket connections on PATH (no
//!                            hello handshake; may combine with --listen)
//!   --workers N              request worker threads (default --jobs, min 1)
//!   --sched fifo|edf         worker queue order (default edf: earliest
//!                            arrival-anchored deadline first)
//!   --secret S               shared secret TCP clients must present via
//!                            {"op":"hello","secret":S} before any other op
//!                            (default $HYBRID_SECRET; unset = no auth)
//!   --metrics ADDR           HTTP listener answering every request with
//!                            the Prometheus metrics text
//!   --status-out PATH        write the final aggregated status JSON to
//!                            PATH on shutdown
//!   --mem-cap-bytes N        cap each device's in-memory plan cache (LRU
//!                            eviction; default unbounded)
//!   --max-devices N          per-device service states spun up lazily
//!                            (default 8)
//!   --default-deadline-ms N  deadline for requests without their own
//!                            deadline_ms (default none)
//! ```
//!
//! `serve` turns the driver into `hybridd`, a resident compile service
//! fronted by a device-sharded fleet router: newline-delimited JSON
//! requests on stdin (or per TCP connection) are routed by their
//! `device` field to per-device service states, fanned out over a worker
//! pool, answered with one compact-JSON response line each, and share
//! per-device single-flight in-memory plan caches layered above the
//! on-disk one. See `hybrid_bench::serve` and `hybrid_bench::fleet` for
//! the protocol. In serve mode stdout carries only responses;
//! diagnostics go to stderr.
//!
//! Exit status: `0` when every file compiles (and, with `--require-cached`,
//! every plan came from the cache); `1` otherwise. Serve mode exits `0`
//! at end of input or after a `shutdown` request.

use std::net::TcpListener;
use std::path::PathBuf;

use gpusim::DeviceConfig;
use hybrid_bench::driver::{
    collect_stencil_files, compile_batch, report_json, DriverConfig, TuneMode,
};
use hybrid_bench::fleet::{FleetOptions, FleetRouter};
use hybrid_bench::serve::{serve_metrics_http, serve_tcp_with, serve_with_policy, SchedPolicy};

struct Args {
    cfg: DriverConfig,
    inputs: Vec<PathBuf>,
    report: Option<PathBuf>,
    require_cached: bool,
    /// `hybridc serve` mode: run as the resident `hybridd` service.
    serve: bool,
    listen: Option<String>,
    listen_unix: Option<PathBuf>,
    metrics_addr: Option<String>,
    status_out: Option<PathBuf>,
    sched: SchedPolicy,
    secret: Option<String>,
    workers: Option<usize>,
    fleet: FleetOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: hybridc [--out DIR] [--cache DIR | --no-cache] [--require-cached] \
         [--autotune] [--top-k K] [--tune-workers N] [--proxy F] [--smoke] \
         [--device gtx470|nvs5200m] \
         [--backend cuda|wgsl|hip|cpu] [--threads N] [--jobs N] \
         [--no-verify] [--size N[,N..]] [--steps N] [--report PATH] <file|dir>...\n\
         \n\
         hybridc serve [common options] [--listen ADDR] [--listen-unix PATH] \
         [--workers N] [--sched fifo|edf] [--secret S] [--metrics ADDR] \
         [--status-out PATH] [--mem-cap-bytes N] [--max-devices N] \
         [--default-deadline-ms N]\n\
         (reads newline-delimited JSON requests from stdin or the listeners; see README)"
    );
    std::process::exit(1);
}

/// Reports a command-line error and exits — no panics on operator input,
/// matching the abort-free discipline of the pipeline itself.
fn fail(msg: &str) -> ! {
    eprintln!("hybridc: {msg}");
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut cfg = DriverConfig::new("hybridc-out");
    cfg.sim_threads = gpusim::sim_threads();
    let mut inputs = Vec::new();
    let mut report = None;
    let mut require_cached = false;
    let mut cache_override: Option<Option<PathBuf>> = None;
    let mut size: Option<Vec<usize>> = None;
    let mut steps: Option<usize> = None;
    let mut serve = false;
    let mut listen = None;
    let mut listen_unix = None;
    let mut metrics_addr = None;
    let mut status_out = None;
    let mut sched = SchedPolicy::default();
    let mut secret = None;
    let mut workers = None;
    let mut fleet = FleetOptions::default();

    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("serve") {
        it.next();
        serve = true;
    }
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--out" => cfg.out_dir = PathBuf::from(value("--out")),
            "--cache" => cache_override = Some(Some(PathBuf::from(value("--cache")))),
            "--no-cache" => cache_override = Some(None),
            "--require-cached" => require_cached = true,
            "--autotune" => cfg.tune = TuneMode::Simulated,
            "--top-k" => {
                cfg.top_k = value("--top-k").parse().unwrap_or_else(|_| {
                    fail("--top-k takes a non-negative integer (0 = exhaustive)")
                });
            }
            "--tune-workers" => {
                cfg.tune_workers = value("--tune-workers").parse().unwrap_or_else(|_| {
                    fail("--tune-workers takes a non-negative integer (0 = auto)")
                });
            }
            "--proxy" => {
                cfg.proxy = value("--proxy")
                    .parse()
                    .ok()
                    .filter(|&f: &f64| f > 0.0 && f <= 1.0)
                    .unwrap_or_else(|| fail("--proxy takes a fraction in (0, 1] (1 = off)"));
            }
            "--smoke" => cfg.smoke = true,
            "--device" => {
                cfg.device = match value("--device").as_str() {
                    "gtx470" => DeviceConfig::gtx470(),
                    "nvs5200m" => DeviceConfig::nvs5200m(),
                    other => fail(&format!("unknown device {other:?} (gtx470|nvs5200m)")),
                }
            }
            "--backend" => {
                let name = value("--backend");
                let kind = gpu_codegen::BackendKind::parse(&name).unwrap_or_else(|| {
                    fail(&format!("unknown backend {name:?} (cuda|wgsl|hip|cpu)"))
                });
                cfg.backend = kind;
                // Each backend's defaults are the strongest options it
                // supports (WGSL cannot address workgroup arrays
                // dynamically, so it clamps ReuseDynamic to ReuseStatic).
                cfg.opts = kind.backend().default_options();
            }
            "--threads" => {
                // 0 means auto-detect, the same contract as
                // HYBRID_SIM_THREADS=0 (see gpusim::resolve_sim_threads).
                cfg.sim_threads = value("--threads")
                    .parse()
                    .ok()
                    .map(gpusim::resolve_sim_threads)
                    .unwrap_or_else(|| fail("--threads takes a non-negative integer"));
            }
            "--jobs" => {
                cfg.jobs = value("--jobs")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| fail("--jobs takes a positive integer"));
            }
            "--no-verify" => cfg.verify = false,
            "--size" => {
                let parsed: Result<Vec<usize>, _> =
                    value("--size").split(',').map(str::parse).collect();
                match parsed {
                    Ok(v) if !v.is_empty() && v.iter().all(|&d| d > 0) => size = Some(v),
                    _ => fail("--size takes N[,N..] with positive extents"),
                }
            }
            "--steps" => {
                steps = Some(
                    value("--steps")
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .unwrap_or_else(|| fail("--steps takes a positive integer")),
                )
            }
            "--report" => report = Some(PathBuf::from(value("--report"))),
            "--listen" if serve => listen = Some(value("--listen")),
            "--listen-unix" if serve => listen_unix = Some(PathBuf::from(value("--listen-unix"))),
            "--metrics" if serve => metrics_addr = Some(value("--metrics")),
            "--status-out" if serve => status_out = Some(PathBuf::from(value("--status-out"))),
            "--sched" if serve => {
                sched = SchedPolicy::parse(&value("--sched")).unwrap_or_else(|e| fail(&e))
            }
            "--secret" if serve => secret = Some(value("--secret")),
            "--workers" if serve => {
                workers = Some(
                    value("--workers")
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .unwrap_or_else(|| fail("--workers takes a positive integer")),
                )
            }
            "--mem-cap-bytes" if serve => {
                fleet.mem_cap_bytes = Some(
                    value("--mem-cap-bytes")
                        .parse()
                        .ok()
                        .filter(|&n: &u64| n >= 1)
                        .unwrap_or_else(|| fail("--mem-cap-bytes takes a positive byte count")),
                )
            }
            "--max-devices" if serve => {
                fleet.max_devices = value("--max-devices")
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| fail("--max-devices takes a positive integer"));
            }
            "--default-deadline-ms" if serve => {
                fleet.default_deadline_ms = Some(
                    value("--default-deadline-ms")
                        .parse()
                        .ok()
                        .unwrap_or_else(|| fail("--default-deadline-ms takes a millisecond count")),
                )
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage();
            }
            path => inputs.push(PathBuf::from(path)),
        }
    }
    if serve && !inputs.is_empty() {
        fail("serve mode takes requests on stdin or --listen/--listen-unix, not file arguments");
    }
    // The shared secret defaults to the environment so process listings
    // don't have to carry it.
    if serve && secret.is_none() {
        secret = std::env::var("HYBRID_SECRET")
            .ok()
            .filter(|s| !s.is_empty());
    }
    if !serve && inputs.is_empty() {
        usage();
    }
    match cache_override {
        Some(c) => cfg.cache_dir = c,
        None => cfg.cache_dir = Some(cfg.out_dir.join("cache")),
    }
    if let (Some(size), Some(steps)) = (&size, steps) {
        cfg.workload = Some((size.clone(), steps));
    } else if size.is_some() || steps.is_some() {
        fail("--size and --steps must be given together");
    }
    Args {
        cfg,
        inputs,
        report,
        require_cached,
        serve,
        listen,
        listen_unix,
        metrics_addr,
        status_out,
        sched,
        secret,
        workers,
        fleet,
    }
}

/// The resident-service mode (`hybridd` behind the `hybridfleet`
/// device-sharded router). TCP, unix-socket, and metrics listeners run
/// concurrently over one router (one shutdown stops them all); with no
/// listener, requests come from stdin.
fn run_serve(args: Args) -> ! {
    let workers = args.workers.unwrap_or(args.cfg.jobs).max(1);
    let router = FleetRouter::new(args.cfg.clone(), args.fleet.clone());
    let transports: Vec<String> = args
        .listen
        .iter()
        .map(|a| format!("tcp {a}"))
        .chain(
            args.listen_unix
                .iter()
                .map(|p| format!("unix {}", p.display())),
        )
        .collect();
    eprintln!(
        "hybridd: serving on {}, {} worker(s), sched = {}, auth = {}, metrics = {}, \
         default device = {}, tune = {}, disk cache = {}, \
         max devices = {}, mem cap = {}, default deadline = {}",
        if transports.is_empty() {
            "stdin".to_string()
        } else {
            transports.join(" + ")
        },
        workers,
        args.sched.name(),
        if args.secret.is_some() {
            "secret"
        } else {
            "off"
        },
        args.metrics_addr.as_deref().unwrap_or("off"),
        args.cfg.device.name,
        args.cfg.tune.name(),
        args.cfg
            .cache_dir
            .as_ref()
            .map_or("off".to_string(), |d| d.display().to_string()),
        args.fleet.max_devices,
        args.fleet
            .mem_cap_bytes
            .map_or("unbounded".to_string(), |b| format!("{b} B")),
        args.fleet
            .default_deadline_ms
            .map_or("none".to_string(), |ms| format!("{ms} ms")),
    );
    let policy = args.sched;
    let secret = args.secret.as_deref();
    std::thread::scope(|scope| {
        if let Some(addr) = &args.metrics_addr {
            let listener = TcpListener::bind(addr)
                .unwrap_or_else(|e| fail(&format!("cannot listen on {addr}: {e}")));
            let router = &router;
            scope.spawn(move || {
                if let Err(e) = serve_metrics_http(router, listener) {
                    eprintln!("hybridd: metrics listener error: {e}");
                }
            });
        }
        let mut have_socket = false;
        if let Some(addr) = &args.listen {
            let listener = TcpListener::bind(addr)
                .unwrap_or_else(|e| fail(&format!("cannot listen on {addr}: {e}")));
            have_socket = true;
            let router = &router;
            scope.spawn(move || {
                if let Err(e) = serve_tcp_with(router, listener, workers, policy, secret) {
                    eprintln!("hybridd: listener error: {e}");
                }
            });
        }
        #[cfg(unix)]
        if let Some(path) = &args.listen_unix {
            use hybrid_bench::serve::serve_unix;
            // A stale socket file from a previous run would make bind
            // fail; replacing it is the standard daemon move.
            let _ = std::fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path)
                .unwrap_or_else(|e| fail(&format!("cannot listen on {}: {e}", path.display())));
            have_socket = true;
            let router = &router;
            scope.spawn(move || {
                if let Err(e) = serve_unix(router, listener, workers, policy) {
                    eprintln!("hybridd: unix listener error: {e}");
                }
            });
        }
        #[cfg(not(unix))]
        if args.listen_unix.is_some() {
            fail("--listen-unix is only supported on unix platforms");
        }
        if !have_socket {
            let stdin = std::io::stdin();
            match serve_with_policy(&router, stdin.lock(), std::io::stdout(), workers, policy) {
                Ok(summary) => {
                    let members = router.members();
                    let (hits, coalesced, misses, evictions) =
                        members
                            .iter()
                            .fold((0u64, 0u64, 0u64, 0u64), |(h, c, m, e), (_, s)| {
                                (
                                    h + s.mem().hits(),
                                    c + s.mem().coalesced(),
                                    m + s.mem().misses(),
                                    e + s.mem().evictions(),
                                )
                            });
                    eprintln!(
                        "hybridd: {} response(s), {} error(s), {} device(s), \
                         {} mem hit(s) (+{} coalesced) / {} miss(es), {} eviction(s)",
                        summary.responses,
                        summary.errors,
                        members.len(),
                        hits,
                        coalesced,
                        misses,
                        evictions,
                    );
                }
                Err(e) => {
                    eprintln!("hybridd: stdin error: {e}");
                }
            }
            // End of stdin without a shutdown op: stop anyway so the
            // metrics listener (if any) returns and the scope joins.
            router.request_stop();
        }
    });
    if let Some(path) = &args.status_out {
        let doc = router.status_payload();
        if let Err(e) = std::fs::write(path, doc.render()) {
            eprintln!("hybridd: cannot write --status-out {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("hybridd: wrote {}", path.display());
    }
    #[cfg(unix)]
    if let Some(path) = &args.listen_unix {
        let _ = std::fs::remove_file(path);
    }
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if args.serve {
        run_serve(args);
    }
    let mut files = Vec::new();
    for input in &args.inputs {
        match collect_stencil_files(input) {
            Ok(mut f) => files.append(&mut f),
            Err(e) => {
                eprintln!("hybridc: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "hybridc: {} file(s), device = {}, backend = {}, tune = {}, cache = {}, jobs = {}, \
         sim threads = {}",
        files.len(),
        args.cfg.device.name,
        args.cfg.backend.name(),
        args.cfg.tune.name(),
        args.cfg
            .cache_dir
            .as_ref()
            .map_or("off".to_string(), |d| d.display().to_string()),
        args.cfg.jobs,
        args.cfg.sim_threads,
    );

    let results = compile_batch(&files, &args.cfg);

    println!(
        "\n{:<16} {:>5} {:>10} {:>12} {:>10} {:>9} {:>12} {:>7}",
        "stencil", "h", "w", "GStencils/s", "smem KB", "launches", "verified", "cache"
    );
    let mut failed = 0usize;
    let mut misses = 0usize;
    for (path, result) in &results {
        match result {
            Ok(o) => {
                if !o.cache_hit {
                    misses += 1;
                }
                println!(
                    "{:<16} {:>5} {:>10} {:>12.3} {:>10.1} {:>9} {:>12} {:>7}",
                    o.name,
                    o.params.h,
                    format!("{:?}", o.params.w),
                    o.gstencils,
                    o.smem_bytes as f64 / 1024.0,
                    o.launches,
                    if o.verified { "bit-exact" } else { "skipped" },
                    o.cache.name(),
                );
            }
            Err(e) => {
                failed += 1;
                println!("{:<16} FAILED: {e}", path.display());
            }
        }
    }

    if let Some(report_path) = &args.report {
        let doc = report_json(&results, &args.cfg);
        if let Err(e) = std::fs::write(report_path, doc.render()) {
            eprintln!(
                "hybridc: cannot write report {}: {e}",
                report_path.display()
            );
            std::process::exit(1);
        }
        println!("\nwrote {}", report_path.display());
    }

    if failed > 0 {
        eprintln!("hybridc: {failed} file(s) failed");
        std::process::exit(1);
    }
    if args.require_cached && misses > 0 {
        eprintln!("hybridc: --require-cached but {misses} plan(s) missed the cache");
        std::process::exit(1);
    }
}
