//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * `h`-sweep — time-tile height against throughput: the DRAM
//!   amortization the whole paper is built on (deeper tiles, fewer
//!   global round trips) against the shared-memory ceiling;
//! * `w0`-sweep — the "adjustable peak" of §2: wider hexagon peaks expose
//!   more fine-grained parallelism per wavefront without changing
//!   correctness;
//! * hexagonal vs diamond point-count uniformity (§5);
//! * full/partial separation on/off — measured through divergence events.
//!
//! Usage: `ablation [h|w0|diamond]` (default: all).

use baselines::diamond;
use gpu_codegen::{generate_hybrid, CodegenOptions};
use gpusim::DeviceConfig;
use hybrid_bench::{measure_plan, point_updates};
use hybrid_tiling::{HexShape, TileParams};
use polylib::Rat;
use stencil::gallery;

fn sweep_h() {
    println!("h-sweep (jacobi2d, 512x512, 48 steps, w = (3, 32), GTX 470 model):\n");
    println!(
        "{:>3} {:>14} {:>14} {:>12} {:>10}",
        "h", "GStencils/s", "DRAM MB", "launches", "bound by"
    );
    let program = gallery::jacobi2d();
    let dims = [512usize, 512];
    let steps = 48;
    for h in [0i64, 1, 2, 3, 5, 7] {
        let params = TileParams::new(h, &[3, 32]);
        let Ok(plan) = generate_hybrid(&program, &params, &dims, steps, CodegenOptions::best())
        else {
            continue;
        };
        let m = measure_plan(&plan, 0, &program, &DeviceConfig::gtx470(), &dims, steps, 3);
        println!(
            "{:>3} {:>14.2} {:>14.2} {:>12} {:>10}",
            h,
            m.gstencils,
            m.counters.dram_bytes() as f64 / 1e6,
            m.counters.launches,
            m.bound_by
        );
    }
    println!("\n(the paper's 2D sweet spot of 8 time steps per tile is h = 3)");
}

fn sweep_w0() {
    println!("w0-sweep (jacobi2d; points per wavefront row at the peak):\n");
    println!(
        "{:>4} {:>12} {:>18} {:>14}",
        "w0", "tile points", "peak row width", "GStencils/s"
    );
    let program = gallery::jacobi2d();
    let dims = [512usize, 512];
    let steps = 24;
    for w0 in [0i64, 1, 3, 7, 15] {
        let hex = HexShape::new(Rat::ONE, Rat::ONE, 2, w0).expect("legal width");
        let top = hex.row_range(2 * 2 + 1).expect("top row");
        let params = TileParams::new(2, &[w0, 32]);
        let Ok(plan) = generate_hybrid(&program, &params, &dims, steps, CodegenOptions::best())
        else {
            continue;
        };
        let m = measure_plan(&plan, 0, &program, &DeviceConfig::gtx470(), &dims, steps, 3);
        println!(
            "{:>4} {:>12} {:>18} {:>14.2}",
            w0,
            hex.count_points(),
            top.1 - top.0 + 1,
            m.gstencils
        );
    }
    println!("\n(diamond tiling has no w0: its peak is always a single point)");
    let _ = point_updates(&program, &dims, steps);
}

fn diamond_vs_hexagon() {
    println!("tile population uniformity (the §5 divergence argument):\n");
    for p in [3i64, 4, 5] {
        let pops = diamond::distinct_diamond_populations(p, 60);
        println!("  diamond period {p}: populations {pops:?}");
    }
    for (h, w0) in [(1i64, 1i64), (2, 3), (3, 5)] {
        let hex = HexShape::new(Rat::ONE, Rat::ONE, h, w0).expect("hexagon");
        println!(
            "  hexagon h={h} w0={w0}: population {{{}}} (constant by construction)",
            hex.count_points()
        );
    }
}

fn main() {
    let arg = std::env::args().nth(1);
    match arg.as_deref() {
        Some("h") => sweep_h(),
        Some("w0") => sweep_w0(),
        Some("diamond") => diamond_vs_hexagon(),
        _ => {
            sweep_h();
            println!("\n{}\n", "-".repeat(66));
            sweep_w0();
            println!("\n{}\n", "-".repeat(66));
            diamond_vs_hexagon();
        }
    }
}
