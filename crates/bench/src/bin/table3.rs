//! Table 3: static characteristics of the benchmark stencils.

fn main() {
    println!("Table 3: Characteristics of Stencils\n");
    print!("{}", stencil::characteristics::table3());
}
