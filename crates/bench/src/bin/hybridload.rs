//! `hybridload` — load generator for the resident compile service.
//!
//! Replays a synthetic mixed-deadline workload (a checked-in scenario
//! JSON) against a running `hybridc serve` process over TCP or a unix
//! socket, measures client-side latency per request, pulls the server's
//! own scheduling counters, and appends one run record to
//! `BENCH_load.json`. CI runs it twice — `--sched fifo` vs `--sched
//! edf` on the server side — and asserts the EDF run misses no more
//! deadlines than the FIFO run.
//!
//! ```text
//! hybridload --connect ADDR | --connect-unix PATH [options]
//! hybridload --check-metrics FILE
//!
//!   --connect ADDR        TCP address of the serving process
//!   --connect-unix PATH   unix socket of the serving process
//!   --secret S            shared secret for the TCP hello handshake
//!                         (default $HYBRID_SECRET)
//!   --scenario FILE       workload description (default
//!                         examples/load/scenario.json)
//!   --label NAME          run label recorded in the output (e.g. "edf")
//!   --out FILE            output JSON (default BENCH_load.json)
//!   --append              append to --out's runs instead of truncating
//!   --shutdown            send a shutdown op after the run
//!   --check-metrics FILE  standalone: validate FILE as Prometheus text
//!                         exposition format and exit
//! ```
//!
//! ## Scenario format
//!
//! ```json
//! {"repeat": 8,
//!  "requests": [
//!    {"name": "heavy{i}", "program": "...", "tune": "simulated"},
//!    {"name": "light", "path": "examples/stencils/jacobi2d.stencil",
//!     "smoke": true, "deadline_ms": 2000}]}
//! ```
//!
//! Each round expands every template in order; `{i}` in `name`/`program`
//! is replaced with the round number, so heavies become distinct
//! programs (cache-busting) while lights stay identical (cache-friendly).
//! All fields besides `name`/`program`/`path` are passed through to the
//! `compile` request verbatim. All requests are pipelined up front: the
//! server's queue is deep when the lights arrive, which is exactly the
//! regime where EDF and FIFO differ.
//!
//! A request counts as a **deadline miss** when it carried `deadline_ms`
//! and either came back `deadline_exceeded` or its client-observed
//! latency exceeded the deadline. The run record carries both this
//! client-side count and the server's own `deadline_misses` counter.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;

use hybrid_bench::json::Json;
use hybrid_bench::metrics::parse_exposition;

struct Args {
    connect: Option<String>,
    connect_unix: Option<PathBuf>,
    secret: Option<String>,
    scenario: PathBuf,
    label: String,
    out: PathBuf,
    append: bool,
    shutdown: bool,
    check_metrics: Option<PathBuf>,
}

fn fail(msg: &str) -> ! {
    eprintln!("hybridload: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!(
        "usage: hybridload (--connect ADDR | --connect-unix PATH) [--secret S] \
         [--scenario FILE] [--label NAME] [--out FILE] [--append] [--shutdown]\n\
         \n\
         hybridload --check-metrics FILE   (validate a Prometheus scrape and exit)"
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut args = Args {
        connect: None,
        connect_unix: None,
        secret: None,
        scenario: PathBuf::from("examples/load/scenario.json"),
        label: "run".to_string(),
        out: PathBuf::from("BENCH_load.json"),
        append: false,
        shutdown: false,
        check_metrics: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--connect" => args.connect = Some(value("--connect")),
            "--connect-unix" => args.connect_unix = Some(PathBuf::from(value("--connect-unix"))),
            "--secret" => args.secret = Some(value("--secret")),
            "--scenario" => args.scenario = PathBuf::from(value("--scenario")),
            "--label" => args.label = value("--label"),
            "--out" => args.out = PathBuf::from(value("--out")),
            "--append" => args.append = true,
            "--shutdown" => args.shutdown = true,
            "--check-metrics" => args.check_metrics = Some(PathBuf::from(value("--check-metrics"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
    }
    if args.secret.is_none() {
        args.secret = std::env::var("HYBRID_SECRET")
            .ok()
            .filter(|s| !s.is_empty());
    }
    if args.check_metrics.is_none() && args.connect.is_none() && args.connect_unix.is_none() {
        usage();
    }
    args
}

/// One expanded request: the wire line (sans trailing newline), its id,
/// and the deadline it promised (for client-side miss accounting).
struct Spec {
    id: String,
    line: String,
    deadline_ms: Option<u64>,
}

/// Expands the scenario into the pipelined request list.
fn expand_scenario(doc: &Json) -> Result<Vec<Spec>, String> {
    let repeat = match doc.get("repeat") {
        None => 1,
        Some(r) => r
            .as_u64()
            .filter(|&n| n >= 1)
            .ok_or("\"repeat\" must be a positive integer")?,
    };
    let templates = doc
        .get("requests")
        .and_then(Json::as_arr)
        .ok_or("scenario needs a \"requests\" array")?;
    let mut specs = Vec::new();
    for i in 0..repeat {
        for (t_idx, t) in templates.iter().enumerate() {
            let Json::Obj(pairs) = t else {
                return Err(format!("requests[{t_idx}] is not an object"));
            };
            let id = format!("r{}", specs.len());
            let mut out = vec![
                ("op".to_string(), Json::str("compile")),
                ("id".to_string(), Json::str(&id)),
            ];
            let mut deadline_ms = None;
            for (k, v) in pairs {
                if k == "deadline_ms" {
                    deadline_ms = v.as_u64();
                }
                // `{i}` in string fields becomes the round number, so
                // `heavy{i}` programs are distinct per round.
                let v = match v {
                    Json::Str(s) if s.contains("{i}") => {
                        Json::Str(s.replace("{i}", &i.to_string()))
                    }
                    other => other.clone(),
                };
                out.push((k.clone(), v));
            }
            specs.push(Spec {
                id,
                line: Json::Obj(out).render_compact(),
                deadline_ms,
            });
        }
    }
    Ok(specs)
}

/// Index `round(q * (len-1))` of a sorted slice.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted_ms.len() - 1) as f64;
    sorted_ms[pos.round() as usize]
}

/// Sends `line` + newline and flushes.
fn send(w: &mut dyn Write, line: &str) {
    let mut buf = line.to_string();
    buf.push('\n');
    if let Err(e) = w.write_all(buf.as_bytes()).and_then(|_| w.flush()) {
        fail(&format!("send failed: {e}"));
    }
}

/// Reads response lines until one matches `want_id`; non-matching lines
/// are handed to `other`.
fn read_until_id(r: &mut dyn BufRead, want_id: &str, mut other: impl FnMut(&Json)) -> Json {
    loop {
        let mut line = String::new();
        match r.read_line(&mut line) {
            Ok(0) => fail(&format!("connection closed while waiting for {want_id:?}")),
            Ok(_) => {}
            Err(e) => fail(&format!("read failed: {e}")),
        }
        if line.trim().is_empty() {
            continue;
        }
        let resp = Json::parse(line.trim())
            .unwrap_or_else(|e| fail(&format!("malformed response line: {e}")));
        if resp.get("id").and_then(Json::as_str) == Some(want_id) {
            return resp;
        }
        other(&resp);
    }
}

fn check_metrics(path: &PathBuf) -> ! {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    match parse_exposition(&text) {
        Ok(samples) if samples.is_empty() => fail("metrics snapshot parses but has no samples"),
        Ok(samples) => {
            println!(
                "hybridload: {} parses as text exposition format ({} samples)",
                path.display(),
                samples.len()
            );
            std::process::exit(0);
        }
        Err(e) => fail(&format!(
            "{} is not valid exposition format: {e}",
            path.display()
        )),
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.check_metrics {
        check_metrics(path);
    }

    let scenario_text = std::fs::read_to_string(&args.scenario)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", args.scenario.display())));
    let scenario = Json::parse(&scenario_text)
        .unwrap_or_else(|e| fail(&format!("{}: {e}", args.scenario.display())));
    let specs = expand_scenario(&scenario).unwrap_or_else(|e| fail(&e));
    if specs.is_empty() {
        fail("scenario expands to zero requests");
    }

    // Connect. Write and read halves of one stream; TCP additionally
    // performs the hello handshake *and waits for its response* before
    // any workload is pipelined (responses are unordered, so a racing
    // hello could lose to a compile).
    let (mut w, mut r): (Box<dyn Write>, BufReader<Box<dyn Read>>) =
        match (&args.connect, &args.connect_unix) {
            (Some(addr), None) => {
                let stream = TcpStream::connect(addr)
                    .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
                let read_half = stream
                    .try_clone()
                    .unwrap_or_else(|e| fail(&format!("cannot clone stream: {e}")));
                (Box::new(stream), BufReader::new(Box::new(read_half)))
            }
            (None, Some(path)) => {
                let stream = std::os::unix::net::UnixStream::connect(path).unwrap_or_else(|e| {
                    fail(&format!("cannot connect to {}: {e}", path.display()))
                });
                let read_half = stream
                    .try_clone()
                    .unwrap_or_else(|e| fail(&format!("cannot clone stream: {e}")));
                (Box::new(stream), BufReader::new(Box::new(read_half)))
            }
            _ => fail("give exactly one of --connect or --connect-unix"),
        };
    if args.connect.is_some() {
        let hello = match &args.secret {
            Some(s) => Json::obj(vec![
                ("op", Json::str("hello")),
                ("id", Json::str("__hello")),
                ("secret", Json::str(s)),
            ]),
            None => Json::obj(vec![
                ("op", Json::str("hello")),
                ("id", Json::str("__hello")),
            ]),
        };
        send(&mut w, &hello.render_compact());
        let resp = read_until_id(&mut r, "__hello", |_| {});
        if resp.get("authenticated") != Some(&Json::Bool(true)) {
            fail(&format!(
                "hello handshake failed: {}",
                resp.render_compact()
            ));
        }
    }

    // Pipeline the whole workload, timestamping each send.
    let started = Instant::now();
    let mut sent_at: HashMap<String, Instant> = HashMap::new();
    for spec in &specs {
        sent_at.insert(spec.id.clone(), Instant::now());
        send(&mut w, &spec.line);
    }

    // Collect every response (unordered; match by id).
    struct Outcome {
        latency_ms: f64,
        ok: bool,
        error_kind: Option<String>,
    }
    let mut outcomes: HashMap<String, Outcome> = HashMap::new();
    while outcomes.len() < specs.len() {
        let mut line = String::new();
        match r.read_line(&mut line) {
            Ok(0) => fail(&format!(
                "connection closed after {}/{} responses",
                outcomes.len(),
                specs.len()
            )),
            Ok(_) => {}
            Err(e) => fail(&format!("read failed: {e}")),
        }
        if line.trim().is_empty() {
            continue;
        }
        let resp = Json::parse(line.trim())
            .unwrap_or_else(|e| fail(&format!("malformed response line: {e}")));
        let Some(id) = resp.get("id").and_then(Json::as_str) else {
            continue;
        };
        let Some(&t0) = sent_at.get(id) else {
            continue;
        };
        outcomes.insert(
            id.to_string(),
            Outcome {
                latency_ms: t0.elapsed().as_secs_f64() * 1e3,
                ok: resp.get("status").and_then(Json::as_str) != Some("error"),
                error_kind: resp
                    .get("error_kind")
                    .and_then(Json::as_str)
                    .map(str::to_string),
            },
        );
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    // Server-side counters after the workload drained.
    send(&mut w, "{\"op\":\"status\",\"id\":\"__status\"}");
    let status = read_until_id(&mut r, "__status", |_| {});
    if args.shutdown {
        send(&mut w, "{\"op\":\"shutdown\",\"id\":\"__bye\"}");
        let _ = read_until_id(&mut r, "__bye", |_| {});
    }

    // Aggregate.
    let mut latencies: Vec<f64> = outcomes.values().map(|o| o.latency_ms).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let ok = outcomes.values().filter(|o| o.ok).count() as u64;
    let errors = specs.len() as u64 - ok;
    let deadline_requests = specs.iter().filter(|s| s.deadline_ms.is_some()).count() as u64;
    let client_misses = specs
        .iter()
        .filter(|s| {
            let Some(dl) = s.deadline_ms else {
                return false;
            };
            let Some(o) = outcomes.get(&s.id) else {
                return false;
            };
            o.error_kind.as_deref() == Some("deadline_exceeded") || o.latency_ms > dl as f64
        })
        .count() as u64;
    let server_u64 = |key: &str| status.get(key).and_then(Json::as_u64).unwrap_or(0);
    let run = Json::obj(vec![
        ("label", Json::str(&args.label)),
        (
            "sched_policy",
            status.get("sched_policy").cloned().unwrap_or(Json::Null),
        ),
        ("scenario", Json::str(args.scenario.display().to_string())),
        ("requests", Json::UInt(specs.len() as u64)),
        ("ok", Json::UInt(ok)),
        ("errors", Json::UInt(errors)),
        ("wall_ms", Json::Num(wall_ms)),
        (
            "throughput_rps",
            Json::Num(specs.len() as f64 / (wall_ms / 1e3).max(1e-9)),
        ),
        (
            "latency_ms",
            Json::obj(vec![
                ("p50", Json::Num(percentile(&latencies, 0.50))),
                ("p95", Json::Num(percentile(&latencies, 0.95))),
                ("p99", Json::Num(percentile(&latencies, 0.99))),
            ]),
        ),
        ("deadline_requests", Json::UInt(deadline_requests)),
        ("client_deadline_misses", Json::UInt(client_misses)),
        (
            "server_deadline_misses",
            Json::UInt(server_u64("deadline_misses")),
        ),
        ("edf_promotions", Json::UInt(server_u64("edf_promotions"))),
        (
            "queue_depth_peak",
            Json::UInt(server_u64("queue_depth_peak")),
        ),
    ]);

    // Merge into --out: {"runs": [...]}.
    let mut runs: Vec<Json> = Vec::new();
    if args.append {
        if let Ok(text) = std::fs::read_to_string(&args.out) {
            match Json::parse(&text) {
                Ok(doc) => {
                    runs = doc
                        .get("runs")
                        .and_then(Json::as_arr)
                        .map(<[Json]>::to_vec)
                        .unwrap_or_default()
                }
                Err(e) => fail(&format!(
                    "--append: {} exists but is not JSON: {e}",
                    args.out.display()
                )),
            }
        }
    }
    runs.push(run.clone());
    let doc = Json::obj(vec![("runs", Json::Arr(runs))]);
    if let Err(e) = std::fs::write(&args.out, doc.render()) {
        fail(&format!("cannot write {}: {e}", args.out.display()));
    }
    eprintln!(
        "hybridload[{}]: {} request(s) in {:.0} ms, {} ok / {} error(s), \
         {}/{} client deadline miss(es), server misses = {}, promotions = {}; wrote {}",
        args.label,
        specs.len(),
        wall_ms,
        ok,
        errors,
        client_misses,
        deadline_requests,
        server_u64("deadline_misses"),
        server_u64("edf_promotions"),
        args.out.display()
    );
}
