//! Tables 4 and 5: the shared-memory optimization ladder on heat-3d —
//! GFLOPS & speedup per step (Table 4) and the hardware counters behind
//! them (Table 5).

use gpu_codegen::hybrid_gen::alignment_offset_words;
use gpu_codegen::{generate_hybrid, CodegenOptions};
use gpusim::DeviceConfig;
use hybrid_bench::{heat3d_ladder_params, measure_plan, Measurement};
use stencil::gallery;

fn measurements(device: &DeviceConfig) -> Vec<(&'static str, Measurement)> {
    let program = gallery::heat3d();
    let params = heat3d_ladder_params();
    let dims = [96usize, 96, 96];
    let steps = 12; // 2h+2 = 6: two full time tiles
    CodegenOptions::ladder()
        .into_iter()
        .map(|(label, opts)| {
            let plan = generate_hybrid(&program, &params, &dims, steps, opts)
                .expect("heat3d ladder configuration");
            let align = alignment_offset_words(&program, &params, &opts);
            let m = measure_plan(&plan, align, &program, device, &dims, steps, 3);
            (label, m)
        })
        .collect()
}

fn main() {
    let nvs = measurements(&DeviceConfig::nvs5200m());
    let gtx = measurements(&DeviceConfig::gtx470());

    println!("Table 4: Optimization steps: GFLOPS & Speedup (heat 3D)");
    println!("  tile: h = 2, w = (5, 4, 32) [paper: (7, 10, 32); see EXPERIMENTS.md]\n");
    println!("{:<36} {:>14} {:>14}", "", "NVS 5200M", "GTX 470");
    let mut prev: Option<(f64, f64)> = None;
    for ((label, m_nvs), (_, m_gtx)) in nvs.iter().zip(&gtx) {
        let (s_nvs, s_gtx) = match prev {
            None => ("".to_string(), "".to_string()),
            Some((p_nvs, p_gtx)) => (
                format!("{:+.0}%", (m_nvs.gflops / p_nvs - 1.0) * 100.0),
                format!("{:+.0}%", (m_gtx.gflops / p_gtx - 1.0) * 100.0),
            ),
        };
        println!(
            "{:<36} {:>7.1} {:>6} {:>7.1} {:>6}",
            label, m_nvs.gflops, s_nvs, m_gtx.gflops, s_gtx
        );
        prev = Some((m_nvs.gflops, m_gtx.gflops));
    }

    println!("\nTable 5: Performance counters, GTX 470 (units of 10^9 events)\n");
    println!(
        "{:<36} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "", "gld inst", "dram rd", "l2 rd", "shld/req", "gld eff"
    );
    for (label, m) in &gtx {
        let c = &m.counters;
        println!(
            "{:<36} {:>10.3} {:>10.3} {:>10.3} {:>12.2} {:>7.0}%",
            label,
            c.gld_inst as f64 / 1e9,
            c.dram_read_transactions as f64 / 1e9,
            c.l2_read_transactions as f64 / 1e9,
            c.shared_loads_per_request(),
            c.gld_efficiency() * 100.0
        );
    }
    println!("\nbound-by per step (GTX 470):");
    for (label, m) in &gtx {
        println!("  {label:<36} {}", m.bound_by);
    }
}
