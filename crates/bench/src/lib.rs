//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation section on the simulated devices.
//!
//! Workload scaling: interpreting the paper's full workloads (3072² × 512
//! steps ≈ 4.8·10⁹ point updates per configuration) through a functional
//! simulator is infeasible, so the harness runs *scaled* workloads with the
//! same tile-grid geometry (see [`scaled_workload`]) and samples a few
//! thread blocks per launch exactly, extrapolating counters linearly
//! ([`gpusim::GpuSim::run_plan_sampled`]). EXPERIMENTS.md records the
//! scaling next to every reproduced number.

pub mod autotune;
pub mod driver;
pub mod fleet;
pub mod json;
pub mod metrics;
pub mod serve;

use baselines::{generate_overtile, generate_par4all, generate_patus, generate_ppcg};
use gpu_codegen::hybrid_gen::alignment_offset_words;
use gpu_codegen::ir::LaunchPlan;
use gpu_codegen::{generate_hybrid, CodegenOptions};
use gpusim::{timing, Counters, DeviceConfig, GpuSim};
use hybrid_tiling::TileParams;
use stencil::{Grid, StencilProgram};

/// The compilers compared in Tables 1 and 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Compiler {
    /// PPCG-like classical spatial tiling (the tables' baseline).
    Ppcg,
    /// Par4All-like global-memory codegen.
    Par4all,
    /// Overtile-like overlapped time tiling.
    Overtile,
    /// Patus-like autotuned spatial tiling (3D laplacian/heat only).
    Patus,
    /// This paper: hybrid hexagonal/classical tiling.
    Hybrid,
}

impl Compiler {
    /// Display name used in the tables.
    pub fn name(self) -> &'static str {
        match self {
            Compiler::Ppcg => "PPCG",
            Compiler::Par4all => "Par4All",
            Compiler::Overtile => "Overtile",
            Compiler::Patus => "Patus",
            Compiler::Hybrid => "hybrid",
        }
    }
}

/// Default hybrid tile parameters per benchmark, chosen with the §3.7
/// model under the 48 KB shared-memory budget. 2D tiles run 8 time steps
/// (`h = 3`), 3D tiles 4 (`h = 1`) — the depths reported in §6.1; fdtd
/// needs `3 | 2h+2`, so `h = 2`.
pub fn hybrid_params(program: &StencilProgram) -> TileParams {
    match (program.name(), program.spatial_dims()) {
        ("fdtd2d", _) => TileParams::new(2, &[3, 32]),
        (_, 2) => TileParams::new(3, &[3, 32]),
        (_, 3) => TileParams::new(1, &[2, 4, 32]),
        _ => TileParams::new(2, &[3]),
    }
}

/// The Table 4/5 heat-3d configuration. The paper uses `h=2, w=(7,10,32)`;
/// under our rectangular bounding-box shared allocation that footprint
/// exceeds 48 KB (the paper's generator allocates a tighter rolling
/// window), so the closest fitting configuration is used — same `h`, same
/// warp-multiple innermost width.
pub fn heat3d_ladder_params() -> TileParams {
    TileParams::new(2, &[5, 4, 32])
}

/// Scaled stand-in for the paper's Table 3 workloads, keeping the
/// innermost extent a warp multiple and the step counts compatible with
/// every compiler's tile depths (60 = 4·15 = 5·12 = 8·7.5 launches-ish;
/// 15 works for the 3D depths).
pub fn scaled_workload(program: &StencilProgram) -> (Vec<usize>, usize) {
    match program.spatial_dims() {
        2 => (vec![512, 512], 60),
        3 => (vec![96, 96, 96], 15),
        _ => (vec![2048], 60),
    }
}

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Final (possibly extrapolated) counters.
    pub counters: Counters,
    /// Estimated wall time on the device.
    pub seconds: f64,
    /// Stencil throughput.
    pub gstencils: f64,
    /// Arithmetic throughput.
    pub gflops: f64,
    /// The resource binding the kernel (roofline argmax).
    pub bound_by: &'static str,
}

/// Builds the launch plan of `compiler` for the given run.
///
/// # Panics
///
/// Panics if the hybrid schedule construction fails (gallery programs and
/// default parameters never do) or Patus is asked for an unsupported
/// stencil.
pub fn plan_for(
    compiler: Compiler,
    program: &StencilProgram,
    dims: &[usize],
    steps: usize,
) -> (LaunchPlan, i64) {
    match compiler {
        Compiler::Ppcg => (generate_ppcg(program, dims, steps), 0),
        Compiler::Par4all => (generate_par4all(program, dims, steps), 0),
        Compiler::Overtile => (generate_overtile(program, dims, steps), 0),
        Compiler::Patus => (generate_patus(program, dims, steps), 0),
        Compiler::Hybrid => {
            let params = hybrid_params(program);
            let opts = CodegenOptions::best();
            let plan = generate_hybrid(program, &params, dims, steps, opts)
                .expect("hybrid schedule for gallery stencil");
            let off = alignment_offset_words(program, &params, &opts);
            (plan, off)
        }
    }
}

/// Logical point updates of a run (interior × statements × steps).
pub fn point_updates(program: &StencilProgram, dims: &[usize], steps: usize) -> u64 {
    let radius = program.radius();
    let interior: u64 = dims
        .iter()
        .zip(&radius)
        .map(|(&n, &r)| (n as i64 - 2 * r).max(0) as u64)
        .product();
    interior * program.num_statements() as u64 * steps as u64
}

/// Runs one configuration in sampled mode and derives throughput.
pub fn measure(
    compiler: Compiler,
    program: &StencilProgram,
    device: &DeviceConfig,
    dims: &[usize],
    steps: usize,
    samples: usize,
) -> Measurement {
    let (plan, align) = plan_for(compiler, program, dims, steps);
    let init: Vec<Grid> = (0..program.num_fields())
        .map(|f| Grid::random(dims, 7 + f as u64))
        .collect();
    let planes = (program.max_dt() as usize) + 1;
    let mut sim = GpuSim::with_global_offset(device.clone(), &init, planes, align);
    sim.run_plan_sampled(&plan, samples);
    sim.set_point_updates(point_updates(program, dims, steps));
    finish(&sim)
}

/// Runs one prebuilt plan in sampled mode (for the ladder studies).
pub fn measure_plan(
    plan: &LaunchPlan,
    align: i64,
    program: &StencilProgram,
    device: &DeviceConfig,
    dims: &[usize],
    steps: usize,
    samples: usize,
) -> Measurement {
    let init: Vec<Grid> = (0..program.num_fields())
        .map(|f| Grid::random(dims, 7 + f as u64))
        .collect();
    let planes = (program.max_dt() as usize) + 1;
    let mut sim = GpuSim::with_global_offset(device.clone(), &init, planes, align);
    sim.run_plan_sampled(plan, samples);
    sim.set_point_updates(point_updates(program, dims, steps));
    finish(&sim)
}

fn finish(sim: &GpuSim) -> Measurement {
    let counters = *sim.counters();
    let t = timing::estimate_time(&counters, sim.device());
    Measurement {
        counters,
        seconds: t.total,
        gstencils: timing::gstencils_per_s(&counters, sim.device()),
        gflops: timing::gflops(&counters, sim.device()),
        bound_by: t.bound_by(),
    }
}

/// Formats a speedup column exactly like the paper (`+nn%` over PPCG).
pub fn speedup_str(value: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        return "n/a".into();
    }
    let pct = (value / baseline - 1.0) * 100.0;
    format!("{pct:+.0}%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    #[test]
    fn hybrid_params_are_legal_for_every_gallery_stencil() {
        for p in gallery::table3_stencils() {
            let params = hybrid_params(&p);
            assert!(
                hybrid_tiling::HybridSchedule::compute_executable(&p, &params).is_ok(),
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn point_updates_counts_statements() {
        let p = gallery::fdtd2d();
        assert_eq!(point_updates(&p, &[12, 12], 2), 10 * 10 * 3 * 2);
    }

    #[test]
    fn measurement_on_tiny_workload() {
        let p = gallery::jacobi2d();
        let m = measure(
            Compiler::Par4all,
            &p,
            &DeviceConfig::gtx470(),
            &[64, 64],
            4,
            2,
        );
        assert!(m.gstencils > 0.0);
        assert!(m.counters.gld_inst > 0);
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup_str(2.0, 1.0), "+100%");
        assert_eq!(speedup_str(0.5, 1.0), "-50%");
    }
}
