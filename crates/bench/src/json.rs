//! A minimal JSON value + serializer for the `BENCH_*.json` artifacts.
//!
//! The build environment has no registry access, so instead of `serde` the
//! bench binaries assemble a small [`Json`] tree and render it. Output is
//! deterministic (object keys keep insertion order) so artifact diffs
//! between CI runs are meaningful.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (kept separate from floats so counters render exactly).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float; non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the value as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj(vec![
            ("name", Json::str("jacobi2d")),
            ("score", Json::Num(1.5)),
            ("counts", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"jacobi2d\""));
        assert!(s.contains("\"score\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_hides_nan() {
        let v = Json::obj(vec![
            ("q", Json::str("a\"b\\c\nd")),
            ("bad", Json::Num(f64::NAN)),
        ]);
        let s = v.render();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("\"bad\": null"));
    }
}
