//! A minimal JSON value + serializer + parser for the `BENCH_*.json` and
//! `hybridc` artifacts.
//!
//! The build environment has no registry access, so instead of `serde` the
//! bench binaries assemble a small [`Json`] tree and render it. Output is
//! deterministic (object keys keep insertion order) so artifact diffs
//! between CI runs are meaningful. [`Json::parse`] reads the same format
//! back — the `hybridc` plan cache persists and reloads its entries
//! through this round trip.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (kept separate from floats so counters render exactly).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float; non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a signed integer ([`Json::Int`] or a fitting
    /// [`Json::UInt`]).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a float (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module renders: no
    /// exponent-free-integer/float ambiguity games — numbers without `.`,
    /// `e` or a sign parse as [`Json::UInt`], with a leading `-` as
    /// [`Json::Int`], anything else as [`Json::Num`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, with its byte
    /// offset.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Renders the value as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value on a single line with no whitespace — the
    /// newline-delimited wire format of the `hybridd` compile service
    /// (one response per line, greppable as `"key":value`). Parses back
    /// with [`Json::parse`] exactly like the pretty form.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogates are not emitted by the serializer;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().expect("non-empty by guard");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ASCII number");
    if text.contains(['.', 'e', 'E']) {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    } else if text.starts_with('-') {
        // Keep the sign inside the parse so "--3" is rejected, not
        // double-negated.
        text.parse::<i64>()
            .ok()
            .filter(|_| text[1..].bytes().all(|c| c.is_ascii_digit()))
            .map(Json::Int)
            .ok_or_else(|| format!("bad number {text:?} at byte {start}"))
    } else {
        text.parse::<u64>()
            .map(Json::UInt)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected {:?} at byte {}", *c as char, *pos)),
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj(vec![
            ("name", Json::str("jacobi2d")),
            ("score", Json::Num(1.5)),
            ("counts", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"name\": \"jacobi2d\""));
        assert!(s.contains("\"score\": 1.5"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let v = Json::obj(vec![
            ("name", Json::str("heat\"3d\"")),
            ("score", Json::Num(-1.5)),
            ("hit", Json::Bool(true)),
            ("miss", Json::Null),
            ("h", Json::Int(-3)),
            ("counts", Json::Arr(vec![Json::UInt(1), Json::UInt(2)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "nested",
                Json::obj(vec![("w", Json::Arr(vec![Json::UInt(3), Json::UInt(32)]))]),
            ),
        ]);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
        // Accessors walk the parsed tree.
        assert_eq!(back.get("name").and_then(Json::as_str), Some("heat\"3d\""));
        assert_eq!(back.get("h").and_then(Json::as_i64), Some(-3));
        assert_eq!(back.get("score").and_then(Json::as_f64), Some(-1.5));
        assert_eq!(back.get("hit").and_then(Json::as_bool), Some(true));
        let w = back.get("nested").and_then(|n| n.get("w")).unwrap();
        let w: Vec<u64> = w
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(w, vec![3, 32]);
    }

    #[test]
    fn compact_rendering_is_one_line_and_round_trips() {
        let v = Json::obj(vec![
            ("name", Json::str("jacobi\n2d")),
            ("ok", Json::Bool(true)),
            ("h", Json::Int(-3)),
            ("w", Json::Arr(vec![Json::UInt(3), Json::UInt(32)])),
            ("nested", Json::obj(vec![("x", Json::Null)])),
            ("empty", Json::Obj(vec![])),
        ]);
        let s = v.render_compact();
        assert!(!s.contains('\n') || s.contains("\\n"), "{s}");
        assert!(!s.contains(": "), "no space after colons: {s}");
        assert_eq!(
            s,
            r#"{"name":"jacobi\n2d","ok":true,"h":-3,"w":[3,32],"nested":{"x":null},"empty":{}}"#
        );
        assert_eq!(Json::parse(&s).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\": 1} extra",
            "--3",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_handles_escapes_and_number_classes() {
        let v = Json::parse(r#"{"s": "a\nbA", "f": 1.25, "neg": -7, "pos": 7}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\nbA"));
        assert_eq!(v.get("f"), Some(&Json::Num(1.25)));
        assert_eq!(v.get("neg"), Some(&Json::Int(-7)));
        assert_eq!(v.get("pos"), Some(&Json::UInt(7)));
    }

    #[test]
    fn escapes_strings_and_hides_nan() {
        let v = Json::obj(vec![
            ("q", Json::str("a\"b\\c\nd")),
            ("bad", Json::Num(f64::NAN)),
        ]);
        let s = v.render();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("\"bad\": null"));
    }
}
