//! Simulator-backed tile-size autotuning and the sequential-vs-parallel
//! speedup measurement behind `BENCH_autotune.json`.
//!
//! The sweep itself lives in [`hybrid_tiling::tilesize::autotune`] (which
//! cannot depend on the simulator); this module supplies the missing
//! half: a scorer that generates the hybrid kernels for each candidate,
//! interprets them on the block-parallel [`GpuSim`], and returns simulated
//! GStencils/s — plus wall-clock instrumentation comparing the sequential
//! and parallel executors on the Table-3 gallery.

use std::time::Instant;

use gpu_codegen::hybrid_gen::alignment_offset_words;
use gpu_codegen::{generate_hybrid, CodegenOptions};
use gpusim::{timing, DeviceConfig, GpuSim};
use hybrid_tiling::cancel::CancelToken;
use hybrid_tiling::tilesize::autotune::{
    autotune, autotune_parallel_cancellable, split_thread_budget, AutotuneConfig, AutotuneReport,
    Fidelity,
};
use hybrid_tiling::{SearchSpace, TileParams};
use stencil::{Grid, StencilProgram};

use crate::driver::PROXY_KEEP_FRAC;
use crate::{hybrid_params, point_updates};

/// Small workload used to score autotune candidates: large enough that
/// tile-grid geometry matters, small enough that a full (unsampled)
/// functional run per candidate stays cheap.
pub fn autotune_workload(program: &StencilProgram) -> (Vec<usize>, usize) {
    match program.spatial_dims() {
        2 => (vec![96, 96], 12),
        3 => (vec![20, 20, 36], 6),
        _ => (vec![256], 12),
    }
}

/// The reduced workload of the fidelity ladder's proxy round: every
/// dimension and the step count scaled by `frac`, floored so the grid
/// never shrinks below the stencil halo's needs (16 points per dimension,
/// 2 steps) and never grows past the full workload. `frac >= 1.0` returns
/// the workload unchanged (ladder disabled).
pub fn proxy_workload(dims: &[usize], steps: usize, frac: f64) -> (Vec<usize>, usize) {
    if !(frac > 0.0 && frac < 1.0) {
        return (dims.to_vec(), steps);
    }
    let scaled = |x: usize, floor: usize| -> usize {
        (((x as f64) * frac).ceil() as usize).clamp(floor.min(x), x)
    };
    (
        dims.iter().map(|&d| scaled(d, 16)).collect(),
        scaled(steps, 2),
    )
}

/// The §6 sweep space for `n` spatial dimensions. `smoke` shrinks it for
/// CI: every stage still runs, on a handful of candidates.
pub fn sweep_space(n: usize, smoke: bool) -> SearchSpace {
    if smoke {
        SearchSpace::for_dims(n, vec![1, 2], vec![1, 3], &[4], &[32])
    } else {
        SearchSpace::for_dims(n, vec![0, 1, 2, 3], vec![1, 3, 5], &[4, 8], &[32, 64])
    }
}

/// Scores one candidate under the default ([`CodegenOptions::best`])
/// code-generation options; see [`simulate_score_with`].
pub fn simulate_score(
    program: &StencilProgram,
    params: &TileParams,
    device: &DeviceConfig,
    dims: &[usize],
    steps: usize,
    threads: usize,
) -> Option<f64> {
    simulate_score_with(
        program,
        params,
        device,
        dims,
        steps,
        threads,
        CodegenOptions::best(),
    )
}

/// Scores one candidate: generates the hybrid plan with `opts` (the same
/// options the caller will emit the final plan with, so the ranking and
/// the emitted code cannot diverge), runs it in full on the
/// block-parallel simulator with `threads` workers, and returns simulated
/// GStencils/s. `None` when codegen fails or a kernel exceeds the
/// device's shared-memory limit (the candidate is infeasible on `device`
/// even if it fit the model's budget).
#[allow(clippy::too_many_arguments)]
pub fn simulate_score_with(
    program: &StencilProgram,
    params: &TileParams,
    device: &DeviceConfig,
    dims: &[usize],
    steps: usize,
    threads: usize,
    opts: CodegenOptions,
) -> Option<f64> {
    let plan = generate_hybrid(program, params, dims, steps, opts).ok()?;
    if plan
        .kernels
        .iter()
        .any(|k| k.shared_bytes() > device.shared_limit)
    {
        return None;
    }
    let align = alignment_offset_words(program, params, &opts);
    let init: Vec<Grid> = (0..program.num_fields())
        .map(|f| Grid::random(dims, 7 + f as u64))
        .collect();
    let planes = program.max_dt() as usize + 1;
    let mut sim = GpuSim::with_global_offset(device.clone(), &init, planes, align);
    sim.run_plan_parallel_with(&plan, threads);
    sim.set_point_updates(point_updates(program, dims, steps));
    Some(timing::gstencils_per_s(sim.counters(), sim.device()))
}

/// Runs the full autotune pipeline for one program: sweep under Fermi
/// budgets, verify the top candidates' schedules exhaustively on a small
/// domain, score each on the parallel simulator.
pub fn autotune_program(
    program: &StencilProgram,
    device: &DeviceConfig,
    threads: usize,
    smoke: bool,
) -> AutotuneReport {
    let space = sweep_space(program.spatial_dims(), smoke);
    let verify_domain = match program.spatial_dims() {
        2 => (vec![16, 12], 8),
        3 => (vec![8, 8, 10], 4),
        _ => (vec![40], 10),
    };
    let cfg = AutotuneConfig {
        smem_limit: device.shared_limit as u64,
        verify_domain: Some(verify_domain),
        max_candidates: if smoke { 4 } else { 16 },
        ..AutotuneConfig::fermi()
    };
    let (dims, steps) = autotune_workload(program);
    autotune(program, &space, &cfg, |model| {
        simulate_score(program, &model.params, device, &dims, steps, threads)
    })
}

/// Shortlist width per spatial dimensionality, calibrated so the
/// analytical merit retains the simulator-best plan across the gallery
/// (2-D needs 3 survivors, 3-D 6, 1-D 2).
pub fn default_top_k(spatial_dims: usize) -> usize {
    match spatial_dims {
        2 => 3,
        3 => 6,
        _ => 2,
    }
}

/// Exhaustive-vs-model-guided sweep comparison for one stencil: same
/// full (non-smoke) space, same scorer and workload; only the analytical
/// shortlist differs. The evidence behind the `--model-gate` CI gate.
#[derive(Clone, Debug)]
pub struct ModelGateSample {
    /// Stencil name.
    pub stencil: String,
    /// Shortlist width used for the model-guided run.
    pub top_k: usize,
    /// Simulator scorings the exhaustive (`top_k = 0`) sweep paid.
    pub exhaustive_simulations: usize,
    /// Simulator scorings the shortlisted sweep paid.
    pub shortlist_simulations: usize,
    /// Best GStencils/s found by the exhaustive sweep.
    pub exhaustive_best: f64,
    /// Best GStencils/s found by the shortlisted sweep.
    pub shortlist_best: f64,
}

impl ModelGateSample {
    /// Exhaustive scorings per shortlist scoring (> 1 = the model saves work).
    pub fn sim_reduction(&self) -> f64 {
        if self.shortlist_simulations == 0 {
            return f64::INFINITY;
        }
        self.exhaustive_simulations as f64 / self.shortlist_simulations as f64
    }

    /// Shortlist winner's score as a fraction of the exhaustive winner's
    /// (1.0 = the shortlist retained the true best plan).
    pub fn quality(&self) -> f64 {
        if self.exhaustive_best <= 0.0 {
            return 1.0;
        }
        self.shortlist_best / self.exhaustive_best
    }
}

/// Runs one stencil's exhaustive and model-guided sweeps over the full
/// §6 space (no `max_candidates` truncation, so the simulation counts
/// measure the shortlist alone) and returns the paired sample.
pub fn model_gate_sample(
    program: &StencilProgram,
    device: &DeviceConfig,
    threads: usize,
) -> ModelGateSample {
    let space = sweep_space(program.spatial_dims(), false);
    let (dims, steps) = autotune_workload(program);
    let run = |top_k: usize| -> AutotuneReport {
        let cfg = AutotuneConfig {
            smem_limit: device.shared_limit as u64,
            max_candidates: usize::MAX,
            top_k,
            ..AutotuneConfig::fermi()
        };
        autotune(program, &space, &cfg, |model| {
            simulate_score(program, &model.params, device, &dims, steps, threads)
        })
    };
    let top_k = default_top_k(program.spatial_dims());
    let exhaustive = run(0);
    let shortlist = run(top_k);
    ModelGateSample {
        stencil: program.name().to_string(),
        top_k,
        exhaustive_simulations: exhaustive.simulated,
        shortlist_simulations: shortlist.simulated,
        exhaustive_best: exhaustive.ranked.first().map_or(0.0, |e| e.score),
        shortlist_best: shortlist.ranked.first().map_or(0.0, |e| e.score),
    }
}

/// Sequential-vs-racing sweep comparison for one stencil: the same full
/// (non-smoke) space and scorer, swept once candidate-by-candidate at
/// full fidelity (the pre-PR baseline) and once through the parallel
/// worker pool with the successive-halving fidelity ladder. The evidence
/// behind the `--race-gate` CI gate.
#[derive(Clone, Debug)]
pub struct RaceGateSample {
    /// Stencil name.
    pub stencil: String,
    /// Candidate workers the racing sweep used.
    pub workers: usize,
    /// Fidelity scale of the proxy round.
    pub proxy_frac: f64,
    /// Sequential sweep wall-clock in milliseconds.
    pub seq_wall_ms: f64,
    /// Racing (parallel + ladder) sweep wall-clock in milliseconds.
    pub ladder_wall_ms: f64,
    /// Full-fidelity simulations the sequential sweep paid.
    pub seq_full_simulations: usize,
    /// Full-fidelity simulations the ladder paid (survivors only).
    pub ladder_full_simulations: usize,
    /// Proxy-fidelity simulations the ladder paid.
    pub ladder_proxy_simulations: usize,
    /// Best GStencils/s found by the sequential sweep.
    pub seq_best: f64,
    /// Best GStencils/s found by the racing sweep.
    pub ladder_best: f64,
}

impl RaceGateSample {
    /// Sequential full-fidelity simulations per ladder full-fidelity
    /// simulation (≥ 2 = the ladder halves the expensive work).
    pub fn full_sim_reduction(&self) -> f64 {
        if self.ladder_full_simulations == 0 {
            return f64::INFINITY;
        }
        self.seq_full_simulations as f64 / self.ladder_full_simulations as f64
    }

    /// Racing winner's score as a fraction of the sequential winner's
    /// (1.0 = the ladder retained the true best plan).
    pub fn quality(&self) -> f64 {
        if self.seq_best <= 0.0 {
            return 1.0;
        }
        self.ladder_best / self.seq_best
    }

    /// Sequential wall-clock over racing wall-clock (> 1 = racing wins).
    pub fn wall_speedup(&self) -> f64 {
        if self.ladder_wall_ms <= 0.0 {
            return 1.0;
        }
        self.seq_wall_ms / self.ladder_wall_ms
    }
}

/// Runs one stencil's sweeps both ways over the full §6 space — the
/// sequential full-fidelity oracle, then the racing sweep with `budget`
/// host threads split between candidate workers and per-candidate
/// simulator threads and a `proxy_frac = 0.5` fidelity ladder keeping
/// [`PROXY_KEEP_FRAC`] of the proxy round — and returns the paired
/// sample.
pub fn race_gate_sample(
    program: &StencilProgram,
    device: &DeviceConfig,
    budget: usize,
) -> RaceGateSample {
    let space = sweep_space(program.spatial_dims(), false);
    let (dims, steps) = autotune_workload(program);
    let base = AutotuneConfig {
        smem_limit: device.shared_limit as u64,
        max_candidates: usize::MAX,
        ..AutotuneConfig::fermi()
    };

    // The pre-PR baseline: one candidate at a time, full fidelity only,
    // single-threaded simulations.
    let t0 = Instant::now();
    let seq = autotune(program, &space, &base, |model| {
        simulate_score(program, &model.params, device, &dims, steps, 1)
    });
    let seq_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let proxy_frac = 0.5;
    let cfg = AutotuneConfig {
        proxy_frac,
        keep_frac: PROXY_KEEP_FRAC,
        ..base
    };
    let (pdims, psteps) = proxy_workload(&dims, steps, proxy_frac);
    let (workers, sim_threads) = split_thread_budget(budget, seq.simulated.max(1));
    let t1 = Instant::now();
    let ladder = autotune_parallel_cancellable(
        program,
        &space,
        &cfg,
        &CancelToken::never(),
        workers,
        |model: &hybrid_tiling::tilesize::TileSizeModel, fidelity: Fidelity| {
            let (d, s) = match fidelity {
                Fidelity::Proxy => (&pdims, psteps),
                Fidelity::Full => (&dims, steps),
            };
            simulate_score(program, &model.params, device, d, s, sim_threads)
        },
    )
    .expect("a never-token cannot cancel the sweep");
    let ladder_wall_ms = t1.elapsed().as_secs_f64() * 1e3;

    RaceGateSample {
        stencil: program.name().to_string(),
        workers,
        proxy_frac,
        seq_wall_ms,
        ladder_wall_ms,
        seq_full_simulations: seq.full_simulated,
        ladder_full_simulations: ladder.full_simulated,
        ladder_proxy_simulations: ladder.proxy_simulated,
        seq_best: seq.ranked.first().map_or(0.0, |e| e.score),
        ladder_best: ladder.ranked.first().map_or(0.0, |e| e.score),
    }
}

/// Wall-clock comparison of one plan on the sequential vs. the parallel
/// executor, with a bit-exactness cross-check of the merged counters.
#[derive(Clone, Debug)]
pub struct SpeedupSample {
    /// Stencil name.
    pub stencil: String,
    /// Sequential `run_plan` wall time in seconds.
    pub seq_seconds: f64,
    /// Parallel `run_plan_parallel_with` wall time in seconds.
    pub par_seconds: f64,
    /// Thread-block launches executed (workload size indicator).
    pub launches: u64,
}

impl SpeedupSample {
    /// Sequential time over parallel time (> 1 means parallel wins).
    pub fn speedup(&self) -> f64 {
        if self.par_seconds <= 0.0 {
            return 1.0;
        }
        self.seq_seconds / self.par_seconds
    }
}

/// Workload for the speedup measurement: big enough that per-launch pool
/// overhead amortizes, small enough for CI smoke runs.
pub fn speedup_workload(program: &StencilProgram, smoke: bool) -> (Vec<usize>, usize) {
    match (program.spatial_dims(), smoke) {
        (2, true) => (vec![96, 96], 8),
        (2, false) => (vec![256, 256], 16),
        (3, true) => (vec![20, 20, 36], 4),
        (3, false) => (vec![40, 40, 64], 8),
        (_, true) => (vec![512], 8),
        (_, false) => (vec![2048], 16),
    }
}

/// Measures the sequential and parallel executors on one program's hybrid
/// plan (default tile parameters), asserting that both produce identical
/// counters before reporting times. Each executor runs `repeats` times and
/// the **minimum** (least-noise) wall time is reported, so a single
/// noisy-neighbor stall on a shared CI runner cannot flip a speedup gate.
///
/// # Panics
///
/// Panics if the two executors disagree — the speedup of a wrong answer
/// is not worth reporting.
pub fn measure_speedup(
    program: &StencilProgram,
    device: &DeviceConfig,
    threads: usize,
    smoke: bool,
    repeats: usize,
) -> SpeedupSample {
    let repeats = repeats.max(1);
    let params = hybrid_params(program);
    let opts = CodegenOptions::best();
    let (dims, steps) = speedup_workload(program, smoke);
    let plan = generate_hybrid(program, &params, &dims, steps, opts)
        .expect("default hybrid parameters are schedulable for gallery stencils");
    let align = alignment_offset_words(program, &params, &opts);
    let init: Vec<Grid> = (0..program.num_fields())
        .map(|f| Grid::random(&dims, 7 + f as u64))
        .collect();
    let planes = program.max_dt() as usize + 1;

    let mut seq_seconds = f64::INFINITY;
    let mut par_seconds = f64::INFINITY;
    let mut launches = 0;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let mut seq = GpuSim::with_global_offset(device.clone(), &init, planes, align);
        seq.run_plan(&plan);
        seq_seconds = seq_seconds.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        let mut par = GpuSim::with_global_offset(device.clone(), &init, planes, align);
        par.run_plan_parallel_with(&plan, threads);
        par_seconds = par_seconds.min(t1.elapsed().as_secs_f64());

        assert_eq!(
            par.counters(),
            seq.counters(),
            "{}: parallel executor diverged from sequential",
            program.name()
        );
        launches = seq.counters().launches;
    }
    SpeedupSample {
        stencil: program.name().to_string(),
        seq_seconds,
        par_seconds,
        launches,
    }
}

/// Wall-clock comparison of one plan on the interpreting vs. the
/// compiled-bytecode executor, both single-threaded, with a bit-exactness
/// cross-check before any time is reported. This is the `points_per_sec`
/// metric of `BENCH_autotune.json`: simulated stencil point updates per
/// wall-clock second of *simulator* time — the simulator's own
/// throughput, which bounds how many tuning candidates the fleet can
/// score per deadline (not to be confused with the simulated device's
/// GStencils/s).
#[derive(Clone, Debug)]
pub struct ExecThroughputSample {
    /// Stencil name.
    pub stencil: String,
    /// Interpreted (`run_plan`) wall time in seconds.
    pub interpreted_seconds: f64,
    /// Compiled (`run_plan_compiled`) wall time in seconds.
    pub compiled_seconds: f64,
    /// Logical stencil point updates the plan performs.
    pub points: u64,
}

impl ExecThroughputSample {
    /// Simulated point updates per second of interpreter wall time.
    pub fn points_per_sec_interpreted(&self) -> f64 {
        if self.interpreted_seconds <= 0.0 {
            return 0.0;
        }
        self.points as f64 / self.interpreted_seconds
    }

    /// Simulated point updates per second of compiled-executor wall time.
    pub fn points_per_sec_compiled(&self) -> f64 {
        if self.compiled_seconds <= 0.0 {
            return 0.0;
        }
        self.points as f64 / self.compiled_seconds
    }

    /// Interpreted time over compiled time (> 1 means compilation wins).
    pub fn speedup(&self) -> f64 {
        if self.compiled_seconds <= 0.0 {
            return 1.0;
        }
        self.interpreted_seconds / self.compiled_seconds
    }
}

/// Measures the interpreting and compiled executors on one program's
/// hybrid plan (default tile parameters, same workload as
/// [`measure_speedup`]), asserting grids *and* counters bit-exact before
/// reporting times. Each executor runs `repeats` times and the
/// **minimum** wall time is reported, so a noisy CI neighbor cannot flip
/// the compiled-vs-interpreted gate.
///
/// # Panics
///
/// Panics if the compiled executor diverges from the `run_plan` oracle —
/// the speed of a wrong answer is not worth reporting.
pub fn measure_exec_throughput(
    program: &StencilProgram,
    device: &DeviceConfig,
    smoke: bool,
    repeats: usize,
) -> ExecThroughputSample {
    let repeats = repeats.max(1);
    let params = hybrid_params(program);
    let opts = CodegenOptions::best();
    let (dims, steps) = speedup_workload(program, smoke);
    let plan = generate_hybrid(program, &params, &dims, steps, opts)
        .expect("default hybrid parameters are schedulable for gallery stencils");
    let align = alignment_offset_words(program, &params, &opts);
    let init: Vec<Grid> = (0..program.num_fields())
        .map(|f| Grid::random(&dims, 7 + f as u64))
        .collect();
    let planes = program.max_dt() as usize + 1;

    let mut interpreted_seconds = f64::INFINITY;
    let mut compiled_seconds = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let mut interp = GpuSim::with_global_offset(device.clone(), &init, planes, align);
        interp.run_plan(&plan);
        interpreted_seconds = interpreted_seconds.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        let mut comp = GpuSim::with_global_offset(device.clone(), &init, planes, align);
        comp.run_plan_compiled(&plan);
        compiled_seconds = compiled_seconds.min(t1.elapsed().as_secs_f64());

        assert_eq!(
            comp.counters(),
            interp.counters(),
            "{}: compiled executor counters diverged from run_plan oracle",
            program.name()
        );
        for f in 0..program.num_fields() {
            for p in 0..planes {
                assert!(
                    comp.plane(f, p).bit_equal(interp.plane(f, p)),
                    "{}: compiled executor grid diverged (field {f} plane {p})",
                    program.name()
                );
            }
        }
    }
    ExecThroughputSample {
        stencil: program.name().to_string(),
        interpreted_seconds,
        compiled_seconds,
        points: point_updates(program, &dims, steps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    #[test]
    fn scorer_produces_positive_throughput() {
        let p = gallery::jacobi2d();
        let (dims, steps) = autotune_workload(&p);
        let s = simulate_score(
            &p,
            &TileParams::new(2, &[3, 32]),
            &DeviceConfig::gtx470(),
            &dims,
            steps,
            2,
        )
        .unwrap();
        assert!(s > 0.0);
    }

    #[test]
    fn scorer_rejects_oversized_shared_memory() {
        let p = gallery::heat3d();
        let (dims, steps) = autotune_workload(&p);
        // A deliberately huge footprint: 27-point stencil with wide tile.
        let s = simulate_score(
            &p,
            &TileParams::new(3, &[7, 16, 64]),
            &DeviceConfig::gtx470(),
            &dims,
            steps,
            1,
        );
        assert!(s.is_none());
    }

    #[test]
    fn smoke_autotune_ranks_candidates() {
        let p = gallery::jacobi2d();
        let report = autotune_program(&p, &DeviceConfig::gtx470(), 2, true);
        assert!(!report.ranked.is_empty());
        assert!(report.ranked.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn speedup_sample_is_bit_exact_and_positive() {
        let p = gallery::jacobi2d();
        let s = measure_speedup(&p, &DeviceConfig::gtx470(), 2, true, 2);
        assert!(s.seq_seconds > 0.0);
        assert!(s.par_seconds > 0.0);
        assert!(s.launches > 0);
    }

    #[test]
    fn exec_throughput_sample_is_bit_exact_and_positive() {
        let p = gallery::jacobi2d();
        let s = measure_exec_throughput(&p, &DeviceConfig::gtx470(), true, 1);
        assert!(s.interpreted_seconds > 0.0);
        assert!(s.compiled_seconds > 0.0);
        assert!(s.points > 0);
        assert!(s.points_per_sec_interpreted() > 0.0);
        assert!(s.points_per_sec_compiled() > 0.0);
        assert!(s.speedup() > 0.0);
    }
}
