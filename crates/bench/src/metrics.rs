//! Prometheus text-exposition rendering of the serving layer's
//! counters.
//!
//! Everything [`ServeState`] and
//! [`FleetRouter`](crate::fleet::FleetRouter) already track — request
//! counters, the per-device cache metric set, hit-age quantiles, queue
//! depth, deadline misses, auth counters — rendered in the Prometheus
//! text exposition format (version 0.0.4). The same text is served two
//! ways: as the `metrics` protocol op (a JSON string field) and
//! verbatim over the `--metrics <addr>` HTTP listener
//! ([`serve_metrics_http`](crate::serve::serve_metrics_http)).
//!
//! Rendering is a pure function over a [`MetricsSnapshot`], so tests
//! can pin a golden render without a live service, and the fleet and
//! single-device paths cannot drift apart. [`parse_exposition`] is the
//! matching validator: `hybridload --check-metrics` and CI use it to
//! prove a scrape actually parses instead of grepping for substrings.
//!
//! Metric names are stable API (the README carries the reference
//! table): counters end in `_total`, gauges don't, and every per-device
//! series carries a `device` label so fleet aggregation is a plain
//! `sum by ()`.

use crate::serve::{ServeState, ServeStats};

/// The per-device slice of a [`MetricsSnapshot`]: one member's request
/// counters and its full cache metric set. For a single-device service
/// there is exactly one of these.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DeviceMetrics {
    /// The `device` label value (the configured device name for a
    /// single service, the member key in a fleet).
    pub device: String,
    pub requests: u64,
    pub ok: u64,
    pub errors: u64,
    pub contained_panics: u64,
    /// Compiles that re-verified cross-device warm hints.
    pub warm_starts: u64,
    /// Compiles whose winning plan came from a warm hint.
    pub warm_start_hits: u64,
    /// Tuning scorer invocations (simulator runs in simulated mode),
    /// warm-hint re-verifications included.
    pub tune_simulations: u64,
    /// The proxy-fidelity subset of `tune_simulations` (reduced
    /// grid/steps rounds of the successive-halving ladder).
    pub proxy_simulations: u64,
    /// Wall-clock milliseconds spent inside fresh tuning sweeps.
    pub tune_wall_ms: u64,
    /// Successful compiles per code-generation backend, indexed by
    /// [`BackendKind::index`](gpu_codegen::BackendKind::index).
    pub backend_compiles: [u64; 4],
    pub mem_entries: u64,
    pub mem_bytes: u64,
    /// `None` renders no `hybrid_mem_cache_cap_bytes` series (an
    /// unbounded cache has no cap to report).
    pub mem_cap_bytes: Option<u64>,
    pub mem_hits: u64,
    pub mem_misses: u64,
    pub mem_coalesced: u64,
    pub mem_bypasses: u64,
    pub mem_cancelled_waits: u64,
    pub mem_evictions: u64,
    pub mem_rebalances: u64,
    /// Hit-age (p50, p90, p99) in milliseconds; `None` before the first
    /// hit.
    pub hit_age_ms: Option<(u64, u64, u64)>,
}

/// Everything one render needs, captured at a point in time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub uptime_ms: u64,
    /// `"fifo"` | `"edf"`.
    pub sched_policy: String,
    pub queue_depth: u64,
    pub queue_depth_peak: u64,
    pub deadline_misses: u64,
    pub edf_promotions: u64,
    pub auth_ok: u64,
    pub auth_failures: u64,
    pub auth_rejected: u64,
    /// Fleet-only: the `--max-devices` bound.
    pub max_devices: Option<u64>,
    pub devices: Vec<DeviceMetrics>,
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Captures the metric set of one single-device service.
pub fn snapshot_state(state: &ServeState) -> MetricsSnapshot {
    let mut snap = snapshot_stats(state.stats(), state.uptime().as_millis() as u64);
    snap.devices = vec![device_metrics(&state.cfg().device.name, state)];
    snap
}

/// The service-level (non-device) half of a snapshot; the fleet router
/// fills `devices`/`max_devices` itself.
pub fn snapshot_stats(stats: &ServeStats, uptime_ms: u64) -> MetricsSnapshot {
    MetricsSnapshot {
        uptime_ms,
        sched_policy: stats.policy().name().to_string(),
        queue_depth: stats.queue_depth(),
        queue_depth_peak: stats.queue_depth_peak(),
        deadline_misses: stats.deadline_misses(),
        edf_promotions: stats.edf_promotions(),
        auth_ok: stats.auth_ok(),
        auth_failures: stats.auth_failures(),
        auth_rejected: stats.auth_rejected(),
        max_devices: None,
        devices: Vec::new(),
    }
}

/// The per-device slice for `state`, labeled `device`.
pub fn device_metrics(device: &str, state: &ServeState) -> DeviceMetrics {
    let mem = state.mem();
    DeviceMetrics {
        device: device.to_string(),
        requests: state.requests(),
        ok: state.ok_count(),
        errors: state.error_count(),
        contained_panics: state.panic_count(),
        warm_starts: state.warm_starts(),
        warm_start_hits: state.warm_start_hits(),
        tune_simulations: state.tune_simulations(),
        proxy_simulations: state.proxy_simulations(),
        tune_wall_ms: state.tune_wall_ms(),
        backend_compiles: state.backend_compiles(),
        mem_entries: mem.len() as u64,
        mem_bytes: mem.bytes(),
        mem_cap_bytes: mem.cap_bytes(),
        mem_hits: mem.hits(),
        mem_misses: mem.misses(),
        mem_coalesced: mem.coalesced(),
        mem_bypasses: mem.bypasses(),
        mem_cancelled_waits: mem.cancelled_waits(),
        mem_evictions: mem.evictions(),
        mem_rebalances: mem.rebalances(),
        hit_age_ms: mem.hit_age_quantiles_ms(),
    }
}

/// [`render`] over a live single-device service.
pub fn render_state(state: &ServeState) -> String {
    render(&snapshot_state(state))
}

/// Renders a snapshot in the text exposition format. Deterministic for
/// a fixed snapshot (fixed series order, no timestamps), so golden-file
/// tests can pin the full output.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    let mut family = |name: &str, kind: &str, help: &str, samples: &[(String, u64)]| {
        if samples.is_empty() {
            return;
        }
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        for (labels, value) in samples {
            out.push_str(&format!("{name}{labels} {value}\n"));
        }
    };
    let dev = |d: &DeviceMetrics| format!("{{device=\"{}\"}}", escape_label(&d.device));
    let per_device = |f: fn(&DeviceMetrics) -> u64| -> Vec<(String, u64)> {
        snap.devices.iter().map(|d| (dev(d), f(d))).collect()
    };

    family(
        "hybrid_uptime_milliseconds",
        "gauge",
        "Milliseconds since the service started.",
        &[(String::new(), snap.uptime_ms)],
    );
    family(
        "hybrid_requests_total",
        "counter",
        "Requests handled, including failed ones.",
        &per_device(|d| d.requests),
    );
    family(
        "hybrid_ok_total",
        "counter",
        "Requests answered with a non-error status.",
        &per_device(|d| d.ok),
    );
    family(
        "hybrid_errors_total",
        "counter",
        "Requests answered with status \"error\".",
        &per_device(|d| d.errors),
    );
    family(
        "hybrid_contained_panics_total",
        "counter",
        "Panics contained at the request boundary.",
        &per_device(|d| d.contained_panics),
    );
    family(
        "hybrid_warm_starts_total",
        "counter",
        "Compiles that re-verified cross-device warm-start hints.",
        &per_device(|d| d.warm_starts),
    );
    family(
        "hybrid_warm_start_hits_total",
        "counter",
        "Compiles whose winning plan came from a warm-start hint.",
        &per_device(|d| d.warm_start_hits),
    );
    family(
        "hybrid_tune_simulations_total",
        "counter",
        "Tuning scorer invocations, warm-hint re-verifications included.",
        &per_device(|d| d.tune_simulations),
    );
    family(
        "hybrid_proxy_simulations_total",
        "counter",
        "Proxy-fidelity scorer invocations (reduced-workload ladder rounds).",
        &per_device(|d| d.proxy_simulations),
    );
    family(
        "hybrid_tune_wall_milliseconds_total",
        "counter",
        "Wall-clock milliseconds spent in fresh tuning sweeps.",
        &per_device(|d| d.tune_wall_ms),
    );
    let compiles: Vec<(String, u64)> = snap
        .devices
        .iter()
        .flat_map(|d| {
            gpu_codegen::BackendKind::ALL.map(|kind| {
                (
                    format!(
                        "{{device=\"{}\",backend=\"{}\"}}",
                        escape_label(&d.device),
                        kind.name()
                    ),
                    d.backend_compiles[kind.index()],
                )
            })
        })
        .collect();
    family(
        "hybrid_backend_compiles_total",
        "counter",
        "Successful compiles by code-generation backend.",
        &compiles,
    );
    let lookups: Vec<(String, u64)> = snap
        .devices
        .iter()
        .flat_map(|d| {
            let l = |outcome: &str, v: u64| {
                (
                    format!(
                        "{{device=\"{}\",outcome=\"{outcome}\"}}",
                        escape_label(&d.device)
                    ),
                    v,
                )
            };
            [
                l("hit", d.mem_hits),
                l("miss", d.mem_misses),
                l("coalesced", d.mem_coalesced),
                l("bypass", d.mem_bypasses),
                l("cancelled_wait", d.mem_cancelled_waits),
            ]
        })
        .collect();
    family(
        "hybrid_mem_cache_lookups_total",
        "counter",
        "In-memory plan cache lookups by outcome.",
        &lookups,
    );
    family(
        "hybrid_mem_cache_entries",
        "gauge",
        "Ready entries in the in-memory plan cache.",
        &per_device(|d| d.mem_entries),
    );
    family(
        "hybrid_mem_cache_bytes",
        "gauge",
        "Bytes held by ready in-memory plan cache entries.",
        &per_device(|d| d.mem_bytes),
    );
    let caps: Vec<(String, u64)> = snap
        .devices
        .iter()
        .filter_map(|d| d.mem_cap_bytes.map(|cap| (dev(d), cap)))
        .collect();
    family(
        "hybrid_mem_cache_cap_bytes",
        "gauge",
        "Configured in-memory plan cache byte cap.",
        &caps,
    );
    family(
        "hybrid_mem_cache_evictions_total",
        "counter",
        "LRU evictions from the in-memory plan cache.",
        &per_device(|d| d.mem_evictions),
    );
    family(
        "hybrid_mem_cache_rebalances_total",
        "counter",
        "Demand-weighted shard budget rebalances.",
        &per_device(|d| d.mem_rebalances),
    );
    let ages: Vec<(String, u64)> = snap
        .devices
        .iter()
        .filter_map(|d| d.hit_age_ms.map(|q| (d, q)))
        .flat_map(|(d, (p50, p90, p99))| {
            let l = |q: &str, v: u64| {
                (
                    format!(
                        "{{device=\"{}\",quantile=\"{q}\"}}",
                        escape_label(&d.device)
                    ),
                    v,
                )
            };
            [l("0.5", p50), l("0.9", p90), l("0.99", p99)]
        })
        .collect();
    family(
        "hybrid_hit_age_ms",
        "gauge",
        "Age of entries at memory-cache hit time, in milliseconds.",
        &ages,
    );
    family(
        "hybrid_devices",
        "gauge",
        "Fleet members (1 for a single-device service).",
        &[(String::new(), snap.devices.len() as u64)],
    );
    let max_devices: Vec<(String, u64)> = snap
        .max_devices
        .map(|m| vec![(String::new(), m)])
        .unwrap_or_default();
    family(
        "hybrid_max_devices",
        "gauge",
        "Configured fleet member bound (--max-devices).",
        &max_devices,
    );
    family(
        "hybrid_queue_depth",
        "gauge",
        "Requests queued, not yet picked up by a worker.",
        &[(String::new(), snap.queue_depth)],
    );
    family(
        "hybrid_queue_depth_peak",
        "gauge",
        "High-water mark of hybrid_queue_depth.",
        &[(String::new(), snap.queue_depth_peak)],
    );
    family(
        "hybrid_deadline_misses_total",
        "counter",
        "Responses produced after the request's arrival-anchored deadline.",
        &[(String::new(), snap.deadline_misses)],
    );
    family(
        "hybrid_edf_promotions_total",
        "counter",
        "Deadline requests scheduled ahead of earlier arrivals.",
        &[(String::new(), snap.edf_promotions)],
    );
    family(
        "hybrid_sched_policy",
        "gauge",
        "Active scheduling policy (the labeled policy is 1).",
        &[(
            format!("{{policy=\"{}\"}}", escape_label(&snap.sched_policy)),
            1,
        )],
    );
    family(
        "hybrid_auth_ok_total",
        "counter",
        "Successful hello handshakes.",
        &[(String::new(), snap.auth_ok)],
    );
    family(
        "hybrid_auth_failures_total",
        "counter",
        "Hello handshakes with a wrong secret.",
        &[(String::new(), snap.auth_failures)],
    );
    family(
        "hybrid_auth_rejected_total",
        "counter",
        "Ops rejected with auth_required on unauthenticated connections.",
        &[(String::new(), snap.auth_rejected)],
    );
    out
}

/// Validating parser for the subset of the text exposition format the
/// renderer emits (and any well-formed scrape): `# HELP`/`# TYPE`
/// comments plus `name{labels} value` samples. Returns the samples as
/// `(series, value)` pairs — `series` is the sample text before the
/// value, e.g. `hybrid_requests_total{device="gtx470"}` — or a
/// description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {n}: TYPE names invalid metric {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {n}: unknown TYPE {kind:?}"));
                }
            } else if !comment.starts_with("HELP ") {
                return Err(format!("line {n}: comment is neither HELP nor TYPE"));
            }
            continue;
        }
        let (series, value) = split_sample(line).ok_or(format!("line {n}: malformed sample"))?;
        let (name, labels) = match series.find('{') {
            Some(open) => {
                if !series.ends_with('}') {
                    return Err(format!("line {n}: unterminated label set"));
                }
                (&series[..open], Some(&series[open + 1..series.len() - 1]))
            }
            None => (series, None),
        };
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        if let Some(labels) = labels {
            validate_labels(labels).map_err(|e| format!("line {n}: {e}"))?;
        }
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {n}: non-numeric value {value:?}"))?;
        samples.push((series.to_string(), value));
    }
    Ok(samples)
}

/// Splits a sample line into (series, value) at the last space outside
/// quotes. (Label values may contain spaces.)
fn split_sample(line: &str) -> Option<(&str, &str)> {
    let mut in_quotes = false;
    let mut escaped = false;
    let mut split_at = None;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ' ' if !in_quotes => split_at = Some(i),
            _ => {}
        }
    }
    let i = split_at?;
    let (series, value) = (line[..i].trim_end(), line[i + 1..].trim());
    if series.is_empty() || value.is_empty() {
        return None;
    }
    Some((series, value))
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates a `name="value",...` label body: names are identifiers,
/// values are quoted with only the three defined escapes.
fn validate_labels(body: &str) -> Result<(), String> {
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let name = &rest[..eq];
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("invalid label name {name:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label {name:?} value is not quoted"));
        }
        let mut escaped = false;
        let mut close = None;
        for (i, c) in after.char_indices().skip(1) {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("label {name:?} has invalid escape \\{c}"));
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    close = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let close = close.ok_or_else(|| format!("label {name:?} value is unterminated"))?;
        rest = &after[close + 1..];
        match rest.strip_prefix(',') {
            Some(r) => rest = r,
            None if rest.is_empty() => {}
            None => return Err(format!("junk after label {name:?}: {rest:?}")),
        }
    }
    Ok(())
}
