//! `hybridd` — the resident compile service behind `hybridc serve`.
//!
//! The one-shot driver ([`crate::driver`]) compiles a file set and exits;
//! this module keeps the pipeline resident so clients pay tuning cost
//! once and every later identical request is a memory-cache hit. The wire
//! protocol is newline-delimited JSON over stdin/stdout or TCP: one
//! request per line, one compact-JSON response per line (responses may
//! arrive out of request order; match them by `seq`/`id`).
//!
//! ## Requests
//!
//! ```json
//! {"op": "compile", "id": "r1", "path": "examples/stencils/jacobi2d.stencil"}
//! {"op": "compile", "id": "r2", "program": "for (t = 0; ...", "name": "mine",
//!  "device": "nvs5200m", "tune": "simulated", "smoke": true,
//!  "verify": false, "size": [64, 64], "steps": 8}
//! {"op": "status"}
//! {"op": "shutdown"}
//! ```
//!
//! `compile` takes the program inline (`program`, optionally `name`) or
//! by path (`path`), plus per-request overrides of the same options the
//! CLI exposes. The response is exactly the per-stencil object of
//! `hybridc --report` ([`crate::driver::outcome_json`]) with `seq` (the
//! server's input line number) and the echoed `id` prepended — compile
//! results are bit-identical to a one-shot run with the same options.
//!
//! `status` reports liveness and cache counters; `shutdown` stops the
//! serving loop after draining in-flight work.
//!
//! ## Isolation and caching
//!
//! Requests fan out across a worker pool. Every request is handled under
//! a [`catch_unwind`] boundary *on top of* the driver's typed
//! [`DriverError`](crate::driver::DriverError)s, so no input — malformed
//! JSON, unparseable DSL,
//! budget-infeasible tile requests, conflict-inducing schedules, or an
//! outright pipeline bug — can take the service down: each failure is
//! that request's error response. Plans are shared through the
//! single-flight in-memory [`MemCache`] layered above the on-disk cache,
//! so N concurrent clients compiling the same stencil cost one tuning
//! sweep.

use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

use gpusim::DeviceConfig;

use crate::driver::{
    compile_file_with, compile_source_with, outcome_json, sanitize_program_name, DriverConfig,
    MemCache, TuneMode,
};
use crate::json::Json;

/// Shared state of one `hybridd` instance: the base configuration, the
/// in-memory plan cache, and liveness counters. One instance serves any
/// number of connections/loops concurrently.
pub struct ServeState {
    cfg: DriverConfig,
    mem: MemCache,
    started: Instant,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    stop: AtomicBool,
}

impl ServeState {
    /// A fresh service around `cfg` (the per-request defaults; requests
    /// may override device, tuning, verification and workload).
    pub fn new(cfg: DriverConfig) -> ServeState {
        ServeState {
            cfg,
            mem: MemCache::new(),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        }
    }

    /// The shared in-memory plan cache.
    pub fn mem(&self) -> &MemCache {
        &self.mem
    }

    /// True once a `shutdown` request was served.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests handled so far (including failed ones).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Handles one wire line. Returns `None` for blank lines; every other
    /// input — including unparseable JSON and panicking pipeline stages —
    /// produces a response object. This is the per-request abort barrier:
    /// it never panics and never exits.
    pub fn handle_line(&self, seq: u64, line: &str) -> Option<Json> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(seq, line)));
        let response = outcome.unwrap_or_else(|payload| {
            self.panics.fetch_add(1, Ordering::Relaxed);
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_string()
            };
            error_response(seq, None, "internal", &format!("request panicked: {msg}"))
        });
        if response.get("status").and_then(Json::as_str) == Some("error") {
            self.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            self.ok.fetch_add(1, Ordering::Relaxed);
        }
        Some(response)
    }

    fn dispatch(&self, seq: u64, line: &str) -> Json {
        let req = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return error_response(seq, None, "bad_request", &format!("malformed JSON: {e}"))
            }
        };
        let id = req.get("id").cloned();
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None => {
                return error_response(
                    seq,
                    id.as_ref(),
                    "bad_request",
                    "missing \"op\" (compile | status | shutdown)",
                )
            }
        };
        match op {
            "compile" => self.handle_compile(seq, id.as_ref(), &req),
            "status" => self.status_response(seq, id.as_ref()),
            "shutdown" => {
                self.stop.store(true, Ordering::SeqCst);
                with_envelope(
                    seq,
                    id.as_ref(),
                    Json::obj(vec![("status", Json::str("stopping"))]),
                )
            }
            other => error_response(
                seq,
                id.as_ref(),
                "bad_request",
                &format!("unknown op {other:?} (compile | status | shutdown)"),
            ),
        }
    }

    /// Builds the per-request [`DriverConfig`] from the base config plus
    /// the request's overrides, or a typed error description.
    fn request_config(&self, req: &Json) -> Result<DriverConfig, String> {
        let mut cfg = self.cfg.clone();
        if let Some(d) = req.get("device") {
            let name = d.as_str().ok_or("\"device\" must be a string")?;
            cfg.device = match name {
                "gtx470" => DeviceConfig::gtx470(),
                "nvs5200m" => DeviceConfig::nvs5200m(),
                other => return Err(format!("unknown device {other:?} (gtx470 | nvs5200m)")),
            };
        }
        if let Some(t) = req.get("tune") {
            let name = t.as_str().ok_or("\"tune\" must be a string")?;
            cfg.tune = match name {
                "static" => TuneMode::Static,
                "simulated" => TuneMode::Simulated,
                other => return Err(format!("unknown tune mode {other:?} (static | simulated)")),
            };
        }
        if let Some(s) = req.get("smoke") {
            cfg.smoke = s.as_bool().ok_or("\"smoke\" must be a boolean")?;
        }
        if let Some(v) = req.get("verify") {
            cfg.verify = v.as_bool().ok_or("\"verify\" must be a boolean")?;
        }
        let size = match req.get("size") {
            Some(s) => {
                let arr = s.as_arr().ok_or("\"size\" must be an array of integers")?;
                let dims: Option<Vec<usize>> = arr
                    .iter()
                    .map(|x| x.as_u64().and_then(|v| usize::try_from(v).ok()))
                    .map(|v| v.filter(|&d| d > 0))
                    .collect();
                Some(dims.ok_or("\"size\" entries must be positive integers")?)
            }
            None => None,
        };
        let steps = match req.get("steps") {
            Some(s) => Some(
                s.as_u64()
                    .and_then(|v| usize::try_from(v).ok())
                    .filter(|&v| v > 0)
                    .ok_or("\"steps\" must be a positive integer")?,
            ),
            None => None,
        };
        match (size, steps) {
            (Some(d), Some(s)) => cfg.workload = Some((d, s)),
            (None, None) => {}
            _ => return Err("\"size\" and \"steps\" must be given together".to_string()),
        }
        Ok(cfg)
    }

    fn handle_compile(&self, seq: u64, id: Option<&Json>, req: &Json) -> Json {
        let cfg = match self.request_config(req) {
            Ok(cfg) => cfg,
            Err(msg) => return error_response(seq, id, "bad_request", &msg),
        };
        let program = req.get("program").map(|p| p.as_str());
        let path = req.get("path").map(|p| p.as_str());
        let (source_label, result) = match (program, path) {
            (Some(Some(text)), None) => {
                let name = match req.get("name") {
                    None => "stencil".to_string(),
                    Some(n) => match n.as_str() {
                        Some(s) => sanitize_program_name(s),
                        None => {
                            return error_response(
                                seq,
                                id,
                                "bad_request",
                                "\"name\" must be a string",
                            )
                        }
                    },
                };
                let label = PathBuf::from(format!("<request:{name}>"));
                let result = compile_source_with(&name, text, &label, &cfg, Some(&self.mem));
                (label.display().to_string(), result)
            }
            (None, Some(Some(p))) => {
                let path = Path::new(p);
                let result = compile_file_with(path, &cfg, Some(&self.mem));
                (p.to_string(), result)
            }
            (Some(None), _) => {
                return error_response(seq, id, "bad_request", "\"program\" must be a string")
            }
            (_, Some(None)) => {
                return error_response(seq, id, "bad_request", "\"path\" must be a string")
            }
            (Some(_), Some(_)) => {
                return error_response(
                    seq,
                    id,
                    "bad_request",
                    "give exactly one of \"program\" or \"path\", not both",
                )
            }
            (None, None) => {
                return error_response(
                    seq,
                    id,
                    "bad_request",
                    "compile needs \"program\" (inline DSL) or \"path\" (a .stencil file)",
                )
            }
        };
        with_envelope(seq, id, outcome_json(&source_label, &result))
    }

    fn status_response(&self, seq: u64, id: Option<&Json>) -> Json {
        with_envelope(
            seq,
            id,
            Json::obj(vec![
                ("status", Json::str("alive")),
                (
                    "uptime_ms",
                    Json::UInt(self.started.elapsed().as_millis() as u64),
                ),
                (
                    "requests",
                    Json::UInt(self.requests.load(Ordering::Relaxed)),
                ),
                ("ok", Json::UInt(self.ok.load(Ordering::Relaxed))),
                ("errors", Json::UInt(self.errors.load(Ordering::Relaxed))),
                (
                    "contained_panics",
                    Json::UInt(self.panics.load(Ordering::Relaxed)),
                ),
                ("mem_entries", Json::UInt(self.mem.len() as u64)),
                ("mem_hits", Json::UInt(self.mem.hits())),
                ("mem_misses", Json::UInt(self.mem.misses())),
                ("mem_coalesced", Json::UInt(self.mem.coalesced())),
                (
                    "disk_cache",
                    match &self.cfg.cache_dir {
                        Some(d) => Json::str(d.display().to_string()),
                        None => Json::Null,
                    },
                ),
                ("device", Json::str(self.cfg.device.name.clone())),
                ("tune", Json::str(self.cfg.tune.name())),
            ]),
        )
    }
}

/// Prepends the response envelope (`seq`, echoed `id`) to a payload
/// object.
fn with_envelope(seq: u64, id: Option<&Json>, payload: Json) -> Json {
    let mut pairs = vec![("seq".to_string(), Json::UInt(seq))];
    if let Some(id) = id {
        pairs.push(("id".to_string(), id.clone()));
    }
    if let Json::Obj(rest) = payload {
        pairs.extend(rest);
    } else {
        pairs.push(("result".to_string(), payload));
    }
    Json::Obj(pairs)
}

fn error_response(seq: u64, id: Option<&Json>, kind: &str, message: &str) -> Json {
    with_envelope(
        seq,
        id,
        Json::obj(vec![
            ("status", Json::str("error")),
            ("error_kind", Json::str(kind)),
            ("error", Json::str(message)),
        ]),
    )
}

/// True when `line` is a `shutdown` request — the cheap substring test
/// first, then a real parse so a compile whose program text merely
/// mentions "shutdown" does not end the session.
fn is_shutdown_request(line: &str) -> bool {
    line.contains("shutdown")
        && Json::parse(line.trim())
            .ok()
            .and_then(|v| {
                v.get("op")
                    .and_then(Json::as_str)
                    .map(|op| op == "shutdown")
            })
            .unwrap_or(false)
}

/// Counters of one serving loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Responses written.
    pub responses: u64,
    /// Responses with `"status": "error"`.
    pub errors: u64,
}

/// Serves newline-delimited requests from `reader`, writing one
/// compact-JSON response line per request to `writer`, fanning requests
/// out across `workers` pool threads. Returns at end of input or after a
/// `shutdown` request; queued requests are drained either way.
///
/// Responses are written as workers finish, so they may be out of request
/// order — clients match on `seq` (input line number, starting at 1) or
/// their own `id` echo.
///
/// # Errors
///
/// Only reader I/O errors are returned; write errors to `writer` are
/// counted but do not stop the loop (a disconnected client must not kill
/// the service for the others).
pub fn serve<R: BufRead, W: Write + Send>(
    state: &ServeState,
    reader: R,
    writer: W,
    workers: usize,
) -> io::Result<ServeSummary> {
    let workers = workers.max(1);
    let (tx, rx) = mpsc::channel::<(u64, String)>();
    let rx = Mutex::new(rx);
    let writer = Mutex::new(writer);
    let responses = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let mut read_err = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let job = match rx.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => break,
                    };
                    let Ok((seq, line)) = job else { break };
                    let Some(response) = state.handle_line(seq, &line) else {
                        continue;
                    };
                    if response.get("status").and_then(Json::as_str) == Some("error") {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    responses.fetch_add(1, Ordering::Relaxed);
                    let mut line = response.render_compact();
                    line.push('\n');
                    if let Ok(mut w) = writer.lock() {
                        let _ = w.write_all(line.as_bytes());
                        let _ = w.flush();
                    }
                })
            })
            .collect();

        let mut seq = 0u64;
        for line in reader.lines() {
            match line {
                Ok(line) => {
                    seq += 1;
                    // A `shutdown` line stops this reader *now* — the
                    // blocking read must not have to wait for another
                    // client line (or EOF) to notice the stop flag. The
                    // worker still answers the queued request.
                    let stop_after = is_shutdown_request(&line);
                    if tx.send((seq, line)).is_err() || stop_after {
                        break;
                    }
                }
                Err(e) => {
                    read_err = Some(e);
                    break;
                }
            }
            if state.stopped() {
                break;
            }
        }
        drop(tx);
        for h in handles {
            let _ = h.join();
        }
    });

    match read_err {
        Some(e) => Err(e),
        None => Ok(ServeSummary {
            responses: responses.load(Ordering::Relaxed),
            errors: errors.load(Ordering::Relaxed),
        }),
    }
}

/// Serves TCP connections on `listener`, one serving loop per connection,
/// all sharing `state` (and therefore the in-memory plan cache). Returns
/// after a `shutdown` request has been served and every live connection
/// drained — idle connections are actively disconnected (socket
/// shutdown) so a blocked read on one client cannot keep the daemon
/// alive. Connection-level I/O errors are per-client; they never stop
/// the listener.
pub fn serve_tcp(state: &ServeState, listener: TcpListener, workers: usize) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let conns: Mutex<Vec<std::net::TcpStream>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            if state.stopped() {
                // Wake every connection's reader; their serve() loops
                // return on the resulting EOF and the scope joins them.
                if let Ok(conns) = conns.lock() {
                    for c in conns.iter() {
                        let _ = c.shutdown(std::net::Shutdown::Both);
                    }
                }
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(false);
                    if let (Ok(watch), Ok(mut conns)) = (stream.try_clone(), conns.lock()) {
                        conns.push(watch);
                    }
                    scope.spawn(move || {
                        let Ok(read_half) = stream.try_clone() else {
                            return;
                        };
                        let _ = serve(state, io::BufReader::new(read_half), stream, workers);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const JACOBI: &str = "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    for (j = 1; j < N-1; j++)\n      A[t+1][i][j] = 0.25f * (A[t][i+1][j] + A[t][i-1][j] + A[t][i][j+1] + A[t][i][j-1]);\n";

    fn test_state(tag: &str) -> ServeState {
        let dir = std::env::temp_dir().join(format!("hybridd_test_{}_{}", std::process::id(), tag));
        let cfg = DriverConfig {
            smoke: true,
            cache_dir: None,
            ..DriverConfig::new(dir)
        };
        ServeState::new(cfg)
    }

    fn compile_req(id: &str, program: &str) -> String {
        Json::obj(vec![
            ("op", Json::str("compile")),
            ("id", Json::str(id)),
            ("name", Json::str(id)),
            ("program", Json::str(program)),
        ])
        .render_compact()
    }

    #[test]
    fn malformed_json_and_bad_ops_get_typed_errors() {
        let state = test_state("bad_ops");
        for (line, want) in [
            ("this is not json", "malformed JSON"),
            ("{\"no\": \"op\"}", "missing \"op\""),
            ("{\"op\": \"frobnicate\"}", "unknown op"),
            ("{\"op\": \"compile\"}", "compile needs"),
            (
                "{\"op\": \"compile\", \"program\": \"x\", \"path\": \"y\"}",
                "exactly one",
            ),
            (
                "{\"op\": \"compile\", \"program\": \"x\", \"size\": [4]}",
                "given together",
            ),
            (
                "{\"op\": \"compile\", \"program\": \"x\", \"device\": \"tpu\"}",
                "unknown device",
            ),
        ] {
            let resp = state.handle_line(1, line).unwrap();
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("error"),
                "{line}"
            );
            let msg = resp.get("error").and_then(Json::as_str).unwrap();
            assert!(msg.contains(want), "{line}: {msg}");
        }
        // Blank lines are ignored, and the service is still serving.
        assert!(state.handle_line(9, "   ").is_none());
        let status = state.handle_line(10, "{\"op\": \"status\"}").unwrap();
        assert_eq!(status.get("status").and_then(Json::as_str), Some("alive"));
        assert_eq!(status.get("errors").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn inline_compile_then_memory_hit() {
        let state = test_state("inline");
        let first = state.handle_line(1, &compile_req("jac", JACOBI)).unwrap();
        assert_eq!(first.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(first.get("id").and_then(Json::as_str), Some("jac"));
        assert_eq!(first.get("seq").and_then(Json::as_u64), Some(1));

        let second = state.handle_line(2, &compile_req("jac", JACOBI)).unwrap();
        assert_eq!(second.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(second.get("cache").and_then(Json::as_str), Some("mem"));
        // Identical plan and metrics, memory-cache provenance aside.
        for key in ["h", "w", "gstencils_per_s", "verified", "fingerprint"] {
            assert_eq!(first.get(key), second.get(key), "{key}");
        }
    }

    #[test]
    fn broken_dsl_and_infeasible_requests_are_per_request_errors() {
        let state = test_state("broken");
        let resp = state
            .handle_line(1, &compile_req("bad", "for (t = 0; t < T; t++) oops"))
            .unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(resp.get("error_kind").and_then(Json::as_str), Some("parse"));

        // Wrong-arity workload for a 2-D program: typed, not fatal.
        let req = Json::obj(vec![
            ("op", Json::str("compile")),
            ("program", Json::str(JACOBI)),
            ("size", Json::Arr(vec![Json::UInt(64)])),
            ("steps", Json::UInt(4)),
        ])
        .render_compact();
        let resp = state.handle_line(2, &req).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            resp.get("error_kind").and_then(Json::as_str),
            Some("unsupported")
        );

        // The service is still alive and compiles fine afterwards.
        let ok = state.handle_line(3, &compile_req("jac", JACOBI)).unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn shutdown_stops_the_reader_without_another_line() {
        // The reader must break on the shutdown line itself — a blocked
        // `lines()` call waiting for the next client line would hang the
        // daemon. A reader that never yields another line after shutdown
        // models a client that keeps the connection open: the loop must
        // still return (and answer everything up to the shutdown).
        struct AfterShutdownBlocks {
            fed: Vec<u8>,
            pos: usize,
        }
        impl io::Read for AfterShutdownBlocks {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos >= self.fed.len() {
                    panic!("reader blocked past shutdown: serve() kept reading");
                }
                let n = buf.len().min(self.fed.len() - self.pos);
                buf[..n].copy_from_slice(&self.fed[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let state = test_state("early_shutdown");
        let fed = format!(
            "{}\n{}\n",
            Json::obj(vec![("op", Json::str("status"))]).render_compact(),
            Json::obj(vec![("op", Json::str("shutdown"))]).render_compact(),
        );
        let reader = io::BufReader::new(AfterShutdownBlocks {
            fed: fed.into_bytes(),
            pos: 0,
        });
        let mut out = Vec::new();
        let summary = serve(&state, reader, &mut out, 2).unwrap();
        assert_eq!(summary.responses, 2);
        assert!(state.stopped());
        // A compile request whose *program text* mentions shutdown is not
        // a shutdown.
        assert!(!is_shutdown_request(
            "{\"op\":\"compile\",\"program\":\"// shutdown valve\"}"
        ));
        assert!(is_shutdown_request("  {\"op\": \"shutdown\"} "));
    }

    #[test]
    fn serve_loop_drains_input_and_honors_shutdown() {
        let state = test_state("loop");
        let input = format!(
            "{}\nnot json\n{}\n{}\n",
            compile_req("a", JACOBI),
            Json::obj(vec![("op", Json::str("status"))]).render_compact(),
            Json::obj(vec![("op", Json::str("shutdown"))]).render_compact(),
        );
        let mut out = Vec::new();
        let summary = serve(&state, Cursor::new(input), &mut out, 2).unwrap();
        assert_eq!(summary.responses, 4);
        assert_eq!(summary.errors, 1);
        assert!(state.stopped());
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 4);
        // Every line is valid compact JSON with a seq.
        for line in &lines {
            let v = Json::parse(line).unwrap();
            assert!(v.get("seq").and_then(Json::as_u64).is_some(), "{line}");
        }
    }
}
