//! `hybridd` — the resident compile service behind `hybridc serve`.
//!
//! The one-shot driver ([`crate::driver`]) compiles a file set and exits;
//! this module keeps the pipeline resident so clients pay tuning cost
//! once and every later identical request is a memory-cache hit. The wire
//! protocol is newline-delimited JSON over stdin/stdout or TCP: one
//! request per line, one compact-JSON response per line (responses may
//! arrive out of request order; match them by `seq`/`id`).
//!
//! ## Requests
//!
//! ```json
//! {"op": "compile", "id": "r1", "path": "examples/stencils/jacobi2d.stencil"}
//! {"op": "compile", "id": "r2", "program": "for (t = 0; ...", "name": "mine",
//!  "device": "nvs5200m", "tune": "simulated", "smoke": true,
//!  "verify": false, "size": [64, 64], "steps": 8, "deadline_ms": 2000}
//! {"op": "compile", "id": "r3", "program": "...",
//!  "device": {"base": "gtx470", "shared_limit": 32768}}
//! {"op": "cancel", "target": "r2"}
//! {"op": "status"}
//! {"op": "shutdown"}
//! ```
//!
//! The envelope is **versioned**: every response starts with `"v": 1`;
//! a request may carry `"v"` and is rejected with a typed
//! `unsupported_version` error when it names any other version.
//!
//! `compile` takes the program inline (`program`, optionally `name`) or
//! by path (`path`), plus per-request overrides of the same options the
//! CLI exposes. `device` is a preset name or an inline device object
//! ([`resolve_device`]) — objects canonicalize by *resolved parameters*,
//! so key order never splits the cache. `deadline_ms` bounds the request
//! (0 = already expired): the pipeline checks the deadline between
//! tuning candidates and pipeline stages and answers a typed
//! `deadline_exceeded` error instead of occupying a worker
//! indefinitely. The response is exactly the per-stencil object of
//! `hybridc --report` ([`crate::driver::outcome_json`]) with `v`, `seq`
//! (the server's input line number) and the echoed `id` prepended —
//! compile results are bit-identical to a one-shot run with the same
//! options.
//!
//! `cancel` raises the cooperative cancel flag of the in-flight compile
//! whose `id` equals `target` (response: `found` true/false). `status`
//! reports liveness and cache counters (every field documented in the
//! README protocol table); `shutdown` stops the serving loop after
//! draining in-flight work.
//!
//! ## Isolation and caching
//!
//! Requests fan out across a worker pool. Every request is handled under
//! a [`catch_unwind`] boundary *on top of* the driver's typed
//! [`DriverError`](crate::driver::DriverError)s, so no input — malformed
//! JSON, unparseable DSL,
//! budget-infeasible tile requests, conflict-inducing schedules, or an
//! outright pipeline bug — can take the service down: each failure is
//! that request's error response. Plans are shared through the
//! single-flight in-memory [`MemCache`] layered above the on-disk cache,
//! so N concurrent clients compiling the same stencil cost one tuning
//! sweep.

use std::collections::{BinaryHeap, HashMap};
use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gpu_codegen::{BackendKind, SmemStrategy};
use gpusim::DeviceConfig;
use hybrid_tiling::cancel::{saturating_deadline, CancelToken};

use crate::driver::{
    compile_file_with, compile_source_with, device_fingerprint, outcome_json,
    sanitize_program_name, DriverConfig, MemCache, TuneMode,
};
use crate::json::Json;

/// The protocol version this service speaks. Responses always carry
/// `"v": 1`; requests may omit `v` (treated as version 1) or must match.
pub const PROTOCOL_VERSION: u64 = 1;

/// How a serving loop orders queued requests across its worker pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict arrival order (the pre-EDF behavior).
    Fifo,
    /// Earliest-deadline-first: requests carrying a `deadline_ms` run
    /// before requests without one; among deadlines, the earliest
    /// arrival-anchored deadline wins; requests without deadlines keep
    /// FIFO order among themselves.
    #[default]
    Edf,
}

impl SchedPolicy {
    /// Parses a `--sched` value.
    pub fn parse(name: &str) -> Result<SchedPolicy, String> {
        match name {
            "fifo" => Ok(SchedPolicy::Fifo),
            "edf" => Ok(SchedPolicy::Edf),
            other => Err(format!("unknown scheduling policy {other:?} (fifo | edf)")),
        }
    }

    /// The wire name (`"fifo"` | `"edf"`).
    pub fn name(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Edf => "edf",
        }
    }
}

/// Scheduling and transport counters of one service, shared by every
/// serving loop (stdin, TCP connections, unix connections) that drives
/// the same handler — the `status`/`metrics` ops and the Prometheus
/// exporter all read one set. Owned by [`ServeState`] and by
/// [`FleetRouter`](crate::fleet::FleetRouter) (whichever is the loop's
/// handler records here).
#[derive(Debug)]
pub struct ServeStats {
    /// 0 = fifo, 1 = edf; the most recently started loop's policy.
    policy: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    deadline_misses: AtomicU64,
    edf_promotions: AtomicU64,
    auth_ok: AtomicU64,
    auth_failures: AtomicU64,
    auth_rejected: AtomicU64,
}

impl Default for ServeStats {
    fn default() -> ServeStats {
        ServeStats {
            policy: AtomicU64::new(1),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            edf_promotions: AtomicU64::new(0),
            auth_ok: AtomicU64::new(0),
            auth_failures: AtomicU64::new(0),
            auth_rejected: AtomicU64::new(0),
        }
    }
}

impl ServeStats {
    /// The scheduling policy of the most recently started serving loop.
    pub fn policy(&self) -> SchedPolicy {
        match self.policy.load(Ordering::Relaxed) {
            0 => SchedPolicy::Fifo,
            _ => SchedPolicy::Edf,
        }
    }

    pub(crate) fn set_policy(&self, policy: SchedPolicy) {
        let v = match policy {
            SchedPolicy::Fifo => 0,
            SchedPolicy::Edf => 1,
        };
        self.policy.store(v, Ordering::Relaxed);
    }

    /// Requests currently queued (enqueued, not yet picked up).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// High-water mark of [`ServeStats::queue_depth`].
    pub fn queue_depth_peak(&self) -> u64 {
        self.queue_depth_peak.load(Ordering::Relaxed)
    }

    /// Responses produced after the request's arrival-anchored deadline.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses.load(Ordering::Relaxed)
    }

    /// Times an EDF pop ran a deadline request ahead of an
    /// earlier-arrived request still waiting in the queue.
    pub fn edf_promotions(&self) -> u64 {
        self.edf_promotions.load(Ordering::Relaxed)
    }

    /// Successful `hello` handshakes.
    pub fn auth_ok(&self) -> u64 {
        self.auth_ok.load(Ordering::Relaxed)
    }

    /// `hello` handshakes with a wrong secret.
    pub fn auth_failures(&self) -> u64 {
        self.auth_failures.load(Ordering::Relaxed)
    }

    /// Non-`hello` ops rejected because the connection never
    /// authenticated (`auth_required` errors).
    pub fn auth_rejected(&self) -> u64 {
        self.auth_rejected.load(Ordering::Relaxed)
    }

    fn note_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    fn note_deadline_miss(&self) {
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
    }

    fn note_edf_promotion(&self) {
        self.edf_promotions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_auth_ok(&self) {
        self.auth_ok.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_auth_failure(&self) {
        self.auth_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_auth_rejected(&self) {
        self.auth_rejected.fetch_add(1, Ordering::Relaxed);
    }
}

/// Service-level knobs shared by `hybridd` and the fleet layer.
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// Byte cap for the in-memory plan cache (`--mem-cap-bytes`);
    /// `None` = unbounded (the PR-4 behavior).
    pub mem_cap_bytes: Option<u64>,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms` (`--default-deadline-ms`); `None` = no default.
    pub default_deadline_ms: Option<u64>,
}

/// Shared state of one `hybridd` instance: the base configuration, the
/// in-memory plan cache, the in-flight request registry (for `cancel`),
/// and liveness counters. One instance serves any number of
/// connections/loops concurrently; in a fleet it is one per-device
/// member.
pub struct ServeState {
    cfg: DriverConfig,
    opts: ServeOptions,
    mem: MemCache,
    started: Instant,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    /// Compiles where a cross-device warm hint matched the program and
    /// was re-verified (the warm-start path ran at all).
    warm_starts: AtomicU64,
    /// Compiles whose winning plan came from a warm hint.
    warm_start_hits: AtomicU64,
    /// Total scorer invocations across fresh tunes (simulator runs in
    /// simulated mode), including warm-hint re-verifications.
    tune_simulations: AtomicU64,
    /// Proxy-fidelity scorer invocations across fresh tunes (the
    /// successive-halving ladder's cheap round).
    proxy_simulations: AtomicU64,
    /// Wall-clock milliseconds spent in tuning sweeps across fresh
    /// compiles (0 for cache hits, which never tune).
    tune_wall_ms: AtomicU64,
    /// Successful compiles per emission backend, indexed by
    /// [`BackendKind::index`].
    backend_compiles: [AtomicU64; 4],
    stop: AtomicBool,
    /// Compiles currently executing, keyed by the request's rendered
    /// `id`: the `cancel` op raises the flags and the workers stop at
    /// their next cooperative check. A multiset (ids are client-chosen,
    /// so concurrent duplicates are legal): every compile under one id
    /// registers its own flag, `cancel` raises them all, and each
    /// guard's drop removes exactly its own flag.
    inflight: Mutex<HashMap<String, Vec<Arc<std::sync::atomic::AtomicBool>>>>,
    /// Scheduling/auth counters of the loops driving this service.
    stats: ServeStats,
}

/// Removes an in-flight registry entry when the compile finishes — on
/// the success path *and* when a panic unwinds through the handler (the
/// catch_unwind boundary sits above this guard). Removal is by flag
/// identity, so a concurrent compile sharing the id keeps its own
/// registration.
struct InflightGuard<'a> {
    state: &'a ServeState,
    key: Option<(String, Arc<std::sync::atomic::AtomicBool>)>,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Some((key, flag)) = &self.key {
            if let Ok(mut map) = self.state.inflight.lock() {
                if let Some(flags) = map.get_mut(key) {
                    flags.retain(|f| !Arc::ptr_eq(f, flag));
                    if flags.is_empty() {
                        map.remove(key);
                    }
                }
            }
        }
    }
}

impl ServeState {
    /// A fresh service around `cfg` (the per-request defaults; requests
    /// may override device, tuning, verification and workload) with
    /// default [`ServeOptions`].
    pub fn new(cfg: DriverConfig) -> ServeState {
        ServeState::with_options(cfg, ServeOptions::default())
    }

    /// [`ServeState::new`] with explicit service options (cache cap,
    /// default deadline).
    pub fn with_options(cfg: DriverConfig, opts: ServeOptions) -> ServeState {
        let mem = MemCache::with_config(16, opts.mem_cap_bytes);
        ServeState {
            cfg,
            opts,
            mem,
            started: Instant::now(),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            warm_start_hits: AtomicU64::new(0),
            tune_simulations: AtomicU64::new(0),
            proxy_simulations: AtomicU64::new(0),
            tune_wall_ms: AtomicU64::new(0),
            backend_compiles: std::array::from_fn(|_| AtomicU64::new(0)),
            stop: AtomicBool::new(false),
            inflight: Mutex::new(HashMap::new()),
            stats: ServeStats::default(),
        }
    }

    /// The scheduling/auth counters of this service's loops.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The shared in-memory plan cache.
    pub fn mem(&self) -> &MemCache {
        &self.mem
    }

    /// The base driver configuration (the per-request defaults).
    pub fn cfg(&self) -> &DriverConfig {
        &self.cfg
    }

    /// Requests the serving loops to stop (used by the fleet router's
    /// shutdown broadcast).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// True once a `shutdown` request was served.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests handled so far (including failed ones).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered with a non-error status.
    pub fn ok_count(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// Requests answered with `"status": "error"`.
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Panics contained at the request boundary.
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Compiles that re-verified at least one cross-device warm hint.
    pub fn warm_starts(&self) -> u64 {
        self.warm_starts.load(Ordering::Relaxed)
    }

    /// Compiles whose winning plan came from a warm hint.
    pub fn warm_start_hits(&self) -> u64 {
        self.warm_start_hits.load(Ordering::Relaxed)
    }

    /// Total tuning scorer invocations (simulator runs in simulated
    /// mode) across this service's fresh compiles, warm-hint
    /// re-verifications included.
    pub fn tune_simulations(&self) -> u64 {
        self.tune_simulations.load(Ordering::Relaxed)
    }

    /// Proxy-fidelity scorer invocations across this service's fresh
    /// compiles (the successive-halving ladder's cheap round).
    pub fn proxy_simulations(&self) -> u64 {
        self.proxy_simulations.load(Ordering::Relaxed)
    }

    /// Wall-clock milliseconds spent in tuning sweeps across this
    /// service's fresh compiles (cache hits contribute 0).
    pub fn tune_wall_ms(&self) -> u64 {
        self.tune_wall_ms.load(Ordering::Relaxed)
    }

    /// Successful compiles per emission backend, in
    /// [`BackendKind::ALL`] order.
    pub fn backend_compiles(&self) -> [u64; 4] {
        std::array::from_fn(|i| self.backend_compiles[i].load(Ordering::Relaxed))
    }

    /// Raises the cancel flags of every in-flight compile registered
    /// under `id` (the rendered request id — duplicates are all
    /// cancelled). Returns whether any was found — `false` means none
    /// exists or all already finished.
    pub fn cancel(&self, id: &str) -> bool {
        match self.inflight.lock() {
            Ok(map) => match map.get(id) {
                Some(flags) => {
                    for flag in flags {
                        flag.store(true, Ordering::SeqCst);
                    }
                    !flags.is_empty()
                }
                None => false,
            },
            Err(_) => false,
        }
    }

    /// Handles one wire line. Returns `None` for blank lines; every other
    /// input — including unparseable JSON and panicking pipeline stages —
    /// produces a response object. This is the per-request abort barrier:
    /// it never panics and never exits.
    pub fn handle_line(&self, seq: u64, line: &str) -> Option<Json> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(seq, line)));
        let response = outcome.unwrap_or_else(|payload| {
            self.panics.fetch_add(1, Ordering::Relaxed);
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_string()
            };
            error_response(seq, None, "internal", &format!("request panicked: {msg}"))
        });
        if response.get("status").and_then(Json::as_str) == Some("error") {
            self.errors.fetch_add(1, Ordering::Relaxed);
        } else {
            self.ok.fetch_add(1, Ordering::Relaxed);
        }
        Some(response)
    }

    fn dispatch(&self, seq: u64, line: &str) -> Json {
        let req = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                return error_response(seq, None, "bad_request", &format!("malformed JSON: {e}"))
            }
        };
        let id = req.get("id").cloned();
        if let Some(resp) = check_version(seq, id.as_ref(), &req) {
            return resp;
        }
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op,
            None => {
                return error_response(
                    seq,
                    id.as_ref(),
                    "bad_request",
                    "missing \"op\" (compile | status | cancel | shutdown)",
                )
            }
        };
        match op {
            "compile" => self.handle_compile(seq, id.as_ref(), &req),
            "status" => self.status_response(seq, id.as_ref()),
            "metrics" => metrics_response(seq, id.as_ref(), crate::metrics::render_state(self)),
            "cancel" => self.handle_cancel(seq, id.as_ref(), &req),
            "shutdown" => {
                self.stop.store(true, Ordering::SeqCst);
                with_envelope(
                    seq,
                    id.as_ref(),
                    Json::obj(vec![("status", Json::str("stopping"))]),
                )
            }
            other => error_response(
                seq,
                id.as_ref(),
                "bad_request",
                &format!("unknown op {other:?} (compile | status | metrics | cancel | shutdown)"),
            ),
        }
    }

    /// The `cancel` op: `{"op":"cancel","target":"<id of an in-flight
    /// compile>"}`. Raises the target's cooperative cancel flag; the
    /// response's `found` reports whether such a compile was in flight.
    fn handle_cancel(&self, seq: u64, id: Option<&Json>, req: &Json) -> Json {
        cancel_response(seq, id, req, |key| self.cancel(key))
    }

    fn handle_compile(&self, seq: u64, id: Option<&Json>, req: &Json) -> Json {
        let mut cfg = match request_config(&self.cfg, req) {
            Ok(cfg) => cfg,
            Err(e) => return error_response(seq, id, e.kind(), e.message()),
        };
        // Deadline: the request's own deadline_ms, else the service
        // default. The clock starts when the worker picks the request up.
        let deadline_ms = match parse_deadline_ms(req) {
            Ok(own) => own.or(self.opts.default_deadline_ms),
            Err(msg) => return error_response(seq, id, "bad_request", &msg),
        };
        let source = match compile_source(req) {
            Ok(source) => source,
            Err(msg) => return error_response(seq, id, "bad_request", &msg),
        };
        // Cancellation: requests with an id register a shared flag so a
        // later `cancel` op can stop them cooperatively.
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut token = CancelToken::with_flag(flag.clone());
        if let Some(ms) = deadline_ms {
            // Saturating: a client-supplied u64::MAX must clamp to a
            // far-future deadline, not panic `Instant + Duration`.
            token = token.and_deadline_after(Duration::from_millis(ms));
        }
        let _inflight = InflightGuard {
            state: self,
            key: id.map(|id| {
                let key = id.render_compact();
                if let Ok(mut map) = self.inflight.lock() {
                    map.entry(key.clone()).or_default().push(flag.clone());
                }
                (key, flag.clone())
            }),
        };
        cfg.cancel = token;
        let (source_label, result) = match source {
            CompileSource::Inline { name, text } => {
                let label = PathBuf::from(format!("<request:{name}>"));
                let result = compile_source_with(&name, &text, &label, &cfg, Some(&self.mem));
                (label.display().to_string(), result)
            }
            CompileSource::File(p) => {
                let result = compile_file_with(Path::new(&p), &cfg, Some(&self.mem));
                (p, result)
            }
        };
        if let Ok(o) = &result {
            self.backend_compiles[o.backend.index()].fetch_add(1, Ordering::Relaxed);
            if o.warm_start {
                self.warm_starts.fetch_add(1, Ordering::Relaxed);
            }
            if o.warm_start_hit {
                self.warm_start_hits.fetch_add(1, Ordering::Relaxed);
            }
            self.tune_simulations
                .fetch_add(o.simulated as u64, Ordering::Relaxed);
            self.proxy_simulations
                .fetch_add(o.proxy_simulated as u64, Ordering::Relaxed);
            self.tune_wall_ms
                .fetch_add(o.tune_wall_ms, Ordering::Relaxed);
        }
        with_envelope(seq, id, outcome_json(&source_label, &result))
    }

    /// The status object of this (single-device) service: liveness,
    /// request counters, and the full cache metric set. Used directly by
    /// the `status` op and embedded per device in the fleet's aggregated
    /// status. Every field is documented in the README protocol table.
    pub fn status_payload(&self) -> Json {
        Json::obj(vec![
            ("status", Json::str("alive")),
            (
                "uptime_ms",
                Json::UInt(self.started.elapsed().as_millis() as u64),
            ),
            (
                "requests",
                Json::UInt(self.requests.load(Ordering::Relaxed)),
            ),
            ("ok", Json::UInt(self.ok.load(Ordering::Relaxed))),
            ("errors", Json::UInt(self.errors.load(Ordering::Relaxed))),
            (
                "contained_panics",
                Json::UInt(self.panics.load(Ordering::Relaxed)),
            ),
            ("mem_entries", Json::UInt(self.mem.len() as u64)),
            ("mem_bytes", Json::UInt(self.mem.bytes())),
            (
                "mem_cap_bytes",
                match self.mem.cap_bytes() {
                    Some(cap) => Json::UInt(cap),
                    None => Json::Null,
                },
            ),
            ("mem_lookups", Json::UInt(self.mem.lookups())),
            ("mem_hits", Json::UInt(self.mem.hits())),
            ("mem_misses", Json::UInt(self.mem.misses())),
            ("mem_coalesced", Json::UInt(self.mem.coalesced())),
            ("mem_bypasses", Json::UInt(self.mem.bypasses())),
            ("mem_evictions", Json::UInt(self.mem.evictions())),
            ("mem_rebalances", Json::UInt(self.mem.rebalances())),
            (
                "mem_cancelled_waits",
                Json::UInt(self.mem.cancelled_waits()),
            ),
            (
                "hit_age_p50_ms",
                match self.mem.hit_age_p50_ms() {
                    Some(ms) => Json::UInt(ms),
                    None => Json::Null,
                },
            ),
            (
                "disk_cache",
                match &self.cfg.cache_dir {
                    Some(d) => Json::str(d.display().to_string()),
                    None => Json::Null,
                },
            ),
            ("device", Json::str(self.cfg.device.name.clone())),
            (
                "device_fingerprint",
                Json::str(device_fingerprint(&self.cfg.device)),
            ),
            ("tune", Json::str(self.cfg.tune.name())),
            ("backend", Json::str(self.cfg.backend.name())),
            (
                "backend_compiles",
                backend_compiles_json(self.backend_compiles()),
            ),
            ("top_k", Json::UInt(self.cfg.top_k as u64)),
            ("tune_workers", Json::UInt(self.cfg.tune_workers as u64)),
            ("proxy", Json::Num(self.cfg.proxy)),
            ("warm_starts", Json::UInt(self.warm_starts())),
            ("warm_start_hits", Json::UInt(self.warm_start_hits())),
            ("tune_simulations", Json::UInt(self.tune_simulations())),
            ("proxy_simulations", Json::UInt(self.proxy_simulations())),
            ("tune_wall_ms", Json::UInt(self.tune_wall_ms())),
            (
                "default_deadline_ms",
                match self.opts.default_deadline_ms {
                    Some(ms) => Json::UInt(ms),
                    None => Json::Null,
                },
            ),
            ("sched_policy", Json::str(self.stats.policy().name())),
            ("queue_depth", Json::UInt(self.stats.queue_depth())),
            (
                "queue_depth_peak",
                Json::UInt(self.stats.queue_depth_peak()),
            ),
            ("deadline_misses", Json::UInt(self.stats.deadline_misses())),
            ("edf_promotions", Json::UInt(self.stats.edf_promotions())),
            ("auth_ok", Json::UInt(self.stats.auth_ok())),
            ("auth_failures", Json::UInt(self.stats.auth_failures())),
            ("auth_rejected", Json::UInt(self.stats.auth_rejected())),
        ])
    }

    /// Time since this service was created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    fn status_response(&self, seq: u64, id: Option<&Json>) -> Json {
        with_envelope(seq, id, self.status_payload())
    }
}

/// The per-backend successful-compile counters as a JSON object keyed
/// by backend name, in [`BackendKind::ALL`] order. Shared by the
/// single-device status payload and the fleet's aggregated one.
pub(crate) fn backend_compiles_json(counts: [u64; 4]) -> Json {
    Json::Obj(
        BackendKind::ALL
            .into_iter()
            .map(|kind| (kind.name().to_string(), Json::UInt(counts[kind.index()])))
            .collect(),
    )
}

/// A typed request-validation failure: the serve protocol distinguishes
/// a malformed request (`bad_request`) from a well-formed one naming an
/// emission backend this service does not know
/// (`unsupported_backend`) — clients probing for backend support need
/// the distinction to fall back rather than fix their request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum RequestError {
    /// Malformed or invalid request field.
    Bad(String),
    /// Unknown `"backend"` value.
    UnsupportedBackend(String),
}

impl RequestError {
    /// The protocol `error_kind` discriminant.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            RequestError::Bad(_) => "bad_request",
            RequestError::UnsupportedBackend(_) => "unsupported_backend",
        }
    }

    /// Human-readable description for the `error` field.
    pub(crate) fn message(&self) -> &str {
        match self {
            RequestError::Bad(m) | RequestError::UnsupportedBackend(m) => m,
        }
    }
}

impl From<String> for RequestError {
    fn from(m: String) -> RequestError {
        RequestError::Bad(m)
    }
}

impl From<&str> for RequestError {
    fn from(m: &str) -> RequestError {
        RequestError::Bad(m.to_string())
    }
}

/// Builds the per-request [`DriverConfig`] from `base` plus the
/// request's overrides, or a typed error. Shared by the single-device
/// compile path and the fleet router's request validation, so the two
/// can never diverge.
pub(crate) fn request_config(
    base: &DriverConfig,
    req: &Json,
) -> Result<DriverConfig, RequestError> {
    let mut cfg = base.clone();
    if let Some(d) = req.get("device") {
        cfg.device = resolve_device(d, &base.device)?;
    }
    if let Some(b) = req.get("backend") {
        let name = b.as_str().ok_or("\"backend\" must be a string")?;
        match BackendKind::parse(name) {
            Some(kind) => {
                cfg.backend = kind;
                // Each backend defaults to the best ladder step it can
                // lower (WGSL clamps (f) to (e)); an explicit "smem"
                // field below can still override it.
                cfg.opts = kind.backend().default_options();
            }
            None => {
                return Err(RequestError::UnsupportedBackend(format!(
                    "unknown backend {name:?} (cuda | wgsl | hip | cpu)"
                )))
            }
        }
    }
    if let Some(s) = req.get("smem") {
        let name = s.as_str().ok_or("\"smem\" must be a string")?;
        cfg.opts.smem = SmemStrategy::parse(name).ok_or_else(|| {
            RequestError::Bad(format!(
                "unknown smem strategy {name:?} (global_only | copy_in_out | \
                 interleaved_copy_out | reuse_static | reuse_dynamic)"
            ))
        })?;
    }
    if let Some(t) = req.get("tune") {
        let name = t.as_str().ok_or("\"tune\" must be a string")?;
        cfg.tune = match name {
            "static" => TuneMode::Static,
            "simulated" => TuneMode::Simulated,
            other => {
                return Err(RequestError::Bad(format!(
                    "unknown tune mode {other:?} (static | simulated)"
                )))
            }
        };
    }
    if let Some(s) = req.get("smoke") {
        cfg.smoke = s.as_bool().ok_or("\"smoke\" must be a boolean")?;
    }
    if let Some(v) = req.get("verify") {
        cfg.verify = v.as_bool().ok_or("\"verify\" must be a boolean")?;
    }
    let size = match req.get("size") {
        Some(s) => {
            let arr = s.as_arr().ok_or("\"size\" must be an array of integers")?;
            let dims: Option<Vec<usize>> = arr
                .iter()
                .map(|x| x.as_u64().and_then(|v| usize::try_from(v).ok()))
                .map(|v| v.filter(|&d| d > 0))
                .collect();
            Some(dims.ok_or("\"size\" entries must be positive integers")?)
        }
        None => None,
    };
    let steps = match req.get("steps") {
        Some(s) => Some(
            s.as_u64()
                .and_then(|v| usize::try_from(v).ok())
                .filter(|&v| v > 0)
                .ok_or("\"steps\" must be a positive integer")?,
        ),
        None => None,
    };
    match (size, steps) {
        (Some(d), Some(s)) => cfg.workload = Some((d, s)),
        (None, None) => {}
        _ => {
            return Err(RequestError::from(
                "\"size\" and \"steps\" must be given together",
            ))
        }
    }
    if let Some(k) = req.get("top_k") {
        cfg.top_k = k
            .as_u64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or("\"top_k\" must be a non-negative integer")?;
    }
    if let Some(w) = req.get("tune_workers") {
        cfg.tune_workers = w
            .as_u64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or("\"tune_workers\" must be a non-negative integer (0 = auto)")?;
    }
    if let Some(p) = req.get("proxy") {
        let frac = p.as_f64().ok_or("\"proxy\" must be a number")?;
        if !(frac > 0.0 && frac <= 1.0) {
            return Err(RequestError::Bad(format!(
                "\"proxy\" must be in (0, 1] (1 disables the ladder), got {frac}"
            )));
        }
        cfg.proxy = frac;
    }
    Ok(cfg)
}

/// The request's own `deadline_ms`, or a typed error description.
fn parse_deadline_ms(req: &Json) -> Result<Option<u64>, String> {
    match req.get("deadline_ms") {
        Some(d) => d
            .as_u64()
            .map(Some)
            .ok_or_else(|| "\"deadline_ms\" must be a non-negative integer".to_string()),
        None => Ok(None),
    }
}

/// How a compile request names its program.
enum CompileSource {
    /// Inline DSL text under a (sanitized) name.
    Inline { name: String, text: String },
    /// A `.stencil` file path.
    File(String),
}

/// Resolves a compile request's `program`/`path`/`name` fields, or a
/// typed error description.
fn compile_source(req: &Json) -> Result<CompileSource, String> {
    let program = req.get("program").map(|p| p.as_str());
    let path = req.get("path").map(|p| p.as_str());
    match (program, path) {
        (Some(Some(text)), None) => {
            let name = match req.get("name") {
                None => "stencil".to_string(),
                Some(n) => sanitize_program_name(n.as_str().ok_or("\"name\" must be a string")?),
            };
            Ok(CompileSource::Inline {
                name,
                text: text.to_string(),
            })
        }
        (None, Some(Some(p))) => Ok(CompileSource::File(p.to_string())),
        (Some(None), _) => Err("\"program\" must be a string".to_string()),
        (_, Some(None)) => Err("\"path\" must be a string".to_string()),
        (Some(_), Some(_)) => {
            Err("give exactly one of \"program\" or \"path\", not both".to_string())
        }
        (None, None) => {
            Err("compile needs \"program\" (inline DSL) or \"path\" (a .stencil file)".to_string())
        }
    }
}

/// Full shape validation of a compile request against `base`, without
/// running anything: exactly the checks [`ServeState`]'s compile path
/// performs before real work starts. The fleet router runs this before
/// spending a device slot on an unknown device, so garbage requests can
/// never exhaust `--max-devices`.
pub(crate) fn validate_compile_request(
    base: &DriverConfig,
    req: &Json,
) -> Result<(), RequestError> {
    request_config(base, req)?;
    parse_deadline_ms(req)?;
    compile_source(req)?;
    Ok(())
}

/// Builds the `cancel` op's response: validates `target`, asks
/// `cancel_found` to raise the flags for the rendered target key, and
/// reports `found`. Shared by [`ServeState`] and the fleet router so the
/// two cancel paths cannot diverge.
pub(crate) fn cancel_response(
    seq: u64,
    id: Option<&Json>,
    req: &Json,
    cancel_found: impl FnOnce(&str) -> bool,
) -> Json {
    let Some(target) = req.get("target") else {
        return error_response(
            seq,
            id,
            "bad_request",
            "cancel needs \"target\" (the id of the compile to cancel)",
        );
    };
    let found = cancel_found(&target.render_compact());
    with_envelope(
        seq,
        id,
        Json::obj(vec![
            ("status", Json::str("ok")),
            ("op", Json::str("cancel")),
            ("target", target.clone()),
            ("found", Json::Bool(found)),
        ]),
    )
}

/// Rejects requests carrying an unknown protocol version: a `"v"` field
/// other than [`PROTOCOL_VERSION`] gets a typed `unsupported_version`
/// error (requests without `v` are treated as version 1). Returns `None`
/// when the request may proceed.
pub(crate) fn check_version(seq: u64, id: Option<&Json>, req: &Json) -> Option<Json> {
    let v = req.get("v")?;
    if v.as_u64() == Some(PROTOCOL_VERSION) {
        return None;
    }
    Some(error_response(
        seq,
        id,
        "unsupported_version",
        &format!(
            "protocol version {} is not supported (this service speaks v{PROTOCOL_VERSION})",
            v.render_compact()
        ),
    ))
}

/// Resolves a request's `device` field: a preset name (`"gtx470"` |
/// `"nvs5200m"`), or a device object — `{"base": "gtx470", "sms": 8,
/// ...}` — overriding any architectural parameter of the base preset.
/// An object without `"base"` starts from `default` (the service's
/// configured device), consistent with requests that omit `device`
/// entirely. Because the object is resolved into a [`DeviceConfig`]
/// before fingerprinting, logically identical objects with their keys
/// in any order canonicalize to the same device (and therefore the same
/// cache shard and fleet member).
pub fn resolve_device(v: &Json, default: &DeviceConfig) -> Result<DeviceConfig, String> {
    fn preset(name: &str) -> Result<DeviceConfig, String> {
        match name {
            "gtx470" => Ok(DeviceConfig::gtx470()),
            "nvs5200m" => Ok(DeviceConfig::nvs5200m()),
            other => Err(format!("unknown device {other:?} (gtx470 | nvs5200m)")),
        }
    }
    match v {
        Json::Str(name) => preset(name),
        Json::Obj(pairs) => {
            let mut device = match v.get("base") {
                Some(b) => preset(b.as_str().ok_or("\"base\" must be a device name")?)?,
                None => default.clone(),
            };
            for (key, value) in pairs {
                let bad = |what: &str| format!("device field {key:?} must be {what}");
                match key.as_str() {
                    "base" => {}
                    "name" => {
                        device.name = value.as_str().ok_or_else(|| bad("a string"))?.to_string()
                    }
                    "vendor" => {
                        device.vendor = value.as_str().ok_or_else(|| bad("a string"))?.to_string()
                    }
                    "sms" => {
                        device.sms = value
                            .as_u64()
                            .and_then(|x| u32::try_from(x).ok())
                            .filter(|&x| x > 0)
                            .ok_or_else(|| bad("a positive integer"))?
                    }
                    "cores_per_sm" => {
                        device.cores_per_sm = value
                            .as_u64()
                            .and_then(|x| u32::try_from(x).ok())
                            .filter(|&x| x > 0)
                            .ok_or_else(|| bad("a positive integer"))?
                    }
                    "clock_ghz" => {
                        device.clock_ghz = value
                            .as_f64()
                            .filter(|&x| x > 0.0)
                            .ok_or_else(|| bad("a positive number"))?
                    }
                    "dram_gbps" => {
                        device.dram_gbps = value
                            .as_f64()
                            .filter(|&x| x > 0.0)
                            .ok_or_else(|| bad("a positive number"))?
                    }
                    "l2_gbps" => {
                        device.l2_gbps = value
                            .as_f64()
                            .filter(|&x| x > 0.0)
                            .ok_or_else(|| bad("a positive number"))?
                    }
                    "l2_bytes" => {
                        device.l2_bytes = value
                            .as_u64()
                            .and_then(|x| usize::try_from(x).ok())
                            .filter(|&x| x > 0)
                            .ok_or_else(|| bad("a positive integer"))?
                    }
                    "shared_limit" => {
                        device.shared_limit = value
                            .as_u64()
                            .and_then(|x| usize::try_from(x).ok())
                            .filter(|&x| x > 0)
                            .ok_or_else(|| bad("a positive integer"))?
                    }
                    "launch_overhead_s" => {
                        device.launch_overhead_s = value
                            .as_f64()
                            .filter(|&x| x >= 0.0)
                            .ok_or_else(|| bad("a non-negative number"))?
                    }
                    other => {
                        return Err(format!(
                            "unknown device field {other:?} (base | name | vendor | sms | \
                             cores_per_sm | clock_ghz | dram_gbps | l2_gbps | l2_bytes | \
                             shared_limit | launch_overhead_s)"
                        ))
                    }
                }
            }
            Ok(device)
        }
        _ => Err("\"device\" must be a preset name or a device object".to_string()),
    }
}

/// Prepends the response envelope (`v`, `seq`, echoed `id`) to a
/// payload object.
pub(crate) fn with_envelope(seq: u64, id: Option<&Json>, payload: Json) -> Json {
    let mut pairs = vec![
        ("v".to_string(), Json::UInt(PROTOCOL_VERSION)),
        ("seq".to_string(), Json::UInt(seq)),
    ];
    if let Some(id) = id {
        pairs.push(("id".to_string(), id.clone()));
    }
    if let Json::Obj(rest) = payload {
        pairs.extend(rest);
    } else {
        pairs.push(("result".to_string(), payload));
    }
    Json::Obj(pairs)
}

/// The `metrics` op's response: the Prometheus exposition text as one
/// JSON string field (scrapers that cannot speak the protocol use the
/// `--metrics` HTTP listener instead). Shared by the single-device and
/// fleet dispatchers.
pub(crate) fn metrics_response(seq: u64, id: Option<&Json>, text: String) -> Json {
    with_envelope(
        seq,
        id,
        Json::obj(vec![
            ("status", Json::str("ok")),
            ("op", Json::str("metrics")),
            (
                "content_type",
                Json::str("text/plain; version=0.0.4; charset=utf-8"),
            ),
            ("text", Json::Str(text)),
        ]),
    )
}

pub(crate) fn error_response(seq: u64, id: Option<&Json>, kind: &str, message: &str) -> Json {
    with_envelope(
        seq,
        id,
        Json::obj(vec![
            ("status", Json::str("error")),
            ("error_kind", Json::str(kind)),
            ("error", Json::str(message)),
        ]),
    )
}

/// True when `line` is a `shutdown` request *that the handler will
/// honor* — the cheap substring test first, then a real parse so a
/// compile whose program text merely mentions "shutdown" does not end
/// the session. The version gate applies here exactly as in dispatch: a
/// shutdown carrying an unsupported `"v"` is answered with a typed
/// error, so the reader must keep reading.
fn is_shutdown_request(line: &str) -> bool {
    line.contains("shutdown")
        && Json::parse(line.trim())
            .ok()
            .map(|v| {
                v.get("op").and_then(Json::as_str) == Some("shutdown")
                    && v.get("v")
                        .is_none_or(|x| x.as_u64() == Some(PROTOCOL_VERSION))
            })
            .unwrap_or(false)
}

/// Anything that can answer protocol lines: a single-device
/// [`ServeState`] or the multi-device
/// [`FleetRouter`](crate::fleet::FleetRouter). The serving loops
/// ([`serve`], [`serve_tcp`]) are generic over this, so one transport
/// implementation drives both shapes.
pub trait RequestHandler: Sync {
    /// Handles one wire line; `None` for blank lines (see
    /// [`ServeState::handle_line`]).
    fn handle_line(&self, seq: u64, line: &str) -> Option<Json>;
    /// True once a `shutdown` request was served.
    fn stopped(&self) -> bool;
    /// The scheduling/auth counters shared by every loop of this
    /// service; the serving loops record queue depth, deadline misses
    /// and EDF promotions here.
    fn stats(&self) -> &ServeStats;
    /// Every counter of this service rendered in Prometheus text
    /// exposition format (the `metrics` op and the `--metrics` HTTP
    /// listener serve this verbatim).
    fn metrics_text(&self) -> String;
}

impl RequestHandler for ServeState {
    fn handle_line(&self, seq: u64, line: &str) -> Option<Json> {
        ServeState::handle_line(self, seq, line)
    }
    fn stopped(&self) -> bool {
        ServeState::stopped(self)
    }
    fn stats(&self) -> &ServeStats {
        ServeState::stats(self)
    }
    fn metrics_text(&self) -> String {
        crate::metrics::render_state(self)
    }
}

/// Counters of one serving loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Responses written.
    pub responses: u64,
    /// Responses with `"status": "error"`.
    pub errors: u64,
}

/// One queued request: the wire line plus its scheduling key. The
/// `deadline` is **arrival-anchored** (enqueue time + the request's own
/// `deadline_ms`) and is used for queue ordering and miss accounting;
/// the compile itself still anchors its execution deadline at pickup,
/// so queue wait never eats a request's compute budget.
struct Job {
    seq: u64,
    line: String,
    /// Arrival-anchored deadline (miss accounting, both policies).
    deadline: Option<Instant>,
    /// The EDF ordering key: `deadline` under [`SchedPolicy::Edf`],
    /// `None` under FIFO (so ordering degenerates to `seq`).
    edf_key: Option<Instant>,
}

impl Job {
    fn new(seq: u64, line: String, policy: SchedPolicy) -> Job {
        let deadline = arrival_deadline(&line, Instant::now());
        let edf_key = match policy {
            SchedPolicy::Edf => deadline,
            SchedPolicy::Fifo => None,
        };
        Job {
            seq,
            line,
            deadline,
            edf_key,
        }
    }

    /// Min-ordering key: deadline-bearing jobs first (earliest deadline
    /// wins), then arrival order.
    fn rank(&self) -> (bool, Option<Instant>, u64) {
        (self.edf_key.is_none(), self.edf_key, self.seq)
    }
}

impl Ord for Job {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl PartialOrd for Job {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Job {
    fn eq(&self, other: &Self) -> bool {
        self.rank() == other.rank()
    }
}

impl Eq for Job {}

/// The request's own `deadline_ms` anchored at `now`, best-effort: a
/// line that is not valid JSON (or carries no usable `deadline_ms`)
/// simply has no scheduling deadline — dispatch reports its typed error
/// on the worker as usual.
fn arrival_deadline(line: &str, now: Instant) -> Option<Instant> {
    if !line.contains("deadline_ms") {
        return None;
    }
    let ms = Json::parse(line.trim())
        .ok()?
        .get("deadline_ms")?
        .as_u64()?;
    // Saturating: an absurd deadline_ms schedules like "far future"
    // instead of panicking the queueing thread.
    Some(saturating_deadline(now, Duration::from_millis(ms)))
}

/// The worker pool's priority queue: a min-heap over [`Job::rank`]
/// under a mutex + condvar (closed flag included). Replaces the PR-4
/// mpsc channel so the pool can pick the most urgent request instead of
/// the oldest.
#[derive(Default)]
struct JobQueue {
    heap: Mutex<(BinaryHeap<std::cmp::Reverse<Job>>, bool)>,
    cv: Condvar,
}

impl JobQueue {
    /// Enqueues `job`; returns false when the queue mutex is poisoned
    /// (a worker panicked while holding it — unreachable through the
    /// catch_unwind barrier, but never a reason to panic the reader).
    fn push(&self, job: Job, stats: &ServeStats) -> bool {
        let Ok(mut q) = self.heap.lock() else {
            return false;
        };
        q.0.push(std::cmp::Reverse(job));
        stats.note_depth(q.0.len() as u64);
        drop(q);
        self.cv.notify_one();
        true
    }

    /// Closes the queue: pops drain what is left, then return `None`.
    fn close(&self) {
        if let Ok(mut q) = self.heap.lock() {
            q.1 = true;
        }
        self.cv.notify_all();
    }

    /// Blocks for the most urgent job, recording queue depth and EDF
    /// promotions (a deadline job overtaking an earlier arrival still
    /// queued). `None` once the queue is closed and drained.
    fn pop(&self, stats: &ServeStats) -> Option<Job> {
        let mut q = self.heap.lock().ok()?;
        loop {
            if let Some(std::cmp::Reverse(job)) = q.0.pop() {
                stats.note_depth(q.0.len() as u64);
                let overtook =
                    job.edf_key.is_some() && q.0.iter().any(|std::cmp::Reverse(j)| j.seq < job.seq);
                if overtook {
                    stats.note_edf_promotion();
                }
                return Some(job);
            }
            if q.1 {
                return None;
            }
            q = self.cv.wait(q).ok()?;
        }
    }
}

/// Serves newline-delimited requests from `reader`, writing one
/// compact-JSON response line per request to `writer`, fanning requests
/// out across `workers` pool threads under the default
/// [`SchedPolicy::Edf`]. Returns at end of input or after a `shutdown`
/// request; queued requests are drained either way.
///
/// Responses are written as workers finish, so they may be out of request
/// order — clients match on `seq` (input line number, starting at 1) or
/// their own `id` echo.
///
/// # Errors
///
/// Only reader I/O errors are returned; write errors to `writer` are
/// counted but do not stop the loop (a disconnected client must not kill
/// the service for the others).
pub fn serve<H: RequestHandler + ?Sized, R: BufRead, W: Write + Send>(
    state: &H,
    reader: R,
    writer: W,
    workers: usize,
) -> io::Result<ServeSummary> {
    serve_with_policy(state, reader, writer, workers, SchedPolicy::default())
}

/// [`serve`] with an explicit scheduling policy (`--sched fifo|edf`).
pub fn serve_with_policy<H: RequestHandler + ?Sized, R: BufRead, W: Write + Send>(
    state: &H,
    reader: R,
    writer: W,
    workers: usize,
    policy: SchedPolicy,
) -> io::Result<ServeSummary> {
    let workers = workers.max(1);
    let stats = state.stats();
    stats.set_policy(policy);
    let queue = JobQueue::default();
    let writer = Mutex::new(writer);
    let responses = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let mut read_err = None;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    while let Some(job) = queue.pop(stats) {
                        let Some(response) = state.handle_line(job.seq, &job.line) else {
                            continue;
                        };
                        // A response produced after the arrival-anchored
                        // deadline is a miss under either policy — this
                        // is the number the EDF-vs-FIFO load comparison
                        // measures.
                        if job.deadline.is_some_and(|d| Instant::now() > d) {
                            stats.note_deadline_miss();
                        }
                        if response.get("status").and_then(Json::as_str) == Some("error") {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        responses.fetch_add(1, Ordering::Relaxed);
                        let mut line = response.render_compact();
                        line.push('\n');
                        if let Ok(mut w) = writer.lock() {
                            let _ = w.write_all(line.as_bytes());
                            let _ = w.flush();
                        }
                    }
                })
            })
            .collect();

        let mut seq = 0u64;
        for line in reader.lines() {
            match line {
                Ok(line) => {
                    seq += 1;
                    // A `shutdown` line stops this reader *now* — the
                    // blocking read must not have to wait for another
                    // client line (or EOF) to notice the stop flag. The
                    // worker still answers the queued request.
                    let stop_after = is_shutdown_request(&line);
                    if !queue.push(Job::new(seq, line, policy), stats) || stop_after {
                        break;
                    }
                }
                Err(e) => {
                    read_err = Some(e);
                    break;
                }
            }
            if state.stopped() {
                break;
            }
        }
        queue.close();
        for h in handles {
            let _ = h.join();
        }
    });

    match read_err {
        Some(e) => Err(e),
        None => Ok(ServeSummary {
            responses: responses.load(Ordering::Relaxed),
            errors: errors.load(Ordering::Relaxed),
        }),
    }
}

/// Per-connection authentication wrapper: when a shared secret is
/// configured, every op except `hello` is answered with a typed
/// `auth_required` error until this connection's `hello` presented the
/// secret. The TCP transport wraps every connection in one of these;
/// stdin and unix-socket loops trust their transport and skip it.
///
/// `hello` itself is always handled here (never forwarded), so a
/// secret-less listener still answers it idempotently — clients can
/// send the handshake unconditionally.
struct AuthGate<'a, H: RequestHandler + ?Sized> {
    inner: &'a H,
    secret: Option<&'a str>,
    authed: AtomicBool,
}

impl<'a, H: RequestHandler + ?Sized> AuthGate<'a, H> {
    fn new(inner: &'a H, secret: Option<&'a str>) -> AuthGate<'a, H> {
        AuthGate {
            inner,
            // No secret configured: the connection starts authenticated.
            authed: AtomicBool::new(secret.is_none()),
            secret,
        }
    }

    fn handle_hello(&self, seq: u64, id: Option<&Json>, req: &Json) -> Json {
        match self.secret {
            None => {}
            Some(want) => match req.get("secret").and_then(Json::as_str) {
                Some(got) if got == want => {}
                _ => {
                    self.inner.stats().note_auth_failure();
                    return error_response(
                        seq,
                        id,
                        "auth_failed",
                        "hello: wrong or missing \"secret\"",
                    );
                }
            },
        }
        self.authed.store(true, Ordering::SeqCst);
        self.inner.stats().note_auth_ok();
        with_envelope(
            seq,
            id,
            Json::obj(vec![
                ("status", Json::str("ok")),
                ("op", Json::str("hello")),
                ("authenticated", Json::Bool(true)),
            ]),
        )
    }
}

impl<H: RequestHandler + ?Sized> RequestHandler for AuthGate<'_, H> {
    fn handle_line(&self, seq: u64, line: &str) -> Option<Json> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return None;
        }
        let parsed = Json::parse(trimmed).ok();
        let op = parsed
            .as_ref()
            .and_then(|r| r.get("op"))
            .and_then(Json::as_str);
        if op == Some("hello") {
            let req = parsed.as_ref().expect("op implies a parsed request");
            let id = req.get("id").cloned();
            if let Some(resp) = check_version(seq, id.as_ref(), req) {
                return Some(resp);
            }
            return Some(self.handle_hello(seq, id.as_ref(), req));
        }
        if self.authed.load(Ordering::SeqCst) {
            return self.inner.handle_line(seq, line);
        }
        // Unauthenticated and not a hello: typed rejection, and the
        // request never reaches the real handler (malformed JSON
        // included — an anonymous peer learns nothing about the parser).
        self.inner.stats().note_auth_rejected();
        let id = parsed.as_ref().and_then(|r| r.get("id")).cloned();
        Some(error_response(
            seq,
            id.as_ref(),
            "auth_required",
            "this transport requires {\"op\":\"hello\",\"secret\":...} before any other op",
        ))
    }

    fn stopped(&self) -> bool {
        self.inner.stopped()
    }

    fn stats(&self) -> &ServeStats {
        self.inner.stats()
    }

    fn metrics_text(&self) -> String {
        self.inner.metrics_text()
    }
}

/// Serves TCP connections on `listener`, one serving loop per connection,
/// all sharing `state` (and therefore the in-memory plan cache), under
/// the default policy and without authentication. Returns
/// after a `shutdown` request has been served and every live connection
/// drained — idle connections are actively disconnected (socket
/// shutdown) so a blocked read on one client cannot keep the daemon
/// alive. Connection-level I/O errors are per-client; they never stop
/// the listener.
pub fn serve_tcp<H: RequestHandler + ?Sized>(
    state: &H,
    listener: TcpListener,
    workers: usize,
) -> io::Result<()> {
    serve_tcp_with(state, listener, workers, SchedPolicy::default(), None)
}

/// [`serve_tcp`] with an explicit scheduling policy and an optional
/// shared secret. With a secret, every connection must open with
/// `{"op":"hello","secret":"..."}` before any other op (see
/// `AuthGate`); note an unauthenticated `shutdown` line is *rejected*
/// but still ends that one connection's reader — the daemon itself
/// keeps serving.
pub fn serve_tcp_with<H: RequestHandler + ?Sized>(
    state: &H,
    listener: TcpListener,
    workers: usize,
    policy: SchedPolicy,
    secret: Option<&str>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let conns: Mutex<Vec<std::net::TcpStream>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            if state.stopped() {
                // Wake every connection's reader; their serve() loops
                // return on the resulting EOF and the scope joins them.
                if let Ok(conns) = conns.lock() {
                    for c in conns.iter() {
                        let _ = c.shutdown(std::net::Shutdown::Both);
                    }
                }
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(false);
                    if let (Ok(watch), Ok(mut conns)) = (stream.try_clone(), conns.lock()) {
                        conns.push(watch);
                    }
                    scope.spawn(move || {
                        let Ok(read_half) = stream.try_clone() else {
                            return;
                        };
                        let gate = AuthGate::new(state, secret);
                        let _ = serve_with_policy(
                            &gate,
                            io::BufReader::new(read_half),
                            stream,
                            workers,
                            policy,
                        );
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
    })
}

/// Serves unix-socket connections on `listener` — same protocol and
/// shutdown semantics as [`serve_tcp_with`], but **without** the hello
/// handshake: filesystem permissions on the socket path are the trust
/// boundary for local clients.
#[cfg(unix)]
pub fn serve_unix<H: RequestHandler + ?Sized>(
    state: &H,
    listener: std::os::unix::net::UnixListener,
    workers: usize,
    policy: SchedPolicy,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let conns: Mutex<Vec<std::os::unix::net::UnixStream>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            if state.stopped() {
                if let Ok(conns) = conns.lock() {
                    for c in conns.iter() {
                        let _ = c.shutdown(std::net::Shutdown::Both);
                    }
                }
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nonblocking(false);
                    if let (Ok(watch), Ok(mut conns)) = (stream.try_clone(), conns.lock()) {
                        conns.push(watch);
                    }
                    scope.spawn(move || {
                        let Ok(read_half) = stream.try_clone() else {
                            return;
                        };
                        let _ = serve_with_policy(
                            state,
                            io::BufReader::new(read_half),
                            stream,
                            workers,
                            policy,
                        );
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }
    })
}

/// A minimal Prometheus scrape endpoint: answers **every** HTTP request
/// on `listener` with a `200 text/plain` body of
/// [`RequestHandler::metrics_text`] and closes the connection. Returns
/// once the service stops. Request bytes are drained best-effort — the
/// path and method are ignored, which is exactly what a scraper needs
/// and nothing more.
pub fn serve_metrics_http<H: RequestHandler + ?Sized>(
    state: &H,
    listener: TcpListener,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if state.stopped() {
            return Ok(());
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut head = [0u8; 2048];
                let _ = io::Read::read(&mut stream, &mut head);
                let body = state.metrics_text();
                let header = format!(
                    "HTTP/1.1 200 OK\r\n\
                     content-type: text/plain; version=0.0.4; charset=utf-8\r\n\
                     content-length: {}\r\n\
                     connection: close\r\n\r\n",
                    body.len()
                );
                let _ = stream.write_all(header.as_bytes());
                let _ = stream.write_all(body.as_bytes());
                let _ = stream.flush();
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const JACOBI: &str = "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    for (j = 1; j < N-1; j++)\n      A[t+1][i][j] = 0.25f * (A[t][i+1][j] + A[t][i-1][j] + A[t][i][j+1] + A[t][i][j-1]);\n";

    fn test_state(tag: &str) -> ServeState {
        let dir = std::env::temp_dir().join(format!("hybridd_test_{}_{}", std::process::id(), tag));
        let cfg = DriverConfig {
            smoke: true,
            cache_dir: None,
            ..DriverConfig::new(dir)
        };
        ServeState::new(cfg)
    }

    fn compile_req(id: &str, program: &str) -> String {
        Json::obj(vec![
            ("op", Json::str("compile")),
            ("id", Json::str(id)),
            ("name", Json::str(id)),
            ("program", Json::str(program)),
        ])
        .render_compact()
    }

    #[test]
    fn malformed_json_and_bad_ops_get_typed_errors() {
        let state = test_state("bad_ops");
        for (line, want) in [
            ("this is not json", "malformed JSON"),
            ("{\"no\": \"op\"}", "missing \"op\""),
            ("{\"op\": \"frobnicate\"}", "unknown op"),
            ("{\"op\": \"compile\"}", "compile needs"),
            (
                "{\"op\": \"compile\", \"program\": \"x\", \"path\": \"y\"}",
                "exactly one",
            ),
            (
                "{\"op\": \"compile\", \"program\": \"x\", \"size\": [4]}",
                "given together",
            ),
            (
                "{\"op\": \"compile\", \"program\": \"x\", \"device\": \"tpu\"}",
                "unknown device",
            ),
        ] {
            let resp = state.handle_line(1, line).unwrap();
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("error"),
                "{line}"
            );
            let msg = resp.get("error").and_then(Json::as_str).unwrap();
            assert!(msg.contains(want), "{line}: {msg}");
        }
        // Blank lines are ignored, and the service is still serving.
        assert!(state.handle_line(9, "   ").is_none());
        let status = state.handle_line(10, "{\"op\": \"status\"}").unwrap();
        assert_eq!(status.get("status").and_then(Json::as_str), Some("alive"));
        assert_eq!(status.get("errors").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn inline_compile_then_memory_hit() {
        let state = test_state("inline");
        let first = state.handle_line(1, &compile_req("jac", JACOBI)).unwrap();
        assert_eq!(first.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(first.get("id").and_then(Json::as_str), Some("jac"));
        assert_eq!(first.get("seq").and_then(Json::as_u64), Some(1));

        let second = state.handle_line(2, &compile_req("jac", JACOBI)).unwrap();
        assert_eq!(second.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(second.get("cache").and_then(Json::as_str), Some("mem"));
        // Identical plan and metrics, memory-cache provenance aside.
        for key in ["h", "w", "gstencils_per_s", "verified", "fingerprint"] {
            assert_eq!(first.get(key), second.get(key), "{key}");
        }
    }

    #[test]
    fn broken_dsl_and_infeasible_requests_are_per_request_errors() {
        let state = test_state("broken");
        let resp = state
            .handle_line(1, &compile_req("bad", "for (t = 0; t < T; t++) oops"))
            .unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(resp.get("error_kind").and_then(Json::as_str), Some("parse"));

        // Wrong-arity workload for a 2-D program: typed, not fatal.
        let req = Json::obj(vec![
            ("op", Json::str("compile")),
            ("program", Json::str(JACOBI)),
            ("size", Json::Arr(vec![Json::UInt(64)])),
            ("steps", Json::UInt(4)),
        ])
        .render_compact();
        let resp = state.handle_line(2, &req).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            resp.get("error_kind").and_then(Json::as_str),
            Some("unsupported")
        );

        // The service is still alive and compiles fine afterwards.
        let ok = state.handle_line(3, &compile_req("jac", JACOBI)).unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn rejected_version_shutdown_does_not_stop_the_session() {
        // Regression: the reader's shutdown fast-path must apply the
        // same version gate as dispatch — a v:9 shutdown is answered
        // with unsupported_version and the session keeps serving.
        let state = test_state("v9_shutdown");
        let input = "{\"v\":9,\"op\":\"shutdown\"}\n{\"op\":\"status\"}\n";
        let mut out = Vec::new();
        let summary = serve(&state, Cursor::new(input.to_string()), &mut out, 2).unwrap();
        assert_eq!(
            summary.responses, 2,
            "the status after the rejected shutdown must be answered"
        );
        assert_eq!(summary.errors, 1);
        assert!(!state.stopped(), "v:9 shutdown must not stop the service");
        assert!(!is_shutdown_request("{\"v\":9,\"op\":\"shutdown\"}"));
        assert!(is_shutdown_request("{\"v\":1,\"op\":\"shutdown\"}"));
        assert!(is_shutdown_request("{\"op\":\"shutdown\"}"));
    }

    #[test]
    fn device_object_without_base_inherits_the_service_default() {
        // Regression: an object override without "base" must start from
        // the service's configured device (here NVS 5200M), exactly like
        // a request that omits "device" — not silently from gtx470.
        let dir = std::env::temp_dir().join(format!("hybridd_test_{}_objbase", std::process::id()));
        let cfg = DriverConfig {
            smoke: true,
            cache_dir: None,
            device: gpusim::DeviceConfig::nvs5200m(),
            ..DriverConfig::new(dir)
        };
        let state = ServeState::new(cfg);
        let plain = state.handle_line(1, &compile_req("jac", JACOBI)).unwrap();
        assert_eq!(plain.get("status").and_then(Json::as_str), Some("ok"));
        let req = format!(
            "{{\"op\":\"compile\",\"name\":\"jac\",\"program\":{},\"device\":{{}}}}",
            Json::str(JACOBI).render_compact()
        );
        let via_empty_obj = state.handle_line(2, &req).unwrap();
        assert_eq!(
            via_empty_obj.get("fingerprint"),
            plain.get("fingerprint"),
            "an empty device object must resolve to the service's device"
        );
        assert_eq!(
            via_empty_obj.get("cache").and_then(Json::as_str),
            Some("mem")
        );
    }

    #[test]
    fn responses_are_versioned_and_unknown_versions_are_rejected() {
        let state = test_state("version");
        // Every response carries v:1.
        let status = state.handle_line(1, "{\"op\": \"status\"}").unwrap();
        assert_eq!(status.get("v").and_then(Json::as_u64), Some(1));
        // An explicit v:1 request is accepted.
        let ok = state
            .handle_line(2, "{\"v\": 1, \"op\": \"status\"}")
            .unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("alive"));
        // Unknown versions get the typed error, with the envelope.
        for bad in [
            "{\"v\": 2, \"op\": \"status\"}",
            "{\"v\": \"x\", \"op\": \"status\"}",
        ] {
            let resp = state.handle_line(3, bad).unwrap();
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
            assert_eq!(
                resp.get("error_kind").and_then(Json::as_str),
                Some("unsupported_version"),
                "{bad}"
            );
            assert_eq!(resp.get("v").and_then(Json::as_u64), Some(1));
        }
    }

    #[test]
    fn deadline_zero_is_a_typed_deadline_exceeded_error() {
        let state = test_state("deadline");
        let req = Json::obj(vec![
            ("op", Json::str("compile")),
            ("id", Json::str("dl")),
            ("program", Json::str(JACOBI)),
            ("deadline_ms", Json::UInt(0)),
        ])
        .render_compact();
        let resp = state.handle_line(1, &req).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            resp.get("error_kind").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        // The worker survived; the same program compiles without a
        // deadline, and the cancelled attempt left no in-flight marker.
        let ok = state.handle_line(2, &compile_req("jac", JACOBI)).unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
        // Non-integer deadlines are a bad request.
        let resp = state
            .handle_line(
                3,
                "{\"op\":\"compile\",\"program\":\"x\",\"deadline_ms\":\"soon\"}",
            )
            .unwrap();
        assert_eq!(
            resp.get("error").and_then(Json::as_str).unwrap(),
            "\"deadline_ms\" must be a non-negative integer"
        );
    }

    #[test]
    fn default_deadline_applies_to_requests_without_their_own() {
        let dir = std::env::temp_dir().join(format!("hybridd_test_{}_dd", std::process::id()));
        let cfg = DriverConfig {
            smoke: true,
            cache_dir: None,
            ..DriverConfig::new(dir)
        };
        let state = ServeState::with_options(
            cfg,
            ServeOptions {
                mem_cap_bytes: None,
                default_deadline_ms: Some(0),
            },
        );
        let resp = state.handle_line(1, &compile_req("jac", JACOBI)).unwrap();
        assert_eq!(
            resp.get("error_kind").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        // A request can out-vote the default with its own larger budget.
        let req = Json::obj(vec![
            ("op", Json::str("compile")),
            ("program", Json::str(JACOBI)),
            ("deadline_ms", Json::UInt(600_000)),
        ])
        .render_compact();
        let ok = state.handle_line(2, &req).unwrap();
        assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
    }

    #[test]
    fn cancel_op_stops_an_inflight_compile() {
        use std::sync::atomic::AtomicBool;
        // The scorer blocks until the test has issued the cancel, so the
        // sweep's next between-candidate check deterministically sees
        // the raised flag.
        static CANCEL_SENT: AtomicBool = AtomicBool::new(false);
        fn blocking_scorer(_: &hybrid_tiling::TileSizeModel) -> Option<f64> {
            while !CANCEL_SENT.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Some(1.0)
        }
        CANCEL_SENT.store(false, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!("hybridd_test_{}_cancel", std::process::id()));
        let cfg = DriverConfig {
            smoke: true,
            cache_dir: None,
            scorer: Some(blocking_scorer),
            ..DriverConfig::new(dir)
        };
        let state = ServeState::new(cfg);
        let resp = std::thread::scope(|s| {
            let worker = s.spawn(|| {
                state
                    .handle_line(1, &compile_req("victim", JACOBI))
                    .unwrap()
            });
            // Wait until the compile registered itself, then cancel it.
            let found = loop {
                let resp = state
                    .handle_line(2, "{\"op\":\"cancel\",\"id\":\"c\",\"target\":\"victim\"}")
                    .unwrap();
                assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
                if resp.get("found") == Some(&Json::Bool(true)) {
                    break true;
                }
                std::thread::sleep(Duration::from_millis(1));
            };
            assert!(found);
            CANCEL_SENT.store(true, Ordering::SeqCst);
            worker.join().unwrap()
        });
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            resp.get("error_kind").and_then(Json::as_str),
            Some("cancelled")
        );
        // The registry entry is gone: cancelling again finds nothing.
        let again = state
            .handle_line(3, "{\"op\":\"cancel\",\"target\":\"victim\"}")
            .unwrap();
        assert_eq!(again.get("found"), Some(&Json::Bool(false)));
        // Cancel without a target is a bad request.
        let bad = state.handle_line(4, "{\"op\":\"cancel\"}").unwrap();
        assert_eq!(
            bad.get("error_kind").and_then(Json::as_str),
            Some("bad_request")
        );
    }

    #[test]
    fn cancel_reaches_every_concurrent_compile_sharing_an_id() {
        use std::sync::atomic::{AtomicBool, AtomicU64};
        // Regression: ids are client-chosen, so two concurrent compiles
        // may share one. A cancel must stop both, and neither guard's
        // cleanup may deregister the other.
        static ENTERED: AtomicU64 = AtomicU64::new(0);
        static RELEASE: AtomicBool = AtomicBool::new(false);
        fn gate_scorer(_: &hybrid_tiling::TileSizeModel) -> Option<f64> {
            ENTERED.fetch_add(1, Ordering::SeqCst);
            while !RELEASE.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Some(1.0)
        }
        ENTERED.store(0, Ordering::SeqCst);
        RELEASE.store(false, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!("hybridd_test_{}_dup", std::process::id()));
        let cfg = DriverConfig {
            smoke: true,
            cache_dir: None,
            scorer: Some(gate_scorer),
            ..DriverConfig::new(dir)
        };
        let state = ServeState::new(cfg);
        // Two *different* programs (distinct fingerprints — no
        // single-flight interaction), one shared id.
        let heat1d = "for (t = 0; t < T; t++)\n  for (i = 1; i < N-1; i++)\n    A[t+1][i] = 0.25f * (A[t][i-1] + A[t][i+1]);\n";
        let req = |program: &str| {
            Json::obj(vec![
                ("op", Json::str("compile")),
                ("id", Json::str("dup")),
                ("program", Json::str(program)),
            ])
            .render_compact()
        };
        let (a, b) = std::thread::scope(|s| {
            let wa = s.spawn(|| state.handle_line(1, &req(JACOBI)).unwrap());
            let wb = s.spawn(|| state.handle_line(2, &req(heat1d)).unwrap());
            // Both compiles are inside the scorer, so both flags are
            // registered under "dup".
            while ENTERED.load(Ordering::SeqCst) < 2 {
                std::thread::sleep(Duration::from_millis(1));
            }
            let cancel = state
                .handle_line(3, "{\"op\":\"cancel\",\"target\":\"dup\"}")
                .unwrap();
            assert_eq!(cancel.get("found"), Some(&Json::Bool(true)));
            RELEASE.store(true, Ordering::SeqCst);
            (wa.join().unwrap(), wb.join().unwrap())
        });
        for (tag, resp) in [("a", &a), ("b", &b)] {
            assert_eq!(
                resp.get("error_kind").and_then(Json::as_str),
                Some("cancelled"),
                "compile {tag} must be cancelled: {resp:?}"
            );
        }
        // Both guards cleaned up their own registrations.
        let gone = state
            .handle_line(4, "{\"op\":\"cancel\",\"target\":\"dup\"}")
            .unwrap();
        assert_eq!(gone.get("found"), Some(&Json::Bool(false)));
    }

    #[test]
    fn device_objects_canonicalize_regardless_of_key_order() {
        // Satellite regression: logically identical device JSON objects
        // with reordered keys must resolve to the same canonical device
        // fingerprint — same cache shard, same plan, a memory hit on the
        // second request.
        let state = test_state("device_obj");
        let req = |device_json: &str| {
            format!(
                "{{\"op\":\"compile\",\"name\":\"jac\",\"program\":{},\"device\":{}}}",
                Json::str(JACOBI).render_compact(),
                device_json
            )
        };
        let first = state
            .handle_line(1, &req("{\"base\":\"nvs5200m\",\"shared_limit\":32768}"))
            .unwrap();
        assert_eq!(first.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
        let second = state
            .handle_line(2, &req("{\"shared_limit\":32768,\"base\":\"nvs5200m\"}"))
            .unwrap();
        assert_eq!(second.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            second.get("cache").and_then(Json::as_str),
            Some("mem"),
            "reordered device keys must hit the same cache entry"
        );
        assert_eq!(first.get("fingerprint"), second.get("fingerprint"));
        // A *different* shared limit is a different device.
        let third = state
            .handle_line(3, &req("{\"base\":\"nvs5200m\",\"shared_limit\":16384}"))
            .unwrap();
        assert_eq!(third.get("cache").and_then(Json::as_str), Some("miss"));
        // So is a different vendor: cross-vendor devices never share
        // plans even when every numeric parameter matches.
        let amd = state
            .handle_line(
                5,
                &req("{\"base\":\"nvs5200m\",\"shared_limit\":32768,\"vendor\":\"amd\"}"),
            )
            .unwrap();
        assert_eq!(amd.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(amd.get("cache").and_then(Json::as_str), Some("miss"));
        assert_ne!(first.get("fingerprint"), amd.get("fingerprint"));
        // Unknown device fields are typed errors, not silent typos.
        let bad = state.handle_line(4, &req("{\"shred_limit\":1}")).unwrap();
        assert_eq!(
            bad.get("error_kind").and_then(Json::as_str),
            Some("bad_request")
        );
        let msg = bad.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("unknown device field"), "{msg}");
    }

    #[test]
    fn status_reports_the_full_cache_metric_set() {
        let state = test_state("status_fields");
        let _ = state.handle_line(1, &compile_req("jac", JACOBI)).unwrap();
        let _ = state.handle_line(2, &compile_req("jac", JACOBI)).unwrap();
        let status = state.handle_line(3, "{\"op\":\"status\"}").unwrap();
        for key in [
            "uptime_ms",
            "requests",
            "ok",
            "errors",
            "contained_panics",
            "mem_entries",
            "mem_bytes",
            "mem_cap_bytes",
            "mem_lookups",
            "mem_hits",
            "mem_misses",
            "mem_coalesced",
            "mem_bypasses",
            "mem_evictions",
            "mem_rebalances",
            "mem_cancelled_waits",
            "hit_age_p50_ms",
            "disk_cache",
            "device",
            "device_fingerprint",
            "tune",
            "backend",
            "backend_compiles",
            "top_k",
            "tune_workers",
            "proxy",
            "warm_starts",
            "warm_start_hits",
            "tune_simulations",
            "proxy_simulations",
            "tune_wall_ms",
            "default_deadline_ms",
            "sched_policy",
            "queue_depth",
            "queue_depth_peak",
            "deadline_misses",
            "edf_promotions",
            "auth_ok",
            "auth_failures",
            "auth_rejected",
        ] {
            assert!(status.get(key).is_some(), "status must report {key}");
        }
        assert_eq!(status.get("mem_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(status.get("mem_misses").and_then(Json::as_u64), Some(1));
        assert!(status.get("mem_bytes").and_then(Json::as_u64).unwrap() > 0);
        assert!(status
            .get("hit_age_p50_ms")
            .and_then(Json::as_u64)
            .is_some());
    }

    /// A request's `"backend"` field selects the emission backend: the
    /// artifact carries the backend's extension, and the per-backend
    /// compile counters in `status` move accordingly.
    #[test]
    fn backend_request_field_selects_the_emitter() {
        let state = test_state("backend_field");
        let req = |id: &str, backend: &str| {
            Json::obj(vec![
                ("op", Json::str("compile")),
                ("id", Json::str(id)),
                ("name", Json::str(id)),
                ("program", Json::str(JACOBI)),
                ("backend", Json::str(backend)),
            ])
            .render_compact()
        };
        let resp = state.handle_line(1, &req("w", "wgsl")).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(resp.get("backend").and_then(Json::as_str), Some("wgsl"));
        let artifact = resp.get("artifact").and_then(Json::as_str).unwrap();
        assert!(artifact.ends_with(".wgsl"), "{artifact}");
        let resp = state.handle_line(2, &req("c", "cuda")).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let status = state.handle_line(3, "{\"op\":\"status\"}").unwrap();
        let compiles = status.get("backend_compiles").unwrap();
        assert_eq!(compiles.get("cuda").and_then(Json::as_u64), Some(1));
        assert_eq!(compiles.get("wgsl").and_then(Json::as_u64), Some(1));
        assert_eq!(compiles.get("hip").and_then(Json::as_u64), Some(0));
        assert_eq!(compiles.get("cpu").and_then(Json::as_u64), Some(0));
    }

    /// An unknown backend name is its own error kind
    /// (`unsupported_backend`), distinct from plain `bad_request`, so
    /// clients probing for backend support can tell "this service does
    /// not speak WGSL" from "my request was malformed".
    #[test]
    fn unknown_backend_is_a_typed_unsupported_backend_error() {
        let state = test_state("backend_unknown");
        let resp = state
            .handle_line(
                1,
                "{\"op\":\"compile\",\"program\":\"x\",\"backend\":\"metal\"}",
            )
            .unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            resp.get("error_kind").and_then(Json::as_str),
            Some("unsupported_backend")
        );
        let msg = resp.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("metal"), "{msg}");
        assert!(msg.contains("cuda | wgsl | hip | cpu"), "{msg}");
    }

    /// `"smem"` overrides the backend's default strategy. Forcing one
    /// the backend cannot express surfaces the driver's typed
    /// capability rejection; forcing a supported one compiles.
    #[test]
    fn smem_override_hits_the_backend_capability_gate() {
        let state = test_state("backend_smem");
        let req = |id: &str, smem: &str| {
            Json::obj(vec![
                ("op", Json::str("compile")),
                ("id", Json::str(id)),
                ("name", Json::str(id)),
                ("program", Json::str(JACOBI)),
                ("backend", Json::str("wgsl")),
                ("smem", Json::str(smem)),
            ])
            .render_compact()
        };
        // WGSL has no dynamically-addressed workgroup arrays.
        let resp = state.handle_line(1, &req("bad", "reuse_dynamic")).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
        let msg = resp.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("does not support"), "{msg}");
        let resp = state.handle_line(2, &req("ok", "reuse_static")).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        // And a typo'd strategy name is a plain bad_request.
        let resp = state
            .handle_line(3, &req("typo", "reuse_dynamite"))
            .unwrap();
        assert_eq!(
            resp.get("error_kind").and_then(Json::as_str),
            Some("bad_request")
        );
    }

    #[test]
    fn shutdown_stops_the_reader_without_another_line() {
        // The reader must break on the shutdown line itself — a blocked
        // `lines()` call waiting for the next client line would hang the
        // daemon. A reader that never yields another line after shutdown
        // models a client that keeps the connection open: the loop must
        // still return (and answer everything up to the shutdown).
        struct AfterShutdownBlocks {
            fed: Vec<u8>,
            pos: usize,
        }
        impl io::Read for AfterShutdownBlocks {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos >= self.fed.len() {
                    panic!("reader blocked past shutdown: serve() kept reading");
                }
                let n = buf.len().min(self.fed.len() - self.pos);
                buf[..n].copy_from_slice(&self.fed[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let state = test_state("early_shutdown");
        let fed = format!(
            "{}\n{}\n",
            Json::obj(vec![("op", Json::str("status"))]).render_compact(),
            Json::obj(vec![("op", Json::str("shutdown"))]).render_compact(),
        );
        let reader = io::BufReader::new(AfterShutdownBlocks {
            fed: fed.into_bytes(),
            pos: 0,
        });
        let mut out = Vec::new();
        let summary = serve(&state, reader, &mut out, 2).unwrap();
        assert_eq!(summary.responses, 2);
        assert!(state.stopped());
        // A compile request whose *program text* mentions shutdown is not
        // a shutdown.
        assert!(!is_shutdown_request(
            "{\"op\":\"compile\",\"program\":\"// shutdown valve\"}"
        ));
        assert!(is_shutdown_request("  {\"op\": \"shutdown\"} "));
    }

    #[test]
    fn edf_queue_orders_by_deadline_then_arrival() {
        let stats = ServeStats::default();
        let q = JobQueue::default();
        let now = Instant::now();
        let mk = |seq: u64, dl_ms: Option<u64>| {
            let deadline = dl_ms.map(|ms| now + Duration::from_millis(ms));
            Job {
                seq,
                line: String::new(),
                deadline,
                edf_key: deadline,
            }
        };
        // Arrival order: no-deadline, far deadline, near deadline.
        assert!(q.push(mk(1, None), &stats));
        assert!(q.push(mk(2, Some(5000)), &stats));
        assert!(q.push(mk(3, Some(100)), &stats));
        q.close();
        // Pop order: nearest deadline, then farther, then deadline-less.
        assert_eq!(q.pop(&stats).unwrap().seq, 3);
        assert_eq!(q.pop(&stats).unwrap().seq, 2);
        assert_eq!(q.pop(&stats).unwrap().seq, 1);
        assert!(q.pop(&stats).is_none(), "closed and drained");
        // seq 3 and seq 2 each overtook the still-queued seq 1.
        assert_eq!(stats.edf_promotions(), 2);
        assert_eq!(stats.queue_depth_peak(), 3);
        assert_eq!(stats.queue_depth(), 0);
    }

    #[test]
    fn fifo_jobs_ignore_deadlines_and_keep_arrival_order() {
        let stats = ServeStats::default();
        let q = JobQueue::default();
        let line_with_deadline = "{\"op\":\"compile\",\"program\":\"x\",\"deadline_ms\":1}";
        assert!(q.push(
            Job::new(1, "{\"op\":\"status\"}".to_string(), SchedPolicy::Fifo),
            &stats
        ));
        assert!(q.push(
            Job::new(2, line_with_deadline.to_string(), SchedPolicy::Fifo),
            &stats
        ));
        q.close();
        let first = q.pop(&stats).unwrap();
        assert_eq!(first.seq, 1);
        let second = q.pop(&stats).unwrap();
        assert_eq!(second.seq, 2);
        // FIFO still *records* the deadline (miss accounting applies to
        // both policies) — it just never orders by it.
        assert!(second.deadline.is_some());
        assert!(second.edf_key.is_none());
        assert_eq!(stats.edf_promotions(), 0);
        // Under EDF the same line gets a scheduling key.
        let edf = Job::new(3, line_with_deadline.to_string(), SchedPolicy::Edf);
        assert!(edf.edf_key.is_some());
    }

    #[test]
    fn deadline_misses_and_policy_are_tracked_by_the_loop() {
        let state = test_state("edf_stats");
        let input = format!(
            "{}\n{}\n",
            // deadline_ms 0: already expired on arrival — a guaranteed
            // miss whichever worker picks it up.
            "{\"op\":\"compile\",\"program\":\"x\",\"deadline_ms\":0}",
            "{\"op\":\"shutdown\"}",
        );
        let mut out = Vec::new();
        let summary =
            serve_with_policy(&state, Cursor::new(input), &mut out, 2, SchedPolicy::Edf).unwrap();
        assert_eq!(summary.responses, 2);
        assert_eq!(state.stats().deadline_misses(), 1);
        assert_eq!(state.stats().policy(), SchedPolicy::Edf);
        let status = state.status_payload();
        assert_eq!(
            status.get("sched_policy").and_then(Json::as_str),
            Some("edf")
        );
        assert_eq!(
            status.get("deadline_misses").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn auth_gate_rejects_everything_until_hello() {
        let state = test_state("auth");
        let gate = AuthGate::new(&state, Some("s3cret"));
        // Any op (and even malformed JSON) before hello: auth_required.
        for line in [
            "{\"op\":\"status\",\"id\":\"x\"}",
            "{\"op\":\"compile\",\"program\":\"x\"}",
            "not json at all",
        ] {
            let resp = gate.handle_line(1, line).unwrap();
            assert_eq!(
                resp.get("error_kind").and_then(Json::as_str),
                Some("auth_required"),
                "{line}"
            );
        }
        // Wrong secret: typed auth_failed, still locked.
        let bad = gate
            .handle_line(2, "{\"op\":\"hello\",\"secret\":\"wrong\"}")
            .unwrap();
        assert_eq!(
            bad.get("error_kind").and_then(Json::as_str),
            Some("auth_failed")
        );
        // Version gate applies to hello like any other op.
        let v9 = gate
            .handle_line(3, "{\"v\":9,\"op\":\"hello\",\"secret\":\"s3cret\"}")
            .unwrap();
        assert_eq!(
            v9.get("error_kind").and_then(Json::as_str),
            Some("unsupported_version")
        );
        // Right secret: authenticated, and ops flow to the real handler.
        let ok = gate
            .handle_line(4, "{\"op\":\"hello\",\"id\":\"h\",\"secret\":\"s3cret\"}")
            .unwrap();
        assert_eq!(ok.get("authenticated"), Some(&Json::Bool(true)));
        let status = gate.handle_line(5, "{\"op\":\"status\"}").unwrap();
        assert_eq!(status.get("status").and_then(Json::as_str), Some("alive"));
        assert_eq!(state.stats().auth_rejected(), 3);
        assert_eq!(state.stats().auth_failures(), 1);
        assert_eq!(state.stats().auth_ok(), 1);
        // A gate without a secret answers hello idempotently and
        // forwards everything else straight away.
        let open = AuthGate::new(&state, None);
        let hello = open.handle_line(1, "{\"op\":\"hello\"}").unwrap();
        assert_eq!(hello.get("authenticated"), Some(&Json::Bool(true)));
        let status = open.handle_line(2, "{\"op\":\"status\"}").unwrap();
        assert_eq!(status.get("status").and_then(Json::as_str), Some("alive"));
    }

    #[test]
    fn metrics_op_returns_parseable_exposition_text() {
        let state = test_state("metrics_op");
        let _ = state.handle_line(1, &compile_req("jac", JACOBI)).unwrap();
        let resp = state
            .handle_line(2, "{\"op\":\"metrics\",\"id\":\"m\"}")
            .unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let text = resp.get("text").and_then(Json::as_str).unwrap();
        let samples = crate::metrics::parse_exposition(text).unwrap();
        assert!(!samples.is_empty());
        assert!(
            samples
                .iter()
                .any(|(s, v)| s.starts_with("hybrid_requests_total") && *v >= 1.0),
            "metrics must include the request counter"
        );
    }

    #[test]
    fn serve_loop_drains_input_and_honors_shutdown() {
        let state = test_state("loop");
        let input = format!(
            "{}\nnot json\n{}\n{}\n",
            compile_req("a", JACOBI),
            Json::obj(vec![("op", Json::str("status"))]).render_compact(),
            Json::obj(vec![("op", Json::str("shutdown"))]).render_compact(),
        );
        let mut out = Vec::new();
        let summary = serve(&state, Cursor::new(input), &mut out, 2).unwrap();
        assert_eq!(summary.responses, 4);
        assert_eq!(summary.errors, 1);
        assert!(state.stopped());
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 4);
        // Every line is valid compact JSON with a seq.
        for line in &lines {
            let v = Json::parse(line).unwrap();
            assert!(v.get("seq").and_then(Json::as_u64).is_some(), "{line}");
        }
    }
}
