//! Criterion: raw simulator throughput — interpretation rate of memory-
//! and compute-heavy kernels, with the oracle executor for comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_codegen::{generate_hybrid, CodegenOptions, SmemStrategy};
use gpusim::{DeviceConfig, GpuSim};
use hybrid_tiling::TileParams;
use stencil::{gallery, Grid, ReferenceExecutor};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let program = gallery::jacobi2d();
    let dims = [64usize, 64];
    let steps = 8;
    let points = (62 * 62 * steps) as u64;
    g.throughput(Throughput::Elements(points));

    g.bench_function("oracle/jacobi2d_64x64x8", |b| {
        let init = vec![Grid::random(&dims, 3)];
        b.iter(|| {
            let mut ex = ReferenceExecutor::new(&program, &init);
            ex.run(steps);
            ex.field(0).get(&[1, 1])
        })
    });

    for (name, smem) in [
        ("global_only", SmemStrategy::GlobalOnly),
        ("shared_dynamic", SmemStrategy::ReuseDynamic),
    ] {
        g.bench_function(format!("gpusim/jacobi2d_{name}"), |b| {
            let opts = CodegenOptions {
                smem,
                aligned_loads: false,
                unroll: true,
            };
            let plan = generate_hybrid(&program, &TileParams::new(2, &[3, 8]), &dims, steps, opts)
                .unwrap();
            let init = vec![Grid::random(&dims, 3)];
            b.iter(|| {
                let mut sim = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
                sim.run_plan(&plan);
                sim.counters().flops
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
