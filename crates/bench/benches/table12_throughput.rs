//! Criterion: the Table 1/2 measurement pipeline — per-compiler sampled
//! simulation of one stencil on each device. Times the harness itself so
//! regressions in the simulator or code generators surface here; the table
//! *values* are produced by the `table12` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use gpusim::DeviceConfig;
use hybrid_bench::{measure, Compiler};
use stencil::gallery;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table12");
    g.sample_size(10);
    let p2 = gallery::heat2d();
    let p3 = gallery::heat3d();
    for compiler in [
        Compiler::Ppcg,
        Compiler::Par4all,
        Compiler::Overtile,
        Compiler::Hybrid,
    ] {
        g.bench_function(format!("gtx470/heat2d/{}", compiler.name()), |b| {
            b.iter(|| measure(compiler, &p2, &DeviceConfig::gtx470(), &[256, 256], 10, 2))
        });
    }
    g.bench_function("nvs5200m/heat3d/hybrid", |b| {
        b.iter(|| {
            measure(
                Compiler::Hybrid,
                &p3,
                &DeviceConfig::nvs5200m(),
                &[64, 64, 64],
                4,
                2,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
