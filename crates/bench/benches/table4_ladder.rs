//! Criterion: the Table 4/5 optimization-ladder pipeline on heat-3d —
//! generation plus sampled simulation per ladder step.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_codegen::{generate_hybrid, CodegenOptions};
use gpusim::DeviceConfig;
use hybrid_bench::{heat3d_ladder_params, measure_plan};
use stencil::gallery;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_ladder");
    g.sample_size(10);
    let program = gallery::heat3d();
    let params = heat3d_ladder_params();
    let dims = [64usize, 64, 64];
    for (label, opts) in CodegenOptions::ladder() {
        let name = label
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>();
        g.bench_function(format!("heat3d/{name}"), |b| {
            b.iter(|| {
                let plan = generate_hybrid(&program, &params, &dims, 6, opts).unwrap();
                measure_plan(&plan, 0, &program, &DeviceConfig::gtx470(), &dims, 6, 2)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
