//! Criterion: cost of the §3 schedule machinery itself — cone derivation,
//! hexagon construction, full schedule mapping, and tile-size evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_tiling::{tilesize, DepCone, HexShape, HybridSchedule, TileParams};
use polylib::Rat;
use std::hint::black_box;
use stencil::gallery;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_construction");
    g.sample_size(20);

    g.bench_function("cone/heat3d", |b| {
        let p = gallery::heat3d();
        b.iter(|| DepCone::of_program(black_box(&p)).unwrap())
    });

    g.bench_function("hexagon/count_points_h3_w5", |b| {
        b.iter(|| {
            HexShape::new(Rat::ONE, Rat::from(2), 3, 5)
                .unwrap()
                .count_points()
        })
    });

    g.bench_function("schedule/compute_heat3d", |b| {
        let p = gallery::heat3d();
        let params = TileParams::new(2, &[5, 4, 32]);
        b.iter(|| HybridSchedule::compute_executable(black_box(&p), &params).unwrap())
    });

    g.bench_function("schedule/map_1k_instances", |b| {
        let p = gallery::jacobi2d();
        let s = HybridSchedule::compute(&p, &TileParams::new(2, &[3, 8])).unwrap();
        b.iter(|| {
            let mut acc = 0i64;
            for tau in 0..10 {
                for i in 0..10 {
                    for j in 0..10 {
                        acc += s.schedule_vector(&[tau, i, j])[0];
                    }
                }
            }
            acc
        })
    });

    g.bench_function("tilesize/evaluate_jacobi", |b| {
        let p = gallery::jacobi2d();
        let params = TileParams::new(2, &[3, 8]);
        b.iter(|| tilesize::evaluate_tile(black_box(&p), &params).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
