//! Criterion: the polyhedral substrate (the isl substitute): simplex LP,
//! Fourier–Motzkin projection, point counting, and integer set subtraction.

use criterion::{criterion_group, criterion_main, Criterion};
use polylib::{lp, Aff, BasicSet, Objective, Set};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("polylib");
    g.sample_size(30);

    // A hexagon-like set as used throughout §3.
    let hexagon = || {
        BasicSet::new(2)
            .with_ge(Aff::var(2, 0))
            .with_ge(Aff::from_ints(&[-1, 0], 7))
            .with_ge(Aff::from_ints(&[-1, 1], 4))
            .with_ge(Aff::from_ints(&[-1, -1], 14))
            .with_ge(Aff::from_ints(&[1, 1], -3))
            .with_ge(Aff::from_ints(&[1, -1], 8))
    };

    g.bench_function("simplex/hexagon_bounds", |b| {
        let s = hexagon();
        let obj = Aff::from_ints(&[1, 3], 0);
        b.iter(|| lp(s.constraints(), black_box(&obj), Objective::Maximize))
    });

    g.bench_function("fm/project_hexagon", |b| {
        let s = hexagon();
        b.iter(|| black_box(&s).project_out(1))
    });

    g.bench_function("count/hexagon_points", |b| {
        let s = hexagon();
        b.iter(|| black_box(&s).count_points())
    });

    g.bench_function("subtract/box_minus_diamond", |b| {
        let big = Set::from_basic(BasicSet::box_set(&[(0, 20), (0, 20)]));
        let diamond = Set::from_basic(
            BasicSet::new(2)
                .with_ge(Aff::from_ints(&[1, 1], -10))
                .with_ge(Aff::from_ints(&[-1, -1], 30))
                .with_ge(Aff::from_ints(&[1, -1], 10))
                .with_ge(Aff::from_ints(&[-1, 1], 10)),
        );
        b.iter(|| big.subtract(black_box(&diamond)).count_points())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
