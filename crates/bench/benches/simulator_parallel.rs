//! Criterion: block-parallel executor scaling — the same jacobi2d plan on
//! the sequential path and on worker pools of 2, 4 and 8 threads. The
//! parallel samples must agree with the sequential counters bit-for-bit
//! (asserted inside the loop), so this bench doubles as a determinism
//! smoke check under `--test`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_codegen::{generate_hybrid, CodegenOptions};
use gpusim::{DeviceConfig, GpuSim};
use hybrid_tiling::TileParams;
use stencil::{gallery, Grid};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_parallel");
    g.sample_size(10);
    let program = gallery::jacobi2d();
    let dims = [96usize, 96];
    let steps = 12;
    let points = (94 * 94 * steps) as u64;
    g.throughput(Throughput::Elements(points));

    let plan = generate_hybrid(
        &program,
        &TileParams::new(2, &[3, 32]),
        &dims,
        steps,
        CodegenOptions::best(),
    )
    .unwrap();
    let init = vec![Grid::random(&dims, 3)];

    let mut reference = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
    reference.run_plan(&plan);
    let expected = *reference.counters();

    g.bench_function("sequential", |b| {
        b.iter(|| {
            let mut sim = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
            sim.run_plan(&plan);
            sim.counters().flops
        })
    });

    for threads in [2usize, 4, 8] {
        g.bench_function(format!("parallel_{threads}threads"), |b| {
            b.iter(|| {
                let mut sim = GpuSim::new(DeviceConfig::gtx470(), &init, 2);
                sim.run_plan_parallel_with(&plan, threads);
                assert_eq!(sim.counters(), &expected, "parallel executor diverged");
                sim.counters().flops
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
