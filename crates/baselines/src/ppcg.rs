//! PPCG-like classical tiling: per-time-step kernels with spatial tiles
//! staged through shared memory.
//!
//! This mirrors the configuration the paper measured as its baseline:
//! PPCG extracts the parallel spatial loops of each time step, tiles them,
//! copies each tile (plus halo) of every plane the statement reads into
//! shared memory, computes from shared, and writes results to global. No
//! time tiling: every value travels through DRAM once per step — which is
//! why PPCG is DRAM-bound in Tables 1/2.

use gpu_codegen::ir::{Cond, FExpr, IExpr, Kernel, Launch, LaunchPlan, SharedBuf, Stmt};
use stencil::StencilProgram;

use crate::common::{self, SpaceTiling};

/// Generates a PPCG-like plan with the given spatial tile extents.
pub fn generate_ppcg_tiled(
    program: &StencilProgram,
    dims: &[usize],
    steps: usize,
    tile: &[i64],
    name: &str,
) -> LaunchPlan {
    let n = program.spatial_dims();
    let planes = program.max_dt() + 1;
    let radius = program.radius();
    let lo: Vec<i64> = radius.clone();
    let hi: Vec<i64> = dims
        .iter()
        .zip(&radius)
        .map(|(&d, &r)| d as i64 - r - 1)
        .collect();
    let tiling = SpaceTiling::new(dims, tile);
    let nthreads: i64 = tiling.block_dim().iter().product::<usize>() as i64;

    let mut kernels = Vec::new();
    for st in program.statements() {
        // Distinct (field, dt) planes this statement reads.
        let mut staged: Vec<(usize, i64)> = Vec::new();
        for a in st.expr.loads() {
            let key = (a.field.0, a.dt);
            if !staged.contains(&key) {
                staged.push(key);
            }
        }
        let ext: Vec<i64> = (0..n).map(|d| tile[d] + 2 * radius[d]).collect();
        let shared: Vec<SharedBuf> = staged
            .iter()
            .map(|(f, dt)| SharedBuf {
                name: format!("s_{}_dt{dt}", program.field_names()[*f]),
                dims: ext.iter().map(|&e| e as usize).collect(),
            })
            .collect();
        let cells: i64 = ext.iter().product();
        let v_outer = 0usize;
        let v_c = 1usize;
        let v_lin = 2usize;

        // Copy-in: chunked cooperative load of each staged plane.
        let mut body = Vec::new();
        for (buf, (field, dt)) in staged.iter().enumerate() {
            let mut locals: Vec<IExpr> = Vec::new();
            for d in 0..n {
                let tail: i64 = ext[d + 1..].iter().product();
                let coord = if tail == 1 {
                    IExpr::Var(v_lin)
                } else {
                    IExpr::Var(v_lin).fdiv(tail)
                };
                locals.push(coord.modulo(ext[d]));
            }
            let globals: Vec<IExpr> = (0..n)
                .map(|d| {
                    tiling
                        .tile_index(d)
                        .scale(tile[d])
                        .offset(-radius[d])
                        .add(locals[d].clone())
                })
                .collect();
            let mut guard = Cond::Lt(IExpr::Var(v_lin), IExpr::Const(cells));
            for (d, g) in globals.iter().enumerate() {
                guard = guard.and(Cond::between(
                    g,
                    IExpr::Const(0),
                    IExpr::Const(dims[d] as i64 - 1),
                ));
            }
            body.push(Stmt::For {
                var: v_c,
                lo: IExpr::Const(0),
                hi: IExpr::Const((cells + nthreads - 1) / nthreads),
                step: 1,
                body: vec![
                    Stmt::SetVar {
                        var: v_lin,
                        value: IExpr::Var(v_c).scale(nthreads).add(
                            IExpr::ThreadIdx(0)
                                .add(IExpr::ThreadIdx(1).scale(tiling.block_dim()[0] as i64)),
                        ),
                    },
                    Stmt::If {
                        cond: guard,
                        then_: vec![
                            Stmt::GlobalLoad {
                                dst: 0,
                                field: *field,
                                plane: IExpr::Param(0).offset(1 - dt).modulo(planes),
                                index: globals,
                            },
                            Stmt::SharedStore {
                                buf,
                                index: locals,
                                src: FExpr::Reg(0),
                            },
                        ],
                        else_: vec![],
                    },
                ],
            });
        }
        body.push(Stmt::Sync);

        // Compute from shared, store to global.
        let coords: Vec<IExpr> = (0..n)
            .map(|d| tiling.global_coord(d, Some(v_outer)))
            .collect();
        let local_of = |d: usize, off: i64| -> IExpr {
            // Local tile coordinate + halo pad + access offset.
            let base = match d {
                d if d == n - 1 => IExpr::ThreadIdx(0),
                d if d + 2 == n => IExpr::ThreadIdx(1),
                _ => IExpr::Var(v_outer),
            };
            base.offset(radius[d] + off)
        };
        let mut point = Vec::new();
        let mut next_reg = 0usize;
        let expr = common::lower_expr(&st.expr, &mut next_reg, &mut point, &mut |acc, reg| {
            let buf = staged
                .iter()
                .position(|&(f, dt)| f == acc.field.0 && dt == acc.dt)
                .expect("staged plane");
            Stmt::SharedLoad {
                dst: reg,
                buf,
                index: (0..n).map(|d| local_of(d, acc.offsets[d])).collect(),
            }
        });
        let dst = next_reg;
        point.push(Stmt::Compute { dst, expr });
        point.push(Stmt::GlobalStore {
            field: st.writes.0,
            plane: IExpr::Param(0).offset(1).modulo(planes),
            index: coords.clone(),
            src: FExpr::Reg(dst),
        });
        let guarded = vec![Stmt::If {
            cond: tiling.interior_guard(&coords, &lo, &hi),
            then_: point,
            else_: vec![],
        }];
        let compute = if n > 2 {
            vec![Stmt::For {
                var: v_outer,
                lo: IExpr::Const(0),
                hi: IExpr::Const(tile[0]),
                step: 1,
                body: guarded,
            }]
        } else {
            guarded
        };
        body.extend(compute);

        kernels.push(Kernel {
            name: format!("{name}_{}_{}", program.name(), st.name),
            block_dim: tiling.block_dim(),
            shared,
            n_vars: 3,
            n_regs: common::max_loads(program) + 1,
            n_params: 1,
            body,
        });
    }

    let mut launches = Vec::new();
    for t in 0..steps as i64 {
        for k in 0..kernels.len() {
            launches.push(Launch {
                kernel: k,
                params: vec![t],
                blocks: tiling.blocks(),
            });
        }
    }
    LaunchPlan {
        kernels,
        launches,
        description: format!("{name} classical spatial tiling of {}", program.name()),
    }
}

/// Generates the PPCG-like plan with the default tile sizes.
pub fn generate_ppcg(program: &StencilProgram, dims: &[usize], steps: usize) -> LaunchPlan {
    let tile = common::default_tile(program.spatial_dims());
    generate_ppcg_tiled(program, dims, steps, &tile, "ppcg")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    #[test]
    fn jacobi_stages_exactly_one_plane() {
        let p = gallery::jacobi2d();
        let plan = generate_ppcg(&p, &[64, 64], 1);
        assert_eq!(plan.kernels[0].shared.len(), 1);
    }

    #[test]
    fn contrived_stages_two_planes() {
        let p = gallery::contrived1d();
        let plan = generate_ppcg(&p, &[512], 1);
        assert_eq!(plan.kernels[0].shared.len(), 2); // dt=1 and dt=2
    }

    #[test]
    fn fdtd_hz_statement_stages_three_buffers() {
        let p = gallery::fdtd2d();
        let plan = generate_ppcg(&p, &[64, 64], 1);
        // Shz reads hz(dt=1), ex(dt=0), ey(dt=0).
        assert_eq!(plan.kernels[2].shared.len(), 3);
    }
}
