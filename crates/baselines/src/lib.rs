//! # baselines — the comparator stencil compilers of the CGO'14 evaluation
//!
//! Reimplementations of the tiling strategies the paper compares against,
//! over the same kernel IR and simulator substrate, so that Tables 1 and 2
//! isolate exactly the variable the paper studies — the tiling scheme:
//!
//! * [`par4all`] — Par4All-like: straightforward per-time-step kernels on
//!   global memory, relying on the hardware cache hierarchy;
//! * [`ppcg`] — PPCG-like classical spatial tiling: per-time-step kernels
//!   staging a tile + halo through shared memory (no time tiling, matching
//!   the configuration the paper measured);
//! * [`overtile`] — Overtile-like overlapped time tiling: several time
//!   steps per launch with redundant halo computation, falling back to
//!   spatial tiling for 3D stencils (the fallback the paper observed in
//!   Overtile's autotuned configurations);
//! * [`patus`] — Patus-like autotuned spatial tiling (the paper could only
//!   run it on the 3D laplacian/heat kernels);
//! * [`diamond`] — a schedule-level model of diamond tiling used to
//!   reproduce the §5 claim that diamond tiles contain *varying* numbers
//!   of integer points (a divergence source hexagonal tiles avoid).
//!
//! Every generator returns a [`gpu_codegen::LaunchPlan`] executable on
//! `gpusim` and validated bit-for-bit against the sequential oracle.

pub mod common;
pub mod diamond;
pub mod overtile;
pub mod par4all;
pub mod patus;
pub mod ppcg;

pub use overtile::generate_overtile;
pub use par4all::generate_par4all;
pub use patus::generate_patus;
pub use ppcg::generate_ppcg;
