//! Patus-like code generation: autotuned spatial tiling.
//!
//! Patus is a stencil DSL framework with an autotuner over blocking
//! strategies. Its (experimental) CUDA backend — the paper could only
//! generate code for the 3D laplacian and heat kernels with it — amounts
//! to spatial tiling with shared-memory staging and tuned block shapes.
//! We model it as the PPCG-like generator with a Patus-flavoured tuned
//! tile (wider along the coalescing dimension).

use gpu_codegen::ir::LaunchPlan;
use stencil::StencilProgram;

use crate::ppcg::generate_ppcg_tiled;

/// True if the paper was able to evaluate Patus on this stencil
/// (laplacian 3D and heat 3D only).
pub fn supported(program: &StencilProgram) -> bool {
    matches!(program.name(), "laplacian3d" | "heat3d")
}

/// Generates the Patus-like plan.
///
/// # Panics
///
/// Panics when the stencil is outside Patus's supported set (mirroring the
/// paper's "only laplacian and heat 3D code could be generated").
pub fn generate_patus(program: &StencilProgram, dims: &[usize], steps: usize) -> LaunchPlan {
    assert!(
        supported(program),
        "patus CUDA backend supports only laplacian3d/heat3d (as in the paper)"
    );
    // Autotuned shape: flat tile, wide along the unit-stride dimension.
    let tile = vec![2, 4, 64];
    generate_ppcg_tiled(program, dims, steps, &tile, "patus")
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    #[test]
    fn supports_exactly_the_paper_set() {
        assert!(supported(&gallery::laplacian3d()));
        assert!(supported(&gallery::heat3d()));
        assert!(!supported(&gallery::jacobi2d()));
        assert!(!supported(&gallery::gradient3d()));
    }

    #[test]
    #[should_panic(expected = "supports only")]
    fn rejects_unsupported_stencils() {
        let _ = generate_patus(&gallery::heat2d(), &[16, 16], 1);
    }

    #[test]
    fn generates_for_heat3d() {
        let plan = generate_patus(&gallery::heat3d(), &[16, 16, 64], 2);
        assert_eq!(plan.launches.len(), 2);
    }
}
