//! Shared machinery for the baseline code generators: spatial tile/block
//! mapping and stencil-expression lowering.

use gpu_codegen::ir::{Cond, FExpr, IExpr, Stmt};
use stencil::{StencilExpr, StencilProgram};

/// A rectangular spatial tiling: per-dimension tile extents, a 1-D grid of
/// blocks enumerating tiles row-major, and thread coverage of the two
/// innermost dimensions.
#[derive(Clone, Debug)]
pub struct SpaceTiling {
    /// Grid extents.
    pub dims: Vec<usize>,
    /// Tile extents (one per dimension).
    pub tile: Vec<i64>,
    /// Tile counts per dimension.
    pub counts: Vec<i64>,
}

impl SpaceTiling {
    /// Builds a tiling of `dims` with the given tile extents.
    pub fn new(dims: &[usize], tile: &[i64]) -> SpaceTiling {
        assert_eq!(dims.len(), tile.len(), "tile arity");
        let counts = dims
            .iter()
            .zip(tile)
            .map(|(&n, &t)| (n as i64 + t - 1) / t)
            .collect();
        SpaceTiling {
            dims: dims.to_vec(),
            tile: tile.to_vec(),
            counts,
        }
    }

    /// Total number of blocks.
    pub fn blocks(&self) -> usize {
        self.counts.iter().product::<i64>() as usize
    }

    /// Thread-block shape: x covers the innermost tile extent, y the
    /// next-inner one (clamped to the tile sizes).
    pub fn block_dim(&self) -> [usize; 3] {
        let n = self.tile.len();
        let x = self.tile[n - 1] as usize;
        let y = if n >= 2 { self.tile[n - 2] as usize } else { 1 };
        [x, y, 1]
    }

    /// The tile index of dimension `d` as an expression of `BlockIdx`
    /// (row-major decomposition).
    pub fn tile_index(&self, d: usize) -> IExpr {
        let tail: i64 = self.counts[d + 1..].iter().product();
        let e = if tail == 1 {
            IExpr::BlockIdx
        } else {
            IExpr::BlockIdx.fdiv(tail)
        };
        e.modulo(self.counts[d])
    }

    /// The global coordinate of dimension `d` covered by this thread:
    /// `tile_d * w_d + thread_part`, where the two innermost dims map to
    /// threads and outer dims iterate via the loop variable `var` if given.
    pub fn global_coord(&self, d: usize, outer_var: Option<usize>) -> IExpr {
        let n = self.tile.len();
        let base = self.tile_index(d).scale(self.tile[d]);
        if d == n - 1 {
            base.add(IExpr::ThreadIdx(0))
        } else if d + 2 == n {
            base.add(IExpr::ThreadIdx(1))
        } else {
            match outer_var {
                Some(v) => base.add(IExpr::Var(v)),
                None => base,
            }
        }
    }

    /// In-domain guard for the coordinates produced by
    /// [`SpaceTiling::global_coord`].
    pub fn interior_guard(&self, coords: &[IExpr], lo: &[i64], hi: &[i64]) -> Cond {
        let mut c = Cond::True;
        for (d, e) in coords.iter().enumerate() {
            c = c.and(Cond::between(e, IExpr::Const(lo[d]), IExpr::Const(hi[d])));
        }
        c
    }
}

/// Lowers a stencil expression to an [`FExpr`], appending one load
/// statement per access via `make_load(access, reg)`.
pub fn lower_expr(
    e: &StencilExpr,
    next_reg: &mut usize,
    out: &mut Vec<Stmt>,
    make_load: &mut impl FnMut(&stencil::Access, usize) -> Stmt,
) -> FExpr {
    match e {
        StencilExpr::Load(a) => {
            let reg = *next_reg;
            *next_reg += 1;
            out.push(make_load(a, reg));
            FExpr::Reg(reg)
        }
        StencilExpr::Const(c) => FExpr::Const(*c),
        StencilExpr::Add(a, b) => FExpr::Add(
            Box::new(lower_expr(a, next_reg, out, make_load)),
            Box::new(lower_expr(b, next_reg, out, make_load)),
        ),
        StencilExpr::Sub(a, b) => FExpr::Sub(
            Box::new(lower_expr(a, next_reg, out, make_load)),
            Box::new(lower_expr(b, next_reg, out, make_load)),
        ),
        StencilExpr::Mul(a, b) => FExpr::Mul(
            Box::new(lower_expr(a, next_reg, out, make_load)),
            Box::new(lower_expr(b, next_reg, out, make_load)),
        ),
        StencilExpr::Sqrt(a) => FExpr::Sqrt(Box::new(lower_expr(a, next_reg, out, make_load))),
    }
}

/// Maximum number of loads in any statement (register budget helper).
pub fn max_loads(program: &StencilProgram) -> usize {
    program
        .statements()
        .iter()
        .map(|s| s.expr.loads().len())
        .max()
        .unwrap_or(1)
}

/// Default spatial tile extents per dimensionality, innermost a warp
/// multiple.
pub fn default_tile(dims: usize) -> Vec<i64> {
    match dims {
        1 => vec![256],
        2 => vec![8, 32],
        _ => vec![4, 4, 32],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiling_covers_grid() {
        let t = SpaceTiling::new(&[100, 64], &[8, 32]);
        assert_eq!(t.counts, vec![13, 2]);
        assert_eq!(t.blocks(), 26);
        assert_eq!(t.block_dim(), [32, 8, 1]);
    }

    #[test]
    fn tile_index_decomposition_is_row_major() {
        let t = SpaceTiling::new(&[64, 64, 64], &[4, 4, 32]);
        // counts = [16, 16, 2]; block 37 = (1, 2, 1).
        assert_eq!(t.blocks(), 16 * 16 * 2);
        let b = 37i64;
        let d0 = b.div_euclid(32).rem_euclid(16);
        let d1 = b.div_euclid(2).rem_euclid(16);
        let d2 = b.rem_euclid(2);
        assert_eq!((d0, d1, d2), (1, 2, 1));
    }

    #[test]
    fn default_tiles_are_warp_aligned() {
        assert_eq!(default_tile(2)[1] % 32, 0);
        assert_eq!(default_tile(3)[2] % 32, 0);
    }
}
