//! Diamond tiling, schedule-level: the §5 comparison.
//!
//! The paper argues (§2, §5 and reference \[9\]) that diamond tiling cannot
//! match hybrid hexagonal tiling on GPUs because, among other reasons,
//! "even though all tiles may have identical shapes, the actual number of
//! integer points may vary between different tiles", causing thread
//! divergence when diamond peaks sometimes fall on integer points and
//! sometimes do not. This module reproduces that claim quantitatively:
//! it computes the integer-point population of diamond tiles over the
//! `(t, s)` plane and exposes the distribution, which the test suite and
//! the §5 ablation bench compare against the provably constant hexagonal
//! population ([`hybrid_tiling::HexShape::count_points`]).

use std::collections::HashMap;

/// Diamond tile coordinates of a point for slope-1 dependences and tile
/// period `p`: tiles are unit cells of the lattice spanned by the skewed
/// basis `u = t + s`, `v = s - t`.
pub fn diamond_tile_of(t: i64, s: i64, p: i64) -> (i64, i64) {
    ((t + s).div_euclid(p), (s - t).div_euclid(p))
}

/// Counts integer points per diamond tile over a bounded window,
/// returning the per-tile histogram of *interior* tiles (those whose
/// lattice cell lies fully inside the window).
pub fn diamond_tile_counts(p: i64, window: i64) -> HashMap<(i64, i64), u64> {
    let mut counts: HashMap<(i64, i64), u64> = HashMap::new();
    for t in 0..window {
        for s in 0..window {
            *counts.entry(diamond_tile_of(t, s, p)).or_insert(0) += 1;
        }
    }
    // Keep only interior tiles: all four corners of the (u, v) cell map
    // back inside the window.
    counts.retain(|&(cu, cv), _| {
        let (u0, v0) = (cu * p, cv * p);
        let (u1, v1) = (u0 + p - 1, v0 + p - 1);
        // t = (u - v) / 2, s = (u + v) / 2 over the cell's corner range.
        let t_min = (u0 - v1) / 2 - 1;
        let t_max = (u1 - v0) / 2 + 1;
        let s_min = (u0 + v0) / 2 - 1;
        let s_max = (u1 + v1) / 2 + 1;
        t_min > 0 && s_min > 0 && t_max < window - 1 && s_max < window - 1
    });
    counts
}

/// The set of distinct per-tile populations among interior diamond tiles.
pub fn distinct_diamond_populations(p: i64, window: i64) -> Vec<u64> {
    let mut v: Vec<u64> = diamond_tile_counts(p, window).values().copied().collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_tiling::HexShape;
    use polylib::Rat;

    #[test]
    fn odd_period_diamonds_have_varying_populations() {
        // With an odd period the (u, v) parity constraint (u + v = 2s must
        // be even) makes cell populations alternate — the §5 claim.
        let pops = distinct_diamond_populations(3, 40);
        assert!(
            pops.len() > 1,
            "expected varying diamond populations, got {pops:?}"
        );
    }

    #[test]
    fn even_period_diamonds_are_uniform_but_peaks_misalign() {
        // Even periods fix the population count, but the paper's other
        // objection (fixed narrow peak) remains; here we just document the
        // population behaviour.
        let pops = distinct_diamond_populations(4, 40);
        assert_eq!(pops.len(), 1);
    }

    #[test]
    fn hexagon_population_is_constant_by_construction() {
        // All full hexagonal tiles have the same count — the verify module
        // checks this against live schedules; here against the shape.
        for (h, w0) in [(1, 1), (2, 3), (3, 2)] {
            let hex = HexShape::new(Rat::ONE, Rat::ONE, h, w0).unwrap();
            assert_eq!(hex.count_points(), 2 * ((h + 1) * (h + 1 + w0)) as u64);
        }
    }

    #[test]
    fn diamond_tile_of_is_a_partition() {
        // Every point maps to exactly one tile (it is a function), and
        // neighboring tiles meet along the skewed lattice.
        let a = diamond_tile_of(5, 5, 3);
        let b = diamond_tile_of(5, 6, 3);
        assert_ne!(diamond_tile_of(0, 0, 3), diamond_tile_of(10, 10, 3));
        let _ = (a, b);
    }
}
