//! Par4All-like code generation: one kernel launch per time step and
//! statement, all accesses on global memory.
//!
//! Par4All is not a polyhedral compiler; it maps the parallel spatial loops
//! of each time step to a CUDA grid and leaves all data movement to the
//! hardware caches. Reuse across neighboring points and across time steps
//! is whatever the L2 model recovers — exactly the behaviour the paper's
//! Tables 1/2 baseline shows.

use gpu_codegen::ir::{IExpr, Kernel, Launch, LaunchPlan, Stmt};
use stencil::StencilProgram;

use crate::common::{self, SpaceTiling};

/// Generates the Par4All-like launch plan.
pub fn generate_par4all(program: &StencilProgram, dims: &[usize], steps: usize) -> LaunchPlan {
    let n = program.spatial_dims();
    let planes = program.max_dt() + 1;
    let radius = program.radius();
    let lo: Vec<i64> = radius.clone();
    let hi: Vec<i64> = dims
        .iter()
        .zip(&radius)
        .map(|(&d, &r)| d as i64 - r - 1)
        .collect();
    let tiling = SpaceTiling::new(dims, &common::default_tile(n));

    // One kernel per statement; the time step arrives as Param(0).
    let mut kernels = Vec::new();
    for (si, st) in program.statements().iter().enumerate() {
        let v_outer = 0usize;
        let coords: Vec<IExpr> = (0..n)
            .map(|d| tiling.global_coord(d, Some(v_outer)))
            .collect();
        let mut body_point = Vec::new();
        let mut next_reg = 0usize;
        let expr = common::lower_expr(&st.expr, &mut next_reg, &mut body_point, &mut |acc, reg| {
            let index: Vec<IExpr> = coords
                .iter()
                .zip(&acc.offsets)
                .map(|(c, &o)| c.clone().offset(o))
                .collect();
            Stmt::GlobalLoad {
                dst: reg,
                field: acc.field.0,
                plane: IExpr::Param(0).offset(1 - acc.dt).modulo(planes),
                index,
            }
        });
        let dst = next_reg;
        body_point.push(Stmt::Compute { dst, expr });
        body_point.push(Stmt::GlobalStore {
            field: st.writes.0,
            plane: IExpr::Param(0).offset(1).modulo(planes),
            index: coords.clone(),
            src: gpu_codegen::FExpr::Reg(dst),
        });
        let guarded = vec![Stmt::If {
            cond: tiling.interior_guard(&coords, &lo, &hi),
            then_: body_point,
            else_: vec![],
        }];
        // Outer tile dims beyond the two thread dims iterate sequentially.
        let body = if n > 2 {
            vec![Stmt::For {
                var: v_outer,
                lo: IExpr::Const(0),
                hi: IExpr::Const(tiling.tile[0]),
                step: 1,
                body: guarded,
            }]
        } else {
            guarded
        };
        kernels.push(Kernel {
            name: format!("par4all_{}_{}", program.name(), st.name),
            block_dim: tiling.block_dim(),
            shared: vec![],
            n_vars: 1,
            n_regs: common::max_loads(program) + 1,
            n_params: 1,
            body,
        });
        let _ = si;
    }

    let mut launches = Vec::new();
    for t in 0..steps as i64 {
        for k in 0..kernels.len() {
            launches.push(Launch {
                kernel: k,
                params: vec![t],
                blocks: tiling.blocks(),
            });
        }
    }
    LaunchPlan {
        kernels,
        launches,
        description: format!("par4all-like global-memory codegen of {}", program.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil::gallery;

    #[test]
    fn plan_has_one_launch_per_step_and_statement() {
        let p = gallery::fdtd2d();
        let plan = generate_par4all(&p, &[16, 16], 3);
        assert_eq!(plan.kernels.len(), 3);
        assert_eq!(plan.launches.len(), 9);
    }

    #[test]
    fn kernels_have_no_shared_memory() {
        let p = gallery::jacobi2d();
        let plan = generate_par4all(&p, &[16, 16], 1);
        assert!(plan.kernels.iter().all(|k| k.shared.is_empty()));
    }
}
